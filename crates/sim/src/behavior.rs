//! Process behaviours: block sequences with run-time loop trip counts.
//!
//! The paper's key motivation is systems that *cannot* be merged into one
//! schedule: loops with iteration counts unknown at synthesis time and
//! operations of unknown delay between blocks. A [`ProcessBehavior`]
//! models exactly that — per activation, a process runs its blocks in
//! sequence, and loop segments repeat their block a randomly drawn number
//! of times. The static modulo schedule stays valid because every
//! repetition just starts on the next grid point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tcms_ir::{BlockId, ProcessId, System};

/// One step of a process's activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Run the block once.
    Once(BlockId),
    /// Re-run the block between 1 and `max_iterations` times; the trip
    /// count is drawn per activation (unknown at synthesis time).
    Loop {
        /// The loop body (a separate block, as the paper's conditions
        /// require).
        block: BlockId,
        /// Upper bound of the drawn trip count.
        max_iterations: u32,
    },
    /// An idle stretch of 0 to `max_steps` steps — an operation of
    /// unknown execution time between blocks.
    Delay {
        /// Upper bound of the drawn idle time.
        max_steps: u64,
    },
    /// A data-dependent alternation: one of the blocks runs, drawn
    /// uniformly per activation.
    Branch {
        /// First alternative.
        either: BlockId,
        /// Second alternative.
        or: BlockId,
    },
}

/// The activation behaviour of one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessBehavior {
    segments: Vec<Segment>,
}

impl ProcessBehavior {
    /// A behaviour from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if a loop has `max_iterations == 0`.
    pub fn new(segments: Vec<Segment>) -> Self {
        for s in &segments {
            if let Segment::Loop { max_iterations, .. } = s {
                assert!(*max_iterations > 0, "loops need at least one iteration");
            }
        }
        ProcessBehavior { segments }
    }

    /// The default behaviour: every block of the process exactly once, in
    /// order.
    pub fn linear(system: &System, process: ProcessId) -> Self {
        ProcessBehavior {
            segments: system
                .process(process)
                .blocks()
                .iter()
                .map(|&b| Segment::Once(b))
                .collect(),
        }
    }

    /// The declared segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Checks that every referenced block belongs to `process`.
    pub fn validate(&self, system: &System, process: ProcessId) -> bool {
        self.segments.iter().all(|s| match s {
            Segment::Once(b) | Segment::Loop { block: b, .. } => {
                system.block(*b).process() == process
            }
            Segment::Branch { either, or } => {
                system.block(*either).process() == process && system.block(*or).process() == process
            }
            Segment::Delay { .. } => true,
        })
    }

    /// Draws one concrete activation: the block sequence with loop trip
    /// counts resolved, interleaved with idle stretches.
    pub fn unroll(&self, rng: &mut StdRng) -> Vec<UnrolledStep> {
        let mut out = Vec::new();
        for s in &self.segments {
            match *s {
                Segment::Once(b) => out.push(UnrolledStep::Run(b)),
                Segment::Loop {
                    block,
                    max_iterations,
                } => {
                    let n = rng.random_range(1..=max_iterations);
                    for _ in 0..n {
                        out.push(UnrolledStep::Run(block));
                    }
                }
                Segment::Delay { max_steps } => {
                    out.push(UnrolledStep::Idle(rng.random_range(0..=max_steps)));
                }
                Segment::Branch { either, or } => {
                    let pick = if rng.random_bool(0.5) { either } else { or };
                    out.push(UnrolledStep::Run(pick));
                }
            }
        }
        out
    }
}

/// One resolved step of an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnrolledStep {
    /// Execute the block's static schedule (from the next grid point).
    Run(BlockId),
    /// Stay idle for the given number of steps.
    Idle(u64),
}

/// Convenience: a seeded RNG for unrolling.
pub fn unroll_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_library;
    use tcms_ir::SystemBuilder;

    fn two_block_process() -> (System, ProcessId, BlockId, BlockId) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("P");
        let init = b.add_block(p, "init", 4).unwrap();
        b.add_op(init, "x", types.add).unwrap();
        let body = b.add_block(p, "loop_body", 4).unwrap();
        b.add_op(body, "y", types.add).unwrap();
        let sys = b.build().unwrap();
        (sys, p, init, body)
    }

    #[test]
    fn linear_covers_all_blocks_once() {
        let (sys, p, init, body) = two_block_process();
        let beh = ProcessBehavior::linear(&sys, p);
        assert!(beh.validate(&sys, p));
        let mut rng = unroll_rng(0);
        let steps = beh.unroll(&mut rng);
        assert_eq!(
            steps,
            vec![UnrolledStep::Run(init), UnrolledStep::Run(body)]
        );
    }

    #[test]
    fn loop_trip_counts_vary_with_seed() {
        let (sys, p, init, body) = two_block_process();
        let beh = ProcessBehavior::new(vec![
            Segment::Once(init),
            Segment::Loop {
                block: body,
                max_iterations: 8,
            },
        ]);
        assert!(beh.validate(&sys, p));
        let lens: Vec<usize> = (0..10)
            .map(|s| beh.unroll(&mut unroll_rng(s)).len())
            .collect();
        assert!(lens.iter().any(|&l| l != lens[0]), "trip counts vary");
        for l in lens {
            assert!((2..=9).contains(&l));
        }
    }

    #[test]
    fn delay_segments_emit_idle() {
        let (_, _, init, _) = two_block_process();
        let beh = ProcessBehavior::new(vec![Segment::Delay { max_steps: 10 }, Segment::Once(init)]);
        let steps = beh.unroll(&mut unroll_rng(3));
        assert!(matches!(steps[0], UnrolledStep::Idle(n) if n <= 10));
        assert_eq!(steps[1], UnrolledStep::Run(init));
    }

    #[test]
    fn validate_rejects_foreign_blocks() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p0 = b.add_process("A");
        let b0 = b.add_block(p0, "b", 4).unwrap();
        b.add_op(b0, "x", types.add).unwrap();
        let p1 = b.add_process("B");
        let b1 = b.add_block(p1, "b", 4).unwrap();
        b.add_op(b1, "y", types.add).unwrap();
        let sys = b.build().unwrap();
        let beh = ProcessBehavior::new(vec![Segment::Once(b1)]);
        assert!(!beh.validate(&sys, p0));
        assert!(beh.validate(&sys, p1));
    }

    #[test]
    fn branch_picks_exactly_one_alternative() {
        let (sys, p, init, body) = two_block_process();
        let beh = ProcessBehavior::new(vec![Segment::Branch {
            either: init,
            or: body,
        }]);
        assert!(beh.validate(&sys, p));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..20 {
            let steps = beh.unroll(&mut unroll_rng(seed));
            assert_eq!(steps.len(), 1);
            if let UnrolledStep::Run(b) = steps[0] {
                seen.insert(b);
            }
        }
        assert_eq!(seen.len(), 2, "both branches eventually taken");
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_loop_panics() {
        let (_, _, _, body) = two_block_process();
        let _ = ProcessBehavior::new(vec![Segment::Loop {
            block: body,
            max_iterations: 0,
        }]);
    }
}
