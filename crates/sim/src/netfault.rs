//! Deterministic network-fault decisions for the serving chaos harness.
//!
//! The companion of [`fault`](crate::fault), one layer down the stack:
//! where [`FaultPlan`](crate::FaultPlan) stresses the *scheduled
//! system* (jittered triggers, outages), a [`NetFaultPlan`] stresses
//! the *serving transport* — which bytes of a proxied TCP stream get
//! delayed, truncated, or cut. This module makes only the **decisions**;
//! the TCP proxy that applies them lives in `tcms-serve` (`chaos`), so
//! the policy stays pure, seed-reproducible and unit-testable without
//! sockets.
//!
//! All randomness derives from [`NetFaultPlan::seed`] plus a
//! per-connection stream index, so two chaos runs with the same plan
//! inject byte-for-byte the same faults regardless of thread timing
//! *within a connection* (the paper-bench replication standard this
//! workspace holds all experiments to).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to do with one forwarded chunk of a proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFault {
    /// Forward untouched.
    None,
    /// Forward after a latency spike of this many milliseconds.
    Delay(u64),
    /// Forward only the first `keep_permille`/1000 of the chunk, then
    /// kill the connection — a mid-line truncation the reader sees as a
    /// torn response.
    Truncate {
        /// Fraction of the chunk to forward, in permille (0..=1000).
        keep_permille: u16,
    },
    /// Drop the connection before forwarding anything — a reset from
    /// the peer's point of view.
    Reset,
    /// Forward the full chunk, then kill the connection — the write
    /// "succeeded" but the session is gone.
    KillAfter,
}

/// A seed-driven transport-fault plan. The default plan injects
/// nothing; enable fault classes by raising their probabilities. Each
/// forwarded chunk draws one decision; the classes are tried in the
/// order reset → truncate → kill → delay.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Per-chunk probability of a connection reset before forwarding.
    pub reset_prob: f64,
    /// Per-chunk probability of truncating the chunk then killing the
    /// connection.
    pub truncate_prob: f64,
    /// Per-chunk probability of killing the connection right after a
    /// complete forward.
    pub kill_prob: f64,
    /// Per-chunk probability of a latency spike.
    pub delay_prob: f64,
    /// Latency-spike ceiling in milliseconds (draws are `1..=max`).
    pub max_delay_ms: u64,
}

impl NetFaultPlan {
    /// A plan with the given seed and no faults enabled.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            reset_prob: 0.0,
            truncate_prob: 0.0,
            kill_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 0,
        }
    }

    /// The moderate all-classes plan the chaos bench drives: frequent
    /// small delays, occasional resets, rare truncations and kills —
    /// enough that every fault class fires in a few hundred chunks.
    #[must_use]
    pub fn moderate(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            reset_prob: 0.04,
            truncate_prob: 0.03,
            kill_prob: 0.02,
            delay_prob: 0.15,
            max_delay_ms: 15,
        }
    }

    /// Checks the plan's probabilities.
    ///
    /// # Panics
    ///
    /// Panics if a probability is not a finite value in `[0, 1)`, or if
    /// delays are enabled with a zero ceiling.
    pub fn validate(&self) {
        for (name, p) in [
            ("reset_prob", self.reset_prob),
            ("truncate_prob", self.truncate_prob),
            ("kill_prob", self.kill_prob),
            ("delay_prob", self.delay_prob),
        ] {
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "{name} must be a finite probability in [0, 1), got {p}"
            );
        }
        assert!(
            self.delay_prob == 0.0 || self.max_delay_ms > 0,
            "delay_prob > 0 requires max_delay_ms > 0"
        );
    }

    /// Whether any fault class is enabled.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.reset_prob == 0.0
            && self.truncate_prob == 0.0
            && self.kill_prob == 0.0
            && self.delay_prob == 0.0
    }

    /// The deterministic fault RNG of connection `conn`: each proxied
    /// connection gets its own stream, so faults within a connection do
    /// not depend on how connections interleave.
    #[must_use]
    pub fn conn_rng(&self, conn: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(0xE703_7ED1_A0B4_28DB ^ conn),
        )
    }

    /// The self-contained fault stream of connection `conn` — the plan
    /// plus its [`conn_rng`](NetFaultPlan::conn_rng), packaged so
    /// consumers (the `tcms-serve` proxy) need no RNG types of their
    /// own.
    #[must_use]
    pub fn stream(&self, conn: u64) -> NetFaultStream {
        NetFaultStream {
            plan: self.clone(),
            rng: self.conn_rng(conn),
        }
    }

    /// Draws the fault decision for the next chunk of a connection.
    pub fn next_fault(&self, rng: &mut StdRng) -> ChunkFault {
        if rng.random::<f64>() < self.reset_prob {
            return ChunkFault::Reset;
        }
        if rng.random::<f64>() < self.truncate_prob {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let keep_permille = (rng.random::<f64>() * 1000.0) as u16;
            return ChunkFault::Truncate { keep_permille };
        }
        if rng.random::<f64>() < self.kill_prob {
            return ChunkFault::KillAfter;
        }
        if rng.random::<f64>() < self.delay_prob {
            return ChunkFault::Delay(rng.random_range(1..=self.max_delay_ms.max(1)));
        }
        ChunkFault::None
    }
}

/// One connection's fault decision stream (see [`NetFaultPlan::stream`]).
#[derive(Debug, Clone)]
pub struct NetFaultStream {
    plan: NetFaultPlan,
    rng: StdRng,
}

impl NetFaultStream {
    /// Draws the decision for the next chunk.
    pub fn next_fault(&mut self) -> ChunkFault {
        self.plan.next_fault(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_the_raw_plan_draws() {
        let plan = NetFaultPlan::moderate(11);
        let mut stream = plan.stream(5);
        let mut rng = plan.conn_rng(5);
        for _ in 0..128 {
            assert_eq!(stream.next_fault(), plan.next_fault(&mut rng));
        }
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = NetFaultPlan::quiet(42);
        assert!(plan.is_quiet());
        plan.validate();
        let mut rng = plan.conn_rng(0);
        for _ in 0..1_000 {
            assert_eq!(plan.next_fault(&mut rng), ChunkFault::None);
        }
    }

    #[test]
    fn moderate_plan_is_deterministic_per_connection_stream() {
        let plan = NetFaultPlan::moderate(7);
        plan.validate();
        let draw = |conn: u64| {
            let mut rng = plan.conn_rng(conn);
            (0..256)
                .map(|_| plan.next_fault(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3), "same seed + conn ⇒ same faults");
        assert_ne!(draw(3), draw(4), "connections get independent streams");
        assert_ne!(
            draw(3),
            {
                let other = NetFaultPlan::moderate(8);
                let mut rng = other.conn_rng(3);
                (0..256)
                    .map(|_| other.next_fault(&mut rng))
                    .collect::<Vec<_>>()
            },
            "the seed matters"
        );
    }

    #[test]
    fn moderate_plan_exercises_every_fault_class() {
        let plan = NetFaultPlan::moderate(1);
        let mut rng = plan.conn_rng(0);
        let mut saw = [false; 5];
        for _ in 0..4_000 {
            match plan.next_fault(&mut rng) {
                ChunkFault::None => saw[0] = true,
                ChunkFault::Delay(ms) => {
                    assert!((1..=plan.max_delay_ms).contains(&ms));
                    saw[1] = true;
                }
                ChunkFault::Truncate { keep_permille } => {
                    assert!(keep_permille <= 1000);
                    saw[2] = true;
                }
                ChunkFault::Reset => saw[3] = true,
                ChunkFault::KillAfter => saw[4] = true,
            }
        }
        assert_eq!(saw, [true; 5], "every class fires within 4000 draws");
    }

    #[test]
    #[should_panic(expected = "reset_prob")]
    fn validate_rejects_bad_probabilities() {
        NetFaultPlan {
            reset_prob: 1.5,
            ..NetFaultPlan::quiet(0)
        }
        .validate();
    }
}
