#![warn(missing_docs)]
//! Reactive discrete-event simulation of modulo-scheduled systems.
//!
//! The paper targets reactive (hard) real-time systems whose processes are
//! triggered by spontaneous events at unpredictable times — exactly the
//! situation process merging cannot handle. This crate closes the loop by
//! *executing* a scheduled system under such workloads:
//!
//! * [`workload`] — trigger patterns (periodic, random, bursty),
//! * [`behavior`] — per-activation block sequences including loops with
//!   run-time trip counts and delays of unknown length,
//! * [`engine`] — the simulator: processes wait for their grid slot
//!   (equations 2–3), run their blocks' static schedules, and release,
//! * [`fault`] — deterministic, seed-driven fault injection (jittered
//!   triggers, dropped authorization slots, transient pool outages) with
//!   recovery metrics,
//! * [`monitor`] — instantaneous resource accounting proving that the
//!   static access authorization needs **no runtime executive**: the
//!   shared pools are never overdrawn,
//! * [`trace`] — human-readable event logs.
//!
//! # Example
//!
//! ```
//! use tcms_core::{ModuloScheduler, SharingSpec};
//! use tcms_ir::generators::paper_system;
//! use tcms_sim::{SimConfig, Simulator, Trigger};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (sys, _) = paper_system()?;
//! let spec = SharingSpec::all_global(&sys, 5);
//! let out = ModuloScheduler::new(&sys, spec.clone())?.run()?;
//! let sim = Simulator::new(&sys, &spec, &out.schedule);
//! let workloads = vec![Trigger::Random { mean_gap: 40 }; sys.num_processes()];
//! let result = sim.run(&workloads, &SimConfig { horizon: 2_000, seed: 7 });
//! assert!(result.conflicts.is_empty(), "static authorization suffices");
//! # Ok(())
//! # }
//! ```

pub mod behavior;
pub mod engine;
pub mod fault;
pub mod monitor;
pub mod netfault;
pub mod trace;
pub mod workload;

pub use behavior::{ProcessBehavior, Segment, UnrolledStep};
pub use engine::{SimConfig, SimResult, Simulator};
pub use fault::{FaultMetrics, FaultPlan};
pub use monitor::{Conflict, ResourceMonitor};
pub use netfault::{ChunkFault, NetFaultPlan, NetFaultStream};
pub use trace::{Event, EventKind};
pub use workload::Trigger;
