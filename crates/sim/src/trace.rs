//! Simulation event traces.

use std::fmt::Write as _;

use tcms_ir::{BlockId, ProcessId, System};

/// What happened at one point of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The environment triggered the process.
    Triggered {
        /// Triggered process.
        process: ProcessId,
    },
    /// A block started after waiting for its grid slot.
    Started {
        /// Starting block.
        block: BlockId,
        /// Time the owning activation was triggered (for latency).
        triggered_at: u64,
    },
    /// A block finished.
    Completed {
        /// Finishing block.
        block: BlockId,
    },
}

/// A timestamped simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Absolute simulation time.
    pub time: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// Renders the first `limit` events as one line each.
pub fn render_events(system: &System, events: &[Event], limit: usize) -> String {
    let mut out = String::new();
    for e in events.iter().take(limit) {
        let _ = match e.kind {
            EventKind::Triggered { process } => writeln!(
                out,
                "[{:>6}] trigger  {}",
                e.time,
                system.process(process).name()
            ),
            EventKind::Started {
                block,
                triggered_at,
            } => writeln!(
                out,
                "[{:>6}] start    {}.{} (waited {})",
                e.time,
                system.process(system.block(block).process()).name(),
                system.block(block).name(),
                e.time - triggered_at
            ),
            EventKind::Completed { block } => writeln!(
                out,
                "[{:>6}] complete {}.{}",
                e.time,
                system.process(system.block(block).process()).name(),
                system.block(block).name()
            ),
        };
    }
    if events.len() > limit {
        let _ = writeln!(out, "... {} more events", events.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;

    #[test]
    fn render_formats_lines() {
        let (sys, _) = paper_system().unwrap();
        let p = sys.process_ids().next().unwrap();
        let b = sys.block_ids().next().unwrap();
        let events = vec![
            Event {
                time: 0,
                kind: EventKind::Triggered { process: p },
            },
            Event {
                time: 5,
                kind: EventKind::Started {
                    block: b,
                    triggered_at: 0,
                },
            },
            Event {
                time: 35,
                kind: EventKind::Completed { block: b },
            },
        ];
        let text = render_events(&sys, &events, 10);
        assert!(text.contains("trigger  P1"));
        assert!(text.contains("start    P1.body (waited 5)"));
        assert!(text.contains("complete P1.body"));
    }

    #[test]
    fn render_truncates() {
        let (sys, _) = paper_system().unwrap();
        let p = sys.process_ids().next().unwrap();
        let events: Vec<Event> = (0..10)
            .map(|t| Event {
                time: t,
                kind: EventKind::Triggered { process: p },
            })
            .collect();
        let text = render_events(&sys, &events, 3);
        assert!(text.contains("... 7 more events"));
    }
}
