//! Trigger patterns for reactive processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When a process is (re-)triggered by its environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fires every `interval` steps starting at `offset`.
    Periodic {
        /// Distance between triggers.
        interval: u64,
        /// First trigger time.
        offset: u64,
    },
    /// Spontaneous events with geometrically distributed gaps of the given
    /// mean — the "unpredictable times" of the paper's introduction.
    Random {
        /// Mean gap between triggers (must be ≥ 1).
        mean_gap: u64,
    },
    /// Bursts of `count` triggers `gap_within` apart, bursts separated by
    /// `gap_between`.
    Burst {
        /// Triggers per burst.
        count: u32,
        /// Spacing inside a burst.
        gap_within: u64,
        /// Spacing between burst starts.
        gap_between: u64,
    },
}

impl Trigger {
    /// Generates all trigger times below `horizon`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero interval/mean/count).
    pub fn times(&self, horizon: u64, seed: u64) -> Vec<u64> {
        match *self {
            Trigger::Periodic { interval, offset } => {
                assert!(interval > 0, "interval must be positive");
                (0..)
                    .map(|i| offset + i * interval)
                    .take_while(|&t| t < horizon)
                    .collect()
            }
            Trigger::Random { mean_gap } => {
                assert!(mean_gap > 0, "mean gap must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let p = 1.0 / mean_gap as f64;
                let mut out = Vec::new();
                let mut t = 0u64;
                while t < horizon {
                    // Geometric gap with success probability p.
                    let mut gap = 1u64;
                    while rng.random::<f64>() > p && gap < 64 * mean_gap {
                        gap += 1;
                    }
                    t += gap;
                    if t < horizon {
                        out.push(t);
                    }
                }
                out
            }
            Trigger::Burst {
                count,
                gap_within,
                gap_between,
            } => {
                assert!(count > 0, "burst count must be positive");
                assert!(gap_between > 0, "burst spacing must be positive");
                let mut out = Vec::new();
                let mut base = 0u64;
                while base < horizon {
                    for i in 0..u64::from(count) {
                        let t = base + i * gap_within;
                        if t < horizon {
                            out.push(t);
                        }
                    }
                    base += gap_between;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_times() {
        let t = Trigger::Periodic {
            interval: 10,
            offset: 3,
        };
        assert_eq!(t.times(35, 0), vec![3, 13, 23, 33]);
    }

    #[test]
    fn random_is_deterministic_and_mean_is_plausible() {
        let t = Trigger::Random { mean_gap: 20 };
        let a = t.times(10_000, 42);
        let b = t.times(10_000, 42);
        assert_eq!(a, b);
        let c = t.times(10_000, 43);
        assert_ne!(a, c);
        // Mean gap within a factor of two of the target.
        let mean = 10_000.0 / a.len() as f64;
        assert!(mean > 10.0 && mean < 40.0, "observed mean {mean}");
    }

    #[test]
    fn random_times_sorted_strictly() {
        let t = Trigger::Random { mean_gap: 3 };
        let times = t.times(1_000, 5);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn burst_times() {
        let t = Trigger::Burst {
            count: 3,
            gap_within: 2,
            gap_between: 10,
        };
        assert_eq!(t.times(15, 0), vec![0, 2, 4, 10, 12, 14]);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = Trigger::Periodic {
            interval: 0,
            offset: 0,
        }
        .times(10, 0);
    }
}
