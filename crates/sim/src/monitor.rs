//! Instantaneous resource accounting during simulation.

use tcms_ir::ResourceTypeId;

/// A detected pool overdraw — if the scheduler and authorization are
/// correct, none ever occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Overdrawn resource type.
    pub rtype: ResourceTypeId,
    /// Absolute time step of the overdraw.
    pub time: u64,
    /// Concurrent usage observed.
    pub used: u32,
    /// Available instances.
    pub available: u32,
}

/// Tracks the concurrent usage of every resource pool over a finite
/// horizon.
#[derive(Debug, Clone)]
pub struct ResourceMonitor {
    /// `usage[pool][t]`.
    usage: Vec<Vec<u32>>,
    horizon: u64,
}

impl ResourceMonitor {
    /// Creates a monitor for `pools` pools over `horizon` steps.
    pub fn new(pools: usize, horizon: u64) -> Self {
        ResourceMonitor {
            usage: vec![vec![0; horizon as usize]; pools],
            horizon,
        }
    }

    /// Records `count` busy instances of pool `pool` at time `t`.
    /// Times at or past the horizon are ignored.
    pub fn record(&mut self, pool: usize, t: u64, count: u32) {
        if t < self.horizon {
            self.usage[pool][t as usize] += count;
        }
    }

    /// Peak concurrent usage of a pool.
    pub fn peak(&self, pool: usize) -> u32 {
        self.usage[pool].iter().copied().max().unwrap_or(0)
    }

    /// Total busy instance-cycles of a pool.
    pub fn busy_cycles(&self, pool: usize) -> u64 {
        self.usage[pool].iter().map(|&u| u64::from(u)).sum()
    }

    /// Average utilization of a pool with `instances` units.
    pub fn utilization(&self, pool: usize, instances: u32) -> f64 {
        if instances == 0 || self.horizon == 0 {
            return 0.0;
        }
        self.busy_cycles(pool) as f64 / (f64::from(instances) * self.horizon as f64)
    }

    /// The per-step usage series of a pool (length = horizon).
    pub fn usage_series(&self, pool: usize) -> &[u32] {
        &self.usage[pool]
    }

    /// All overdraws of pool `pool` against `available` instances, tagged
    /// with `rtype`.
    pub fn conflicts(&self, pool: usize, available: u32, rtype: ResourceTypeId) -> Vec<Conflict> {
        self.usage[pool]
            .iter()
            .enumerate()
            .filter(|&(_, &u)| u > available)
            .map(|(t, &u)| Conflict {
                rtype,
                time: t as u64,
                used: u,
                available,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_peak() {
        let mut m = ResourceMonitor::new(2, 10);
        m.record(0, 3, 2);
        m.record(0, 3, 1);
        m.record(1, 9, 4);
        m.record(1, 10, 9); // past horizon: ignored
        assert_eq!(m.peak(0), 3);
        assert_eq!(m.peak(1), 4);
        assert_eq!(m.busy_cycles(0), 3);
    }

    #[test]
    fn utilization_math() {
        let mut m = ResourceMonitor::new(1, 10);
        for t in 0..5 {
            m.record(0, t, 2);
        }
        assert!((m.utilization(0, 2) - 0.5).abs() < 1e-12);
        assert_eq!(m.utilization(0, 0), 0.0);
    }

    #[test]
    fn utilization_guards_zero_instances_and_zero_horizon() {
        // Both divisor factors can be zero independently; each must yield
        // a defined 0.0 rather than NaN/inf.
        let m = ResourceMonitor::new(1, 0);
        assert_eq!(m.utilization(0, 4), 0.0, "zero horizon");
        assert_eq!(m.utilization(0, 0), 0.0, "zero horizon and instances");
        let m = ResourceMonitor::new(1, 8);
        assert_eq!(m.utilization(0, 0), 0.0, "zero instances");
        assert!(m.utilization(0, 1).is_finite());
    }

    #[test]
    fn conflicts_detected() {
        let mut m = ResourceMonitor::new(1, 5);
        m.record(0, 2, 4);
        let c = m.conflicts(0, 3, ResourceTypeId::from_index(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].time, 2);
        assert_eq!(c[0].used, 4);
        assert!(m.conflicts(0, 4, ResourceTypeId::from_index(1)).is_empty());
    }
}
