//! Deterministic fault injection for the reactive simulator.
//!
//! The paper's access authorization is *static*: it proves conflict
//! freedom only while triggers land where the grid admits them and every
//! pool instance is healthy. This module stresses that assumption with
//! seed-reproducible faults — jittered triggers, dropped (stale)
//! authorization slots and transient resource outages with repair times —
//! and measures how the scheduled system degrades and recovers:
//! missed-deadline counts, authorization violations against the shrunken
//! pool, and the time to drain the backlog after the last trigger.
//!
//! All randomness derives from [`FaultPlan::seed`] alone, so two runs with
//! the same plan, workload and horizon are bit-identical — faults are a
//! reproducible experiment, not noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seed-driven fault-injection plan. The default plan injects nothing;
/// enable individual fault classes by raising their fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the workload seed).
    pub seed: u64,
    /// Each trigger is delayed by a uniform draw in `0..=trigger_jitter`
    /// steps — sensor latency or interrupt coalescing ahead of the grid.
    pub trigger_jitter: u64,
    /// Probability that a block's authorization slot is dropped at each
    /// attempt: the block misses its grid point and must wait a full
    /// spacing for the next one (a stale authorization window).
    pub drop_slot_prob: f64,
    /// Per-step probability that a transient outage takes one instance of
    /// each global pool out of service.
    pub outage_rate: f64,
    /// Steps an outage lasts before the instance is repaired.
    pub repair_time: u64,
    /// Allowance beyond an activation's nominal span (grid alignment plus
    /// block makespans plus declared delays) before its completion counts
    /// as a missed deadline.
    pub deadline_slack: u64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            trigger_jitter: 0,
            drop_slot_prob: 0.0,
            outage_rate: 0.0,
            repair_time: 0,
            deadline_slack: 0,
        }
    }

    /// A moderate all-classes plan used by the demo sweep: small jitter,
    /// occasional slot drops and rare short outages.
    #[must_use]
    pub fn moderate(seed: u64) -> Self {
        FaultPlan {
            seed,
            trigger_jitter: 3,
            drop_slot_prob: 0.05,
            outage_rate: 0.002,
            repair_time: 25,
            deadline_slack: 10,
        }
    }

    /// Checks the plan's probabilities.
    ///
    /// # Panics
    ///
    /// Panics if a probability is not a finite value in `[0, 1)`.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_slot_prob", self.drop_slot_prob),
            ("outage_rate", self.outage_rate),
        ] {
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "{name} must be a finite probability in [0, 1), got {p}"
            );
        }
    }

    /// Whether any fault class is enabled.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.trigger_jitter == 0 && self.drop_slot_prob == 0.0 && self.outage_rate == 0.0
    }

    /// The deterministic fault RNG for process `pid`.
    pub(crate) fn process_rng(&self, pid: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xD1B5_4A32_D192_ED03)
                .wrapping_add(0x5851_F42D ^ pid as u64),
        )
    }

    /// Generates the outage timeline of one pool: `unavailable[t]` is the
    /// number of instances out of service at step `t`. Outages of one pool
    /// never overlap (an instance is repaired before the next draw), so
    /// at most one instance per pool is down at a time.
    pub(crate) fn outage_timeline(&self, pool: usize, horizon: u64) -> (Vec<u32>, u64) {
        let mut unavailable = vec![0u32; horizon as usize];
        let mut outages = 0u64;
        if self.outage_rate <= 0.0 || self.repair_time == 0 {
            return (unavailable, outages);
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xBEEF ^ pool as u64),
        );
        let mut t = 0u64;
        while t < horizon {
            if rng.random::<f64>() < self.outage_rate {
                outages += 1;
                let end = (t + self.repair_time).min(horizon);
                for u in t..end {
                    unavailable[u as usize] += 1;
                }
                t += self.repair_time;
            } else {
                t += 1;
            }
        }
        (unavailable, outages)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::quiet(0)
    }
}

/// Recovery metrics of a faulted run — all zero when the plan is quiet
/// and the workload leaves slack.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Total trigger delay injected by jitter (steps).
    pub jitter_injected: u64,
    /// Authorization slots dropped (each costs one grid spacing of wait).
    pub dropped_slots: u64,
    /// Transient outages started across all global pools.
    pub outages: u64,
    /// Instance-steps lost to outages.
    pub outage_instance_steps: u64,
    /// Steps at which a pool's observed usage exceeded its *effective*
    /// (outage-reduced) size — the static authorization overdrawing the
    /// degraded pool. Zero whenever no outage overlaps a busy step.
    pub authorization_violations: u64,
    /// Activations whose trigger-to-completion latency exceeded their
    /// nominal span plus [`FaultPlan::deadline_slack`].
    pub missed_deadlines: u64,
    /// Steps between the last trigger and the last block completion —
    /// how long the system needs to drain its backlog once the
    /// environment goes quiet.
    pub time_to_drain: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        let p = FaultPlan::quiet(7);
        assert!(p.is_quiet());
        p.validate();
        let (timeline, outages) = p.outage_timeline(0, 100);
        assert_eq!(outages, 0);
        assert!(timeline.iter().all(|&u| u == 0));
    }

    #[test]
    fn outage_timeline_is_deterministic_and_respects_repair_time() {
        let mut p = FaultPlan::quiet(3);
        p.outage_rate = 0.01;
        p.repair_time = 20;
        let (a, na) = p.outage_timeline(1, 5_000);
        let (b, nb) = p.outage_timeline(1, 5_000);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert!(na > 0, "rate 0.01 over 5000 steps should trigger");
        // Non-overlapping outages: never more than one instance down.
        assert!(a.iter().all(|&u| u <= 1));
        let down: u64 = a.iter().map(|&u| u64::from(u)).sum();
        assert!(down <= na * 20, "no outage exceeds its repair time");
        assert!(down >= (na - 1) * 20, "only the last outage may be clipped");
    }

    #[test]
    fn different_pools_draw_different_outages() {
        let mut p = FaultPlan::quiet(3);
        p.outage_rate = 0.01;
        p.repair_time = 10;
        let (a, _) = p.outage_timeline(0, 5_000);
        let (b, _) = p.outage_timeline(1, 5_000);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "drop_slot_prob")]
    fn probability_out_of_range_rejected() {
        let mut p = FaultPlan::quiet(0);
        p.drop_slot_prob = 1.5;
        p.validate();
    }
}
