//! Seeded synthetic workload generation shared by the serve benchmarks.
//!
//! The replay, load and chaos studies all need the same ingredients: a
//! deterministic stream of request lines drawn from a Zipf-skewed
//! popularity distribution over a pool of synthetic designs. This
//! module owns that machinery — a tiny LCG, the Zipf CDF, the design
//! factory and a percentile helper for latency summaries — so every
//! binary reproduces the identical stream for the same seed.

use tcms_ir::generators::RandomSystemConfig;
use tcms_serve::ScheduleOptions;

/// Sizes the layered-DAG generator so the expected op count lands near
/// `ops` over `processes` processes: each layer draws 3..=5 ops (mean 4)
/// per process. Shared by `gen_designs` and the partition-scaling study
/// so both produce the same specs for the same sizing flags.
#[must_use]
pub fn scaling_config(ops: usize, processes: usize) -> RandomSystemConfig {
    let per_process = ops.div_ceil(processes).max(1);
    RandomSystemConfig {
        processes,
        blocks_per_process: 1,
        layers: per_process.div_ceil(4).max(1),
        ops_per_layer: (3, 5),
        edge_prob: 0.35,
        slack: 2.0,
        type_weights: [4, 1, 2],
    }
}

/// Advances the 64-bit LCG (Knuth's MMIX constants) and returns the new
/// state.
pub fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state
}

/// Uniform draw in `[0, 1)` from the top 53 bits of the LCG.
#[allow(clippy::cast_precision_loss)]
pub fn uniform01(state: &mut u64) -> f64 {
    (lcg_next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Cumulative Zipf(α) distribution over `n` ranks; α = 0 is uniform.
#[allow(clippy::cast_precision_loss)]
#[must_use]
pub fn zipf_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Draws a rank from a cumulative distribution.
pub fn draw(cdf: &[f64], state: &mut u64) -> usize {
    let u = uniform01(state);
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

/// A small synthetic design; `stages` controls its size and `broken`
/// makes it fail to parse (journals must capture error outcomes too).
#[must_use]
pub fn make_design(stages: usize, broken: bool) -> String {
    if broken {
        return format!("resource add delay=oops stages={stages}");
    }
    let time = 6 + 3 * stages;
    let mut lines = vec![
        "resource add delay=1 area=1".to_owned(),
        "resource mul delay=2 area=4 pipelined".to_owned(),
    ];
    for pname in ["P", "Q"] {
        lines.push(format!("process {pname}"));
        lines.push(format!("block body time={time}"));
        for s in 0..stages {
            lines.push(format!("op m{s} mul"));
            lines.push(format!("op a{s} add"));
        }
        for s in 0..stages {
            lines.push(format!("edge m{s} a{s}"));
            if s > 0 {
                lines.push(format!("edge a{} m{s}", s - 1));
            }
        }
    }
    lines.push(String::new());
    lines.join("\n")
}

/// Generates the synthetic request stream for one skew setting: a pool
/// of `designs` designs, `requests` schedule requests drawn Zipf(α)
/// over the pool. The same arguments always yield the same stream.
#[must_use]
pub fn synthetic_requests(requests: usize, designs: usize, alpha: f64, seed: u64) -> Vec<String> {
    let pool: Vec<String> = (0..designs)
        // The two least-popular ranks are broken designs: the journal
        // and the replay must carry error outcomes too, and placing
        // them in the Zipf tail keeps the hot set all-valid so the
        // hit-rate-vs-skew comparison stays clean.
        .map(|d| make_design(2 + d % 4, d + 2 >= designs))
        .collect();
    let cdf = zipf_cdf(designs, alpha);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..requests)
        .map(|r| {
            let design = &pool[draw(&cdf, &mut state)];
            tcms_serve::client::schedule_request_line(
                &format!("r{r}"),
                design,
                &ScheduleOptions {
                    all_global: Some(4),
                    ..ScheduleOptions::default()
                },
                None,
            )
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let idx = (((sorted.len() - 1) as f64) * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a = synthetic_requests(40, 8, 1.2, 7);
        let b = synthetic_requests(40, 8, 1.2, 7);
        assert_eq!(a, b);
        let c = synthetic_requests(40, 8, 1.2, 8);
        assert_ne!(a, c, "a different seed reorders the stream");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(16, 1.2);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
        // Uniform skew spreads mass evenly.
        let flat = zipf_cdf(4, 0.0);
        assert!((flat[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn skew_concentrates_draws_on_low_ranks() {
        let mut state = 3u64;
        let cdf = zipf_cdf(10, 1.5);
        let hot = (0..500).filter(|_| draw(&cdf, &mut state) == 0).count();
        assert!(hot > 150, "rank 0 drew only {hot}/500 under heavy skew");
    }

    #[test]
    fn designs_parse_unless_broken() {
        assert!(tcms_ir::parse::parse_system(&make_design(3, false)).is_ok());
        assert!(tcms_ir::parse::parse_system(&make_design(3, true)).is_err());
    }

    #[test]
    fn percentile_takes_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&s, 0.0) - 1.0).abs() < f64::EPSILON);
        assert!((percentile(&s, 1.0) - 4.0).abs() < f64::EPSILON);
        assert!((percentile(&[], 0.5)).abs() < f64::EPSILON);
    }
}
