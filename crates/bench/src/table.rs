//! Minimal fixed-width text tables for experiment output.

/// A left-aligned text table built row by row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row of cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a separator row (rendered as dashes spanning each column).
    pub fn sep(&mut self) -> &mut Self {
        self.rows.push(vec!["--".to_owned()]);
        self
    }

    /// Renders with two spaces between columns.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &self.rows {
            if row.len() == 1 && row[0] == "--" {
                continue;
            }
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let mut out = String::new();
        for row in &self.rows {
            if row.len() == 1 && row[0] == "--" {
                out.push_str(&"-".repeat(total));
            } else {
                let mut line = String::new();
                for (i, c) in row.iter().enumerate() {
                    if i > 0 {
                        line.push_str("  ");
                    }
                    line.push_str(&format!("{c:<width$}", width = widths[i]));
                }
                out.push_str(line.trim_end());
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a slot profile like `1 0 2 0 1`.
pub fn profile(counts: &[u32]) -> String {
    counts
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Formats a float profile with one decimal, like `0.3 1.0 0.0`.
pub fn float_profile(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.2}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new();
        t.row(["type", "count"]);
        t.sep();
        t.row(["mul", "3"]);
        t.row(["add", "12"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "type  count");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "mul   3");
        assert_eq!(lines[3], "add   12");
    }

    #[test]
    fn profiles_format() {
        assert_eq!(profile(&[1, 0, 2]), "1 0 2");
        assert_eq!(float_profile(&[0.5, 1.0]), "0.50 1.00");
    }
}
