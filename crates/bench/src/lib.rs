#![warn(missing_docs)]
//! Benchmark harness reproducing every table and figure of the paper.
//!
//! * [`experiments`] — reusable runners for Table 1, Figure 1 and Figure 2
//!   plus the render functions the `repro_*` binaries print,
//! * [`table`] — fixed-width text tables,
//! * [`workload`] — seeded synthetic request streams (LCG + Zipf) shared
//!   by the serve-facing benchmarks.
//!
//! Binaries (run with `cargo run -p tcms-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `repro_table1` | Table 1: global vs. pure-local resource counts/area |
//! | `repro_figure1` | Figure 1: periodic access-authorization mapping |
//! | `repro_figure2` | Figure 2: unmodified vs. modified force ratings |
//! | `repro_period_sweep` | §3.2 period trade-off curve |
//! | `repro_scope_ablation` | per-type local/global ablation of step (S1) |
//! | `repro_partition_scaling` | partitioned vs monolithic scheduling (DESIGN §13) |
//!
//! Criterion benches (`cargo bench -p tcms-bench`) measure the scheduling
//! runtimes the paper reports alongside Table 1, the FDS-vs-IFDS baseline
//! gap and scaling with system size.

pub mod experiments;
pub mod obs;
pub mod table;
pub mod workload;

pub use experiments::{
    paper_spec, render_stats, render_table1, run_figure1, run_figure1_recorded, run_figure2,
    run_figure2_recorded, run_table1, run_table1_recorded, stats_requested, Figure1Data,
    Figure2Data, Table1Results, Table1Run,
};
pub use obs::ObsSession;
pub use table::{float_profile, profile, TextTable};
pub use workload::{make_design, percentile, scaling_config, synthetic_requests, zipf_cdf};
