//! Reusable experiment runners shared by the `repro_*` binaries, the
//! criterion benches and the integration tests.

use std::time::{Duration, Instant};

use tcms_core::{compute_report, ModuloScheduler, ScheduleReport, SharingSpec};
use tcms_fds::{FdsConfig, ForceEvaluator, IfdsStats, Schedule};
use tcms_ir::generators::{paper_system, PaperTypes};
use tcms_ir::{FrameTable, System, TimeFrame};
use tcms_obs::{span, NoopRecorder, Recorder};

use crate::table::{float_profile, profile, TextTable};

/// The paper's sharing configuration: adder and multiplier global over all
/// five processes, subtracter global over the two diffeq processes, every
/// period 5. (`all_global` derives exactly these groups from the usage
/// sets.)
pub fn paper_spec(system: &System) -> SharingSpec {
    SharingSpec::all_global(system, 5)
}

/// One scheduling run of the Table-1 comparison.
#[derive(Debug, Clone)]
pub struct Table1Run {
    /// `"global"` or `"local"`.
    pub label: &'static str,
    /// The spec the run used.
    pub spec: SharingSpec,
    /// The produced schedule.
    pub schedule: Schedule,
    /// Resource/area accounting.
    pub report: ScheduleReport,
    /// IFDS iterations.
    pub iterations: u64,
    /// Wall-clock scheduling time.
    pub wall: Duration,
    /// Engine instrumentation (candidate evaluations, cache hits, phase
    /// times).
    pub stats: IfdsStats,
}

/// Whether the invoking binary was passed `--stats` (print engine
/// instrumentation alongside the reproduction output).
pub fn stats_requested() -> bool {
    std::env::args().any(|a| a == "--stats")
}

/// Renders one engine-instrumentation line for the `--stats` output of the
/// `repro_*` binaries.
pub fn render_stats(label: &str, stats: &IfdsStats) -> String {
    format!(
        "{label}: {} iterations, {} forces evaluated, {} cache hits / {} misses ({:.1}% hit rate), eval {:.2?}, commit {:.2?}, total {:.2?}\n",
        stats.iterations,
        stats.ops_evaluated,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.hit_rate(),
        stats.eval_time,
        stats.commit_time,
        stats.total_time,
    )
}

/// Both runs of the Table-1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Results {
    /// The 5-process benchmark system.
    pub system: System,
    /// Operator-set handles.
    pub types: PaperTypes,
    /// Modulo scheduling with the paper's global assignment.
    pub global: Table1Run,
    /// Traditional pure-local scheduling.
    pub local: Table1Run,
}

impl Table1Results {
    /// Area ratio local/global (the paper reports ≈ 1.65).
    pub fn area_ratio(&self) -> f64 {
        self.local.report.total_area() as f64 / self.global.report.total_area() as f64
    }

    /// Relative saving (the paper reports ≈ 40 %).
    pub fn saving_percent(&self) -> f64 {
        100.0
            * (1.0 - self.global.report.total_area() as f64 / self.local.report.total_area() as f64)
    }
}

fn timed_run(
    system: &System,
    spec: SharingSpec,
    label: &'static str,
    rec: &dyn Recorder,
) -> Table1Run {
    let _run = span!(rec, "table1.run", label = label);
    let start = Instant::now();
    let out = ModuloScheduler::new(system, spec.clone())
        .expect("valid spec")
        .run_recorded(rec)
        .expect("paper specs are feasible under an unlimited budget");
    let wall = start.elapsed();
    Table1Run {
        label,
        spec,
        report: out.report(),
        iterations: out.iterations,
        stats: out.stats,
        schedule: out.schedule,
        wall,
    }
}

/// Runs the full Table-1 experiment (global vs. pure-local).
pub fn run_table1() -> Table1Results {
    run_table1_recorded(&NoopRecorder)
}

/// [`run_table1`] with observability: each of the two scheduling runs is
/// wrapped in a `"table1.run"` span and records its full S3 convergence
/// timeline through `rec`. Results are identical to [`run_table1`].
pub fn run_table1_recorded(rec: &dyn Recorder) -> Table1Results {
    let (system, types) = paper_system().expect("paper system builds");
    let global = timed_run(&system, paper_spec(&system), "global", rec);
    let local = timed_run(&system, SharingSpec::all_local(&system), "local", rec);
    Table1Results {
        system,
        types,
        global,
        local,
    }
}

/// Renders the Table-1 experiment in the paper's layout: per resource type
/// and process the modulo-max transformed usage profile and the resource
/// counts, followed by the totals and runtimes.
pub fn render_table1(r: &Table1Results) -> String {
    let sys = &r.system;
    let mut t = TextTable::new();
    t.row([
        "type",
        "process",
        "modulo-max profile",
        "#",
        "usage profile",
    ]);
    t.sep();
    for (k, rt) in sys.library().iter() {
        let auth = r.global.report.of_type(k).authorization.as_ref();
        if let Some(auth) = auth {
            for (p, grants) in auth.grants() {
                let block = sys.process(*p).blocks()[0];
                let usage = r.global.schedule.usage(sys, block, k);
                t.row([
                    rt.name().to_owned(),
                    sys.process(*p).name().to_owned(),
                    profile(grants),
                    String::new(),
                    profile(&usage),
                ]);
            }
            t.row([
                rt.name().to_owned(),
                "all".to_owned(),
                profile(&auth.slot_totals()),
                auth.pool().to_string(),
                String::new(),
            ]);
            t.sep();
        }
    }
    let mut out = String::from("Table 1: scheduling results of the multi-process example\n\n");
    out.push_str(&t.render());
    out.push('\n');
    for run in [&r.global, &r.local] {
        let counts: Vec<String> = sys
            .library()
            .iter()
            .map(|(k, rt)| format!("{} {}", run.report.instances(k), rt.name()))
            .collect();
        out.push_str(&format!(
            "{:<6} assignment: {}  area {:>3}  ({} iterations, {:.2?})\n",
            run.label,
            counts.join(", "),
            run.report.total_area(),
            run.iterations,
            run.wall
        ));
    }
    out.push_str(&format!(
        "\nlocal/global area ratio {:.2} (paper: 1.65)   saving {:.0}% (paper: ~40%)\n",
        r.area_ratio(),
        r.saving_percent()
    ));
    out
}

/// Data of the Figure-1 reproduction: the access-authorization mapping of
/// one process onto a shared resource type.
#[derive(Debug, Clone)]
pub struct Figure1Data {
    /// Block-local usage profile of the chosen process and type.
    pub usage: Vec<u32>,
    /// The folded (modulo-max) profile = granted units per slot.
    pub grants: Vec<u32>,
    /// Period of the type.
    pub period: u32,
    /// Absolute time steps (up to a horizon) at which the process holds an
    /// authorization.
    pub authorized_steps: Vec<u64>,
    /// The rendered figure.
    pub rendered: String,
}

/// Reproduces Figure 1 for the paper system: process P4 (diffeq) on the
/// shared multiplier, period 5.
pub fn run_figure1() -> Figure1Data {
    run_figure1_recorded(&NoopRecorder)
}

/// [`run_figure1`] with observability: the scheduling run records its S3
/// convergence through `rec` under a `"figure1.run"` span.
pub fn run_figure1_recorded(rec: &dyn Recorder) -> Figure1Data {
    let _fig = span!(rec, "figure1.run");
    let (system, types) = paper_system().expect("paper system builds");
    let spec = paper_spec(&system);
    let out = ModuloScheduler::new(&system, spec.clone())
        .expect("valid spec")
        .run_recorded(rec)
        .expect("paper specs are feasible under an unlimited budget");
    let p4 = system.process_by_name("P4").expect("paper process");
    let block = system.process(p4).blocks()[0];
    let usage = out.schedule.usage(&system, block, types.mul);
    let report = compute_report(&system, &spec, &out.schedule);
    let auth = report
        .of_type(types.mul)
        .authorization
        .as_ref()
        .expect("mul is global");
    let grants: Vec<u32> = (0..5).map(|s| auth.granted(p4, s)).collect();
    let horizon = 20u64;
    let authorized_steps: Vec<u64> = (0..horizon)
        .filter(|&t| auth.granted_at(p4, t) > 0)
        .collect();

    let mut rendered = String::from(
        "Figure 1: time steps of access authorization for process P4 onto the shared multiplier\n\n",
    );
    rendered.push_str(&format!("block-local usage     : {}\n", profile(&usage)));
    rendered.push_str(&format!("granted per slot (ρ=5): {}\n\n", profile(&grants)));
    rendered.push_str("absolute time: ");
    for t in 0..horizon {
        rendered.push_str(&format!("{:>3}", t % 10));
    }
    rendered.push_str("\nauthorized   : ");
    for t in 0..horizon {
        if auth.granted_at(p4, t) > 0 {
            rendered.push_str("  ~");
        } else {
            rendered.push_str("  .");
        }
    }
    rendered.push_str("\n\nA grant for slot τ holds at every absolute step t with t mod 5 = τ.\n");
    Figure1Data {
        usage,
        grants,
        period: 5,
        authorized_steps,
        rendered,
    }
}

/// Data of the Figure-2 reproduction: per-placement forces of the
/// unmodified and the first-part-modified algorithm on the two-operation
/// block.
#[derive(Debug, Clone)]
pub struct Figure2Data {
    /// Candidate start times of the mobile operation.
    pub candidates: Vec<u32>,
    /// Classical forces per candidate.
    pub unmodified: Vec<f64>,
    /// Modulo-modified forces per candidate.
    pub modified: Vec<f64>,
    /// The distribution `D(t)` of the partial solution.
    pub dist: Vec<f64>,
    /// Its modulo-max transform `D̂(τ)`.
    pub dhat: Vec<f64>,
    /// The rendered figure.
    pub rendered: String,
}

/// Reproduces the Figure-2 situation: a block of time range 4 with one
/// operation fixed at step 0 and one mobile operation with frame `[0,2]`,
/// period 2. The unmodified algorithm rates steps 1 and 2 identically; the
/// modification hides the displacement of step 2 under the slot maximum
/// and prefers the periodic alignment.
pub fn run_figure2() -> Figure2Data {
    run_figure2_recorded(&NoopRecorder)
}

/// [`run_figure2`] with observability: the per-candidate force ratings are
/// recorded as `"figure2.force"` events under a `"figure2.run"` span.
pub fn run_figure2_recorded(rec: &dyn Recorder) -> Figure2Data {
    let _fig = span!(rec, "figure2.run");
    use tcms_core::ModuloEvaluator;
    use tcms_fds::ClassicEvaluator;
    use tcms_ir::generators::paper_library;
    use tcms_ir::SystemBuilder;

    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    let p1 = b.add_process("P1");
    let blk = b.add_block(p1, "body", 4).expect("time range ok");
    let a = b.add_op(blk, "a", types.add).expect("fresh name");
    let fixed = b.add_op(blk, "b", types.add).expect("fresh name");
    // A second process so the adder can be globally assigned.
    let p2 = b.add_process("P2");
    let blk2 = b.add_block(p2, "body", 4).expect("time range ok");
    let c = b.add_op(blk2, "c", types.add).expect("fresh name");
    let system = b.build().expect("valid system");

    let mut spec = SharingSpec::all_local(&system);
    spec.set_global(types.add, vec![p1, p2], 2);
    spec.validate(&system).expect("valid spec");

    let mut frames = FrameTable::initial(&system);
    frames.set(fixed, TimeFrame::new(0, 0));
    frames.set(c, TimeFrame::new(1, 1));
    frames.set(a, TimeFrame::new(0, 2));

    // Lookahead 0 keeps the numbers identical to the hand calculation.
    let cfg = FdsConfig {
        lookahead: 0.0,
        spring_weights: tcms_fds::SpringWeights::Uniform,
        ..FdsConfig::default()
    };
    let classic = ClassicEvaluator::new(&system, &[blk], cfg.clone());
    // ClassicEvaluator builds from initial frames; rebuild its view of the
    // partial solution by committing the fixed placements.
    let mut classic = classic;
    let initial = FrameTable::initial(&system);
    classic.commit(
        &initial,
        &[(fixed, TimeFrame::new(0, 0)), (c, TimeFrame::new(1, 1))],
    );
    let modulo = ModuloEvaluator::new(&system, spec.clone(), cfg, &frames);

    let candidates = vec![0u32, 1, 2];
    let unmodified: Vec<f64> = candidates
        .iter()
        .map(|&t| classic.force(&frames, &[(a, TimeFrame::new(t, t))]))
        .collect();
    let modified: Vec<f64> = candidates
        .iter()
        .map(|&t| modulo.force(&frames, &[(a, TimeFrame::new(t, t))]))
        .collect();
    let dist = modulo.field().distributions().get(blk, types.add).to_vec();
    let dhat = modulo.field().block_profile(blk, types.add).to_vec();
    if rec.enabled() {
        for (i, &cand) in candidates.iter().enumerate() {
            rec.event(
                "figure2.force",
                &[
                    ("placement", cand.into()),
                    ("unmodified", unmodified[i].into()),
                    ("modified", modified[i].into()),
                ],
            );
        }
    }

    let mut rendered = String::from(
        "Figure 2: unmodified vs modified IFDS on the two-operation block (ρ = 2)\n\n",
    );
    rendered.push_str(&format!("D(t)  = {}\n", float_profile(&dist)));
    rendered.push_str(&format!("D̂(τ) = {}\n\n", float_profile(&dhat)));
    let mut t = TextTable::new();
    t.row(["placement of a", "unmodified force", "modified force"]);
    t.sep();
    for (i, &cand) in candidates.iter().enumerate() {
        t.row([
            format!("t = {cand}"),
            format!("{:+.3}", unmodified[i]),
            format!("{:+.3}", modified[i]),
        ]);
    }
    rendered.push_str(&t.render());
    rendered.push_str(
        "\nThe unmodified algorithm rates t=1 and t=2 identically; the modulo-maximum\n\
         transformation hides the displacement of t=2 under the slot maximum of the\n\
         operation fixed at t=0, so the modified force prefers the periodic alignment.\n",
    );
    Figure2Data {
        candidates,
        unmodified,
        modified,
        dist,
        dhat,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let r = run_table1();
        // Local: one resource per type and process at minimum.
        assert!(r.local.report.instances(r.types.mul) >= 5);
        assert!(r.local.report.instances(r.types.sub) >= 2);
        assert!(r.local.report.instances(r.types.add) >= 5);
        // Global sharing breaks that floor.
        assert!(r.global.report.instances(r.types.mul) < 5);
        assert!(r.global.report.instances(r.types.sub) <= 2);
        // Headline: the area ratio is in the paper's ballpark (1.65).
        let ratio = r.area_ratio();
        assert!(ratio > 1.3, "ratio {ratio}");
        // The render includes both assignments.
        let text = render_table1(&r);
        assert!(text.contains("global assignment"));
        assert!(text.contains("local  assignment"));
        assert!(text.contains("mul"));
    }

    #[test]
    fn figure1_authorized_steps_are_periodic() {
        let f = run_figure1();
        assert_eq!(f.period, 5);
        assert!(!f.authorized_steps.is_empty());
        for &t in &f.authorized_steps {
            assert!(f.grants[(t % 5) as usize] > 0);
        }
        assert!(f.rendered.contains("Figure 1"));
    }

    #[test]
    fn figure2_reproduces_preference_flip() {
        let f = run_figure2();
        // Unmodified: t=1 and t=2 tie (symmetric distribution).
        assert!((f.unmodified[1] - f.unmodified[2]).abs() < 1e-9);
        // Modified: t=2 (the aligned slot) is strictly preferred.
        assert!(f.modified[2] < f.modified[1] - 1e-9);
        assert!(f.modified[2] < f.modified[0] - 1e-9);
        // Hand-calculated values: D = (4/3, 1/3, 1/3, 0);
        // G = (4/3, 4/3) once P2's fixed op joins the group profile.
        // Placing `a` at 2 folds under the slot maximum: ΔG = (-1/3, -1/3)
        // and F = -8/9; the unmodified force at t=1/t=2 is -1/3.
        assert!((f.unmodified[1] - (-1.0 / 3.0)).abs() < 1e-9);
        assert!((f.modified[2] - (-8.0 / 9.0)).abs() < 1e-9);
        assert!(f.rendered.contains("modified force"));
    }
}
