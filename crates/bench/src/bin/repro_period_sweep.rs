//! Sweeps the uniform access period over the Table-1 system — the §3.2
//! trade-off: larger periods enable more sharing but stretch the
//! invocation grid of reactive processes.
//!
//! Candidate periods are scheduled in parallel (the runs are independent;
//! output order and results are deterministic). Pass `--stats` to also
//! print per-period engine instrumentation, and/or the observability
//! flags `--trace <file.json>`, `--timeline <file.jsonl>`, `--metrics`.

use tcms_bench::{render_stats, stats_requested, ObsSession, TextTable};
use tcms_core::explore::sweep_uniform_periods_recorded;
use tcms_fds::FdsConfig;
use tcms_ir::generators::paper_system;

fn main() {
    let obs = ObsSession::from_env_args();
    let (system, types) = paper_system().expect("paper system builds");
    let points =
        sweep_uniform_periods_recorded(&system, 1..=15, &FdsConfig::default(), obs.recorder())
            .expect("sweep runs");
    let mut t = TextTable::new();
    t.row([
        "period",
        "spacing",
        "add",
        "sub",
        "mul",
        "area",
        "iterations",
    ]);
    t.sep();
    for p in &points {
        t.row([
            p.period.to_string(),
            p.spacing.to_string(),
            p.report.instances(types.add).to_string(),
            p.report.instances(types.sub).to_string(),
            p.report.instances(types.mul).to_string(),
            p.report.total_area().to_string(),
            p.iterations.to_string(),
        ]);
    }
    println!("Period sweep over the Table-1 system (global {{+,-,*}}):\n");
    print!("{}", t.render());
    println!("\nLarger periods widen the sharing window but also the block start grid");
    println!("(spacing column) — the twofold impact discussed in section 3.2.");
    if stats_requested() {
        println!("\nengine instrumentation:");
        for p in &points {
            print!(
                "  {}",
                render_stats(&format!("period {:>2}", p.period), &p.stats)
            );
        }
    }
    obs.finish();
}
