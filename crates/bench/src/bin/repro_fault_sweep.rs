//! Fault-injection sweep over the paper's Table-1 system.
//!
//! The static access authorization is proved conflict-free only for the
//! fault-free model. This sweep measures how a scheduled system behaves
//! when that model is violated deterministically: trigger jitter,
//! dropped authorization slots and transient pool outages, each swept
//! separately and combined, across three fixed fault seeds. Reported per
//! row: dropped slots, outage exposure, authorization violations against
//! the outage-reduced pools, missed deadlines (beyond the nominal span
//! plus slack) and the backlog drain time.
//!
//! Every run derives all randomness from the printed seeds, so the table
//! is bit-identical across invocations — see EXPERIMENTS.md §"Fault
//! injection".

use tcms_bench::{ObsSession, TextTable};
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::paper_system;
use tcms_sim::{FaultPlan, SimConfig, Simulator, Trigger};

const HORIZON: u64 = 5_000;
const MEAN_GAP: u64 = 40;
const FAULT_SEEDS: [u64; 3] = [11, 23, 47];

fn plan_rows() -> Vec<(&'static str, FaultPlan)> {
    let jitter = {
        let mut p = FaultPlan::quiet(0);
        p.trigger_jitter = 5;
        p.deadline_slack = 5;
        p
    };
    let drops = {
        let mut p = FaultPlan::quiet(0);
        p.drop_slot_prob = 0.10;
        p.deadline_slack = 5;
        p
    };
    let outages = {
        let mut p = FaultPlan::quiet(0);
        p.outage_rate = 0.005;
        p.repair_time = 30;
        p.deadline_slack = 5;
        p
    };
    vec![
        ("none", FaultPlan::quiet(0)),
        ("jitter", jitter),
        ("slot-drops", drops),
        ("outages", outages),
        ("combined", FaultPlan::moderate(0)),
    ]
}

fn main() {
    let obs = ObsSession::from_env_args();
    let (system, _) = paper_system().expect("paper system builds");
    let spec = SharingSpec::all_global(&system, 5);
    let outcome = ModuloScheduler::new(&system, spec.clone())
        .expect("paper spec is valid")
        .run()
        .expect("paper spec is feasible");
    let sim = Simulator::new(&system, &spec, &outcome.schedule);
    let workloads = vec![Trigger::Random { mean_gap: MEAN_GAP }; system.num_processes()];

    println!(
        "Fault sweep: paper Table-1 system, all-global rho=5, horizon {HORIZON}, \
         random workload mean gap {MEAN_GAP}, fault seeds {FAULT_SEEDS:?}\n"
    );
    let mut t = TextTable::new();
    t.row([
        "faults",
        "seed",
        "dropped",
        "outages",
        "down-steps",
        "auth-viol",
        "missed",
        "drain",
    ]);
    t.sep();
    for (label, base) in plan_rows() {
        for seed in FAULT_SEEDS {
            let mut plan = base.clone();
            plan.seed = seed;
            let (result, m) = sim.run_with_faults_recorded(
                &workloads,
                &SimConfig {
                    horizon: HORIZON,
                    seed: 1,
                },
                &plan,
                obs.recorder(),
            );
            assert!(
                result.conflicts.is_empty(),
                "full pools must never be overdrawn — faults only delay or shrink"
            );
            t.row([
                label.to_owned(),
                seed.to_string(),
                m.dropped_slots.to_string(),
                m.outages.to_string(),
                m.outage_instance_steps.to_string(),
                m.authorization_violations.to_string(),
                m.missed_deadlines.to_string(),
                m.time_to_drain.to_string(),
            ]);
        }
        t.sep();
    }
    print!("{}", t.render());
    println!(
        "\nReading: `auth-viol` counts steps where the static authorization used an\n\
         instance that an outage had taken down — the executive-free guarantee holds\n\
         exactly in the rows without outages. `missed` counts activations finishing\n\
         later than their nominal span plus the plan's slack."
    );
    obs.finish();
}
