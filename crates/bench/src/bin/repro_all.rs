//! Runs every reproduction binary in sequence — the one-shot harness that
//! regenerates all tables, figures and ablations of EXPERIMENTS.md.
//!
//! Command-line arguments (e.g. `--stats`) are forwarded to every child.

use std::process::Command;

const TARGETS: &[&str] = &[
    "repro_table1",
    "repro_figure1",
    "repro_figure2",
    "repro_period_sweep",
    "repro_scope_ablation",
    "repro_budget_sensitivity",
    "repro_merging_baseline",
    "repro_alu_ablation",
    "repro_mixed_periods",
    "repro_optimality_gap",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0;
    for target in TARGETS {
        println!("==================== {target} ====================");
        let status = Command::new(exe_dir.join(target))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {target}: {e}"));
        if !status.success() {
            eprintln!("{target} FAILED ({status})");
            failures += 1;
        }
        println!();
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("all {} reproduction targets completed", TARGETS.len());
}
