//! Runs every reproduction binary in sequence — the one-shot harness that
//! regenerates all tables, figures and ablations of EXPERIMENTS.md.
//!
//! Command-line arguments (e.g. `--stats`, `--metrics`) are forwarded to
//! every child that understands them. The file arguments of
//! `--trace`/`--timeline` are prefixed with the child's name
//! (`trace.json` → `repro_table1.trace.json`) so the children do not
//! overwrite each other's sink files. The harness-style binaries
//! (`repro_force_kernel`, `repro_replay`, `repro_chaos`,
//! `repro_partition_scaling`) take their own flag sets, so forwarded
//! observability flags are stripped for them and the defaults listed in
//! `EXTRA_ARGS` are appended instead.

use std::path::Path;
use std::process::Command;

const TARGETS: &[&str] = &[
    "repro_table1",
    "repro_figure1",
    "repro_figure2",
    "repro_period_sweep",
    "repro_scope_ablation",
    "repro_budget_sensitivity",
    "repro_merging_baseline",
    "repro_alu_ablation",
    "repro_mixed_periods",
    "repro_fault_sweep",
    "repro_optimality_gap",
    "repro_force_kernel",
    "repro_replay",
    "repro_chaos",
    "repro_partition_scaling",
];

/// Targets with their own flag vocabulary: observability flags are not
/// forwarded to them (an unknown flag is a hard error in every child).
const RAW_TARGETS: &[&str] = &[
    "repro_force_kernel",
    "repro_replay",
    "repro_chaos",
    "repro_partition_scaling",
];

/// Default arguments appended to raw targets so the full harness stays
/// one-shot-sized (each binary still runs its full study standalone).
const EXTRA_ARGS: &[(&str, &[&str])] = &[("repro_partition_scaling", &["--quick"])];

/// Prefixes the file name of an observability sink path with the target
/// name, keeping any directory components.
fn per_target_path(target: &str, path: &str) -> String {
    let p = Path::new(path);
    let file = p
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned());
    match p.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir
            .join(format!("{target}.{file}"))
            .to_string_lossy()
            .into_owned(),
        _ => format!("{target}.{file}"),
    }
}

/// Rewrites `--trace`/`--timeline` file arguments for one child; raw
/// targets get only their `EXTRA_ARGS` defaults.
fn args_for(target: &str, forwarded: &[String]) -> Vec<String> {
    if RAW_TARGETS.contains(&target) {
        return EXTRA_ARGS
            .iter()
            .find(|(t, _)| *t == target)
            .map(|(_, extra)| extra.iter().map(|a| (*a).to_owned()).collect())
            .unwrap_or_default();
    }
    let mut out = Vec::with_capacity(forwarded.len());
    let mut it = forwarded.iter();
    while let Some(a) = it.next() {
        out.push(a.clone());
        if a == "--trace" || a == "--timeline" {
            if let Some(path) = it.next() {
                out.push(per_target_path(target, path));
            }
        }
    }
    out
}

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0;
    for target in TARGETS {
        println!("==================== {target} ====================");
        let status = Command::new(exe_dir.join(target))
            .args(args_for(target, &forwarded))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {target}: {e}"));
        if !status.success() {
            eprintln!("{target} FAILED ({status})");
            failures += 1;
        }
        println!();
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("all {} reproduction targets completed", TARGETS.len());
}
