//! Regenerates the checked-in `designs/` inputs from the generators.
//!
//! ```text
//! gen_designs [--ops N] [--processes P] [--seed S] [--out FILE]
//! ```
//!
//! Without flags, rewrites `designs/paper_table1.dfg` from the paper
//! generator — the historical behavior. With any sizing flag, emits a
//! seeded synthetic multi-process design of roughly `N` operations
//! spread over `P` processes (the inputs the partition-scaling study
//! consumes). The same flags always produce the same bytes.

use tcms_bench::workload::scaling_config;
use tcms_ir::generators::random_system;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops: Option<usize> = None;
    let mut processes = 8usize;
    let mut seed = 1u64;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--ops" => ops = Some(next(&mut it, "--ops").parse().expect("bad op count")),
            "--processes" => {
                processes = next(&mut it, "--processes")
                    .parse()
                    .expect("bad process count");
            }
            "--seed" => seed = next(&mut it, "--seed").parse().expect("bad seed"),
            "--out" => out = Some(next(&mut it, "--out")),
            other => panic!("unknown flag `{other}`"),
        }
    }

    if let Some(ops) = ops {
        assert!(ops > 0 && processes > 0, "sizes must be positive");
        let cfg = scaling_config(ops, processes);
        let (sys, _) = random_system(&cfg, seed).expect("synthetic system builds");
        let path =
            out.unwrap_or_else(|| format!("designs/synth_{ops}ops_{processes}p_seed{seed}.dfg"));
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output dir");
            }
        }
        std::fs::write(&path, tcms_ir::display::to_dfg(&sys)).expect("write design");
        println!(
            "wrote {path} ({} ops, {} processes, seed {seed})",
            sys.num_ops(),
            sys.num_processes()
        );
        return;
    }

    let (sys, _) = tcms_ir::generators::paper_system().expect("paper system builds");
    let path = out.unwrap_or_else(|| "designs/paper_table1.dfg".to_owned());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create designs dir");
        }
    }
    std::fs::write(&path, tcms_ir::display::to_dfg(&sys)).expect("write design");
    println!("wrote {path}");
}
