//! Regenerates the checked-in `designs/` inputs from the generators.

fn main() {
    let (sys, _) = tcms_ir::generators::paper_system().expect("paper system builds");
    std::fs::create_dir_all("designs").expect("create designs dir");
    std::fs::write("designs/paper_table1.dfg", tcms_ir::display::to_dfg(&sys))
        .expect("write design");
    println!("wrote designs/paper_table1.dfg");
}
