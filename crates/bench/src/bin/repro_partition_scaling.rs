//! Partition-scaling study: feedback-guided subgraph decomposition
//! versus the monolithic scheduler on a large synthetic spec.
//!
//! ```text
//! repro_partition_scaling [--quick] [--ops N] [--processes P] [--seed S]
//!                         [--repeats N] [--threads-list 1,2,4] [--out FILE]
//! ```
//!
//! For every thread count the study times both paths (best-of-N; the
//! minimum is the right statistic for a determinism-preserving study —
//! noise only adds time) and asserts two invariants the decomposition
//! design promises:
//!
//! * **thread invariance** — the merged partitioned schedule is
//!   bit-identical at every thread count (partition-level parallelism
//!   writes results by index; the auto partition count is a function of
//!   the spec, never of the machine),
//! * **bounded quality gap** — the merged schedule's authorized pools,
//!   costed under the *full* spec, stay within 5% of the monolithic
//!   run's total area.
//!
//! The summary — per-thread wall times and speedups, partition shape,
//! areas and the gap — lands in `BENCH_partition.json`. `--quick`
//! shrinks the spec for CI smoke runs.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tcms_bench::workload::scaling_config;
use tcms_core::{schedule_partitioned, ModuloScheduler, PartitionConfig, SharingSpec};
use tcms_fds::FdsConfig;
use tcms_ir::generators::random_system;
use tcms_obs::json::{self, JsonValue};

/// Acceptance bound on (partitioned − monolithic) / monolithic area.
const QUALITY_GAP_BOUND: f64 = 0.05;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops = 600usize;
    let mut processes = 8usize;
    let mut seed = 1u64;
    let mut repeats = 1usize;
    let mut thread_list = vec![1usize, 2, 4];
    let mut out_path = "BENCH_partition.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--quick" => {
                ops = 320;
                processes = 8;
            }
            "--ops" => ops = next(&mut it, "--ops").parse().expect("bad op count"),
            "--processes" => {
                processes = next(&mut it, "--processes")
                    .parse()
                    .expect("bad process count");
            }
            "--seed" => seed = next(&mut it, "--seed").parse().expect("bad seed"),
            "--repeats" => repeats = next(&mut it, "--repeats").parse().expect("bad count"),
            "--threads-list" => {
                thread_list = next(&mut it, "--threads-list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad thread count"))
                    .collect();
            }
            "--out" => out_path = next(&mut it, "--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(
        ops > 0 && processes > 0 && repeats > 0,
        "sizes are positive"
    );
    assert!(!thread_list.is_empty(), "need at least one thread count");

    let (sys, _) = random_system(&scaling_config(ops, processes), seed).expect("system builds");
    let spec = SharingSpec::all_global(&sys, 4);
    let pcfg = PartitionConfig::default();
    println!(
        "partition scaling: {} ops, {} processes, seed {seed} \
         (available parallelism {})",
        sys.num_ops(),
        sys.num_processes(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    // Sequential references: every timed run below must reproduce these
    // bit-for-bit, whatever the thread count.
    rayon::set_num_threads(1);
    let mono_ref = ModuloScheduler::new(&sys, spec.clone())
        .expect("valid spec")
        .run()
        .expect("monolithic run feasible");
    let part_ref = schedule_partitioned(&sys, spec.clone(), &FdsConfig::default(), &pcfg)
        .expect("partitioned run feasible");
    println!(
        "decomposition: {} partitions, {} feedback rounds, {} cut edges",
        part_ref.partitions, part_ref.rounds, part_ref.cut_edges
    );

    // Quality gap, costed under the full spec for both schedules.
    let mono_area = mono_ref.report().total_area();
    let part_area = part_ref.report().total_area();
    #[allow(clippy::cast_precision_loss)]
    let gap = (part_area as f64 - mono_area as f64) / mono_area as f64;
    println!(
        "quality: monolithic area {mono_area}, partitioned area {part_area}, gap {:+.2}%",
        gap * 100.0
    );
    assert!(
        gap <= QUALITY_GAP_BOUND,
        "quality gap {:.2}% exceeds the {:.0}% bound",
        gap * 100.0,
        QUALITY_GAP_BOUND * 100.0
    );

    let mut rows = Vec::new();
    for &n in &thread_list {
        rayon::set_num_threads(n);
        let mut mono_best = Duration::MAX;
        let mut part_best = Duration::MAX;
        for _ in 0..repeats {
            let started = Instant::now();
            let mono = ModuloScheduler::new(&sys, spec.clone())
                .expect("valid spec")
                .run()
                .expect("monolithic run feasible");
            mono_best = mono_best.min(started.elapsed());
            assert_eq!(
                mono.schedule, mono_ref.schedule,
                "threads={n}: monolithic schedule must be bit-identical"
            );

            let started = Instant::now();
            let part = schedule_partitioned(&sys, spec.clone(), &FdsConfig::default(), &pcfg)
                .expect("partitioned run feasible");
            part_best = part_best.min(started.elapsed());
            assert_eq!(
                part.schedule.starts(),
                part_ref.schedule.starts(),
                "threads={n}: partitioned schedule must be bit-identical"
            );
        }
        let speedup = mono_best.as_secs_f64() / part_best.as_secs_f64();
        println!(
            "  threads={n}: monolithic {mono_best:?}, partitioned {part_best:?} \
             ({speedup:.2}x, best-of-{repeats}, identical=yes)"
        );
        #[allow(clippy::cast_precision_loss)]
        let mut row = BTreeMap::new();
        row.insert("threads".to_owned(), JsonValue::Number(n as f64));
        row.insert(
            "monolithic_wall_s".to_owned(),
            JsonValue::Number(mono_best.as_secs_f64()),
        );
        row.insert(
            "partitioned_wall_s".to_owned(),
            JsonValue::Number(part_best.as_secs_f64()),
        );
        row.insert("speedup".to_owned(), JsonValue::Number(speedup));
        rows.push(JsonValue::Object(row));
    }
    rayon::set_num_threads(0);

    #[allow(clippy::cast_precision_loss)]
    let count = |n: usize| JsonValue::Number(n as f64);
    #[allow(clippy::cast_precision_loss)]
    let area = |a: u64| JsonValue::Number(a as f64);
    let mut quality = BTreeMap::new();
    quality.insert("monolithic_area".to_owned(), area(mono_area));
    quality.insert("partitioned_area".to_owned(), area(part_area));
    quality.insert("gap".to_owned(), JsonValue::Number(gap));
    quality.insert("bound".to_owned(), JsonValue::Number(QUALITY_GAP_BOUND));

    let mut doc = BTreeMap::new();
    doc.insert(
        "benchmark".to_owned(),
        JsonValue::String("partition_scaling".to_owned()),
    );
    doc.insert("ops".to_owned(), count(sys.num_ops()));
    doc.insert("processes".to_owned(), count(sys.num_processes()));
    doc.insert("seed".to_owned(), count(usize::try_from(seed).unwrap_or(0)));
    doc.insert("partitions".to_owned(), count(part_ref.partitions));
    doc.insert("cut_edges".to_owned(), count(part_ref.cut_edges));
    doc.insert("rounds".to_owned(), count(part_ref.rounds));
    doc.insert("repeats".to_owned(), count(repeats));
    doc.insert("quality".to_owned(), JsonValue::Object(quality));
    doc.insert("thread_identical".to_owned(), JsonValue::Bool(true));
    doc.insert("runs".to_owned(), JsonValue::Array(rows));
    let rendered = format!("{}\n", json::to_string(&JsonValue::Object(doc)));
    json::parse(&rendered).expect("valid JSON report");
    std::fs::write(&out_path, rendered).expect("write report");
    println!("report written to {out_path}");
}
