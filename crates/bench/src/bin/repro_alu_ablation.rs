//! Multi-function-unit ablation: merging the adder and subtracter into a
//! single ALU type (a classic minimum-area HLS move) on top of global
//! sharing.
//!
//! Because the IR keys operations by resource type, an ALU is simply one
//! type used by both the addition and subtraction operations — the
//! scheduler and the authorization machinery need no changes.

use tcms_bench::{ObsSession, TextTable};
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{add_diffeq_process, add_ewf_process, PaperTypes};
use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

fn alu_system() -> (tcms_ir::System, PaperTypes) {
    let mut lib = ResourceLibrary::new();
    // One ALU covers additions and subtractions; slightly costlier than a
    // bare adder.
    let alu = lib
        .add(ResourceType::new("alu", 1).with_area(2))
        .expect("fresh library");
    let mul = lib
        .add(ResourceType::new("mul", 2).pipelined().with_area(4))
        .expect("fresh library");
    let types = PaperTypes {
        add: alu,
        sub: alu,
        mul,
    };
    let mut b = SystemBuilder::new(lib);
    add_ewf_process(&mut b, "P1", 30, types).expect("builds");
    add_ewf_process(&mut b, "P2", 30, types).expect("builds");
    add_ewf_process(&mut b, "P3", 50, types).expect("builds");
    add_diffeq_process(&mut b, "P4", 15, types).expect("builds");
    add_diffeq_process(&mut b, "P5", 15, types).expect("builds");
    (b.build().expect("feasible"), types)
}

fn main() {
    let obs = ObsSession::from_env_args();
    let (split_sys, split_types) = tcms_ir::generators::paper_system().expect("builds");
    let (alu_sys, alu_types) = alu_system();

    let run = |sys: &tcms_ir::System, spec: SharingSpec| {
        ModuloScheduler::new(sys, spec)
            .expect("valid")
            .run_recorded(obs.recorder())
            .expect("paper specs are feasible under an unlimited budget")
            .report()
    };

    let split_global = run(&split_sys, SharingSpec::all_global(&split_sys, 5));
    let split_local = run(&split_sys, SharingSpec::all_local(&split_sys));
    let alu_global = run(&alu_sys, SharingSpec::all_global(&alu_sys, 5));
    let alu_local = run(&alu_sys, SharingSpec::all_local(&alu_sys));

    let mut t = TextTable::new();
    t.row(["library", "scope", "add/sub units", "mul", "area"]);
    t.sep();
    t.row([
        "add+sub".to_owned(),
        "local".to_owned(),
        format!(
            "{}+{}",
            split_local.instances(split_types.add),
            split_local.instances(split_types.sub)
        ),
        split_local.instances(split_types.mul).to_string(),
        split_local.total_area().to_string(),
    ]);
    t.row([
        "add+sub".to_owned(),
        "global".to_owned(),
        format!(
            "{}+{}",
            split_global.instances(split_types.add),
            split_global.instances(split_types.sub)
        ),
        split_global.instances(split_types.mul).to_string(),
        split_global.total_area().to_string(),
    ]);
    t.row([
        "ALU".to_owned(),
        "local".to_owned(),
        alu_local.instances(alu_types.add).to_string(),
        alu_local.instances(alu_types.mul).to_string(),
        alu_local.total_area().to_string(),
    ]);
    t.row([
        "ALU".to_owned(),
        "global".to_owned(),
        alu_global.instances(alu_types.add).to_string(),
        alu_global.instances(alu_types.mul).to_string(),
        alu_global.total_area().to_string(),
    ]);
    println!("Multi-function-unit ablation on the Table-1 system (ρ = 5, ALU area 2):\n");
    print!("{}", t.render());
    println!("\nThe ALU merge composes mechanically with global sharing (one pool serves");
    println!("both operation kinds), but does not pay off on this workload: subtraction");
    println!("usage is tiny, so pricing every adder as a 2-area ALU costs more than the");
    println!("two dedicated subtracters it replaces.");
    obs.finish();
}
