//! Thread-scaling study: wall time of (a) the Table-1 coupled global
//! run and (b) the exact branch-and-bound search at 1/2/4/8 worker
//! threads, asserting that every result is bit-identical to the
//! sequential reference.
//!
//! ```text
//! repro_thread_scaling [--repeats N] [--threads-list 1,2,4,8]
//! ```
//!
//! Each row reports the best-of-N wall time (minimum is the right
//! statistic for a determinism-preserving speedup study — noise only
//! adds time). On machines with fewer cores than the requested thread
//! count the rows flatten or regress; the identity assertions still
//! hold, which is the point of the deterministic design.

use std::time::{Duration, Instant};

use tcms_bench::paper_spec;
use tcms_core::exact::exact_schedule;
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{paper_system, random_system, RandomSystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut repeats = 3usize;
    let mut thread_list = vec![1usize, 2, 4, 8];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--repeats" => {
                repeats = it
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("--repeats needs a number");
            }
            "--threads-list" => {
                thread_list = it
                    .next()
                    .expect("--threads-list needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad thread count"))
                    .collect();
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(repeats > 0, "--repeats must be positive");
    assert!(
        thread_list.contains(&1),
        "the list must include 1 (the sequential reference)"
    );

    println!(
        "available parallelism: {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    // (a) Table-1 coupled global run.
    let (system, _) = paper_system().expect("paper system builds");
    let spec = paper_spec(&system);
    rayon::set_num_threads(1);
    let reference = ModuloScheduler::new(&system, spec.clone())
        .expect("valid spec")
        .run()
        .expect("feasible");
    println!("\ncoupled table1 global run ({} ops):", system.num_ops());
    let mut base = Duration::ZERO;
    for &n in &thread_list {
        rayon::set_num_threads(n);
        let mut best = Duration::MAX;
        for _ in 0..repeats {
            let started = Instant::now();
            let out = ModuloScheduler::new(&system, spec.clone())
                .expect("valid spec")
                .run()
                .expect("feasible");
            best = best.min(started.elapsed());
            assert_eq!(
                out.schedule, reference.schedule,
                "threads={n}: coupled schedule must be bit-identical"
            );
        }
        if n == 1 {
            base = best;
        }
        println!(
            "  threads={n}: best-of-{repeats} {best:?}  speedup {:.2}x  identical=yes",
            base.as_secs_f64() / best.as_secs_f64()
        );
    }

    // (b) Exact branch-and-bound on a random two-process system small
    // enough to complete (truncated searches are not comparable).
    let cfg = RandomSystemConfig {
        processes: 2,
        blocks_per_process: 1,
        layers: 4,
        ops_per_layer: (2, 2),
        edge_prob: 0.5,
        slack: 2.0,
        type_weights: [2, 1, 2],
    };
    let (sys, _) = random_system(&cfg, 0).expect("feasible");
    let espec = SharingSpec::all_global(&sys, 2);
    rayon::set_num_threads(1);
    let eref = exact_schedule(&sys, &espec, 50_000_000)
        .expect("valid spec")
        .expect("feasible");
    assert!(eref.complete, "study case must fit the node limit");
    println!(
        "\nexact search ({} ops, {} nodes sequential):",
        sys.num_ops(),
        eref.nodes
    );
    let mut ebase = Duration::ZERO;
    for &n in &thread_list {
        rayon::set_num_threads(n);
        let mut best = Duration::MAX;
        let mut nodes = 0u64;
        for _ in 0..repeats {
            let started = Instant::now();
            let out = exact_schedule(&sys, &espec, 50_000_000)
                .expect("valid spec")
                .expect("feasible");
            best = best.min(started.elapsed());
            nodes = out.nodes;
            assert_eq!(
                out, eref,
                "threads={n}: exact optimum must be bit-identical"
            );
        }
        if n == 1 {
            ebase = best;
        }
        println!(
            "  threads={n}: best-of-{repeats} {best:?}  {:.0} nodes/s  speedup {:.2}x  identical=yes",
            nodes as f64 / best.as_secs_f64(),
            ebase.as_secs_f64() / best.as_secs_f64()
        );
    }
    rayon::set_num_threads(0);
}
