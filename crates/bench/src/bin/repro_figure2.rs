//! Regenerates Figure 2 of the paper: per-placement forces of the
//! unmodified and the first-part-modified IFDS algorithm on the
//! two-operation block, showing the periodic-alignment preference.

fn main() {
    let fig = tcms_bench::run_figure2();
    print!("{}", fig.rendered);
}
