//! Regenerates Figure 2 of the paper: per-placement forces of the
//! unmodified and the first-part-modified IFDS algorithm on the
//! two-operation block, showing the periodic-alignment preference.
//!
//! Accepts the observability flags `--trace <file.json>`, `--timeline
//! <file.jsonl>`, `--metrics` (see `tcms_bench::obs`).

fn main() {
    let obs = tcms_bench::ObsSession::from_env_args();
    let fig = tcms_bench::run_figure2_recorded(obs.recorder());
    print!("{}", fig.rendered);
    obs.finish();
}
