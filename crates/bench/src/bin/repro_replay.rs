//! Deterministic replay benchmark: re-drive a captured workload journal
//! through fresh daemons and prove the responses are **bit-identical**
//! to the one-shot pipeline, at every worker count.
//!
//! ```text
//! repro_replay [--journal FILE] [--requests N] [--designs N] [--seed N]
//!              [--out FILE]
//! ```
//!
//! Two modes:
//!
//! * `--journal PATH` replays an existing journal (captured by
//!   `tcms serve --journal-dir` or `repro_serve_load --journal-dir`).
//!   A directory — or the live `journal.jsonl` inside one — reassembles
//!   rotated segments into the full history; any other file path
//!   replays that single file.
//! * Without it, a **synthetic** workload is generated: a seeded LCG
//!   draws designs from a Zipf-skewed popularity distribution (one
//!   sweep per skew in {0.0, 1.2}, so the report shows how cache hit
//!   rate tracks skew), a capture daemon journals the run, and the
//!   captured file is what gets replayed — exercising the full
//!   capture → load → replay path.
//!
//! Every replay runs at 1, 2 and 4 workers with 4 concurrent clients.
//! For each journaled request the response is compared against the
//! one-shot pipeline result (computed once per unique request, no
//! cache): success outputs must match byte-for-byte, failures must keep
//! their wire class and code. Load-dependent outcomes (`overloaded`,
//! `deadline`, `shutting-down`) are skipped in the comparison — they
//! encode the capture run's timing, not the workload — and counted.
//! The summary lands in `BENCH_replay.json`.

use std::collections::BTreeMap;
use std::time::Instant;

use tcms_bench::workload::{percentile, synthetic_requests};
use tcms_fds::RunBudget;
use tcms_obs::json::{self, JsonValue};
use tcms_obs::NoopRecorder;
use tcms_serve::pipeline::{schedule_request, simulate_request, ExecContext};
use tcms_serve::protocol::{parse_request, Action};
use tcms_serve::{load_journal, load_journal_dir, Client, ServeConfig, Server};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const REPLAY_CLIENTS: usize = 4;

/// Outcome classes that depend on load/timing rather than the request:
/// a replay under different concurrency may legitimately differ.
fn load_dependent(class: &str) -> bool {
    matches!(class, "overloaded" | "deadline" | "shutting-down")
}

/// Runs the workload through a capture daemon and returns the journaled
/// request lines, in journal order.
fn capture(lines: &[String], dir: &std::path::Path) -> Vec<String> {
    let _ = std::fs::remove_dir_all(dir);
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: lines.len() + 16,
        journal_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("capture daemon starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for line in lines {
        client.request(line).expect("capture response");
    }
    let stats = server.journal_stats().expect("journaling is on");
    assert_eq!(
        (stats.recorded, stats.dropped),
        (lines.len() as u64, 0),
        "capture must journal every request"
    );
    server.shutdown();
    server.wait().expect("clean shutdown");

    let path = tcms_serve::journal::journal_path(dir);
    // The emitted file must satisfy the strict trace_check validator.
    let content = std::fs::read_to_string(&path).expect("read journal");
    let check = tcms_obs::validate_journal(&content).expect("journal validates");
    assert_eq!(check.records, lines.len());
    assert!(!check.torn_tail);
    let (records, report) = load_journal(&path).expect("load journal");
    assert_eq!(report.loaded, lines.len());
    records.into_iter().map(|r| r.request).collect()
}

/// The replay-side summary of one response.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Ok(String),
    Err(String, u16),
}

/// One-shot pipeline result for a raw request line — the ground truth a
/// replayed daemon response must reproduce bit-for-bit.
fn one_shot(line: &str) -> Outcome {
    let ctx = ExecContext {
        cache: None,
        budget: RunBudget::UNLIMITED,
        rec: &NoopRecorder,
        fault_marker: false,
        // Match the replay daemons' ServeConfig default so auto-routing
        // decisions (and thus response bytes) line up.
        auto_partition_ops: tcms_serve::DEFAULT_AUTO_PARTITION_OPS,
    };
    let wire = |e: &tcms_serve::ServeError| Outcome::Err(e.class().to_owned(), e.code());
    match parse_request(line) {
        Ok(req) => match &req.action {
            Action::Schedule { design, opts } => match schedule_request(design, opts, &ctx) {
                Ok(a) => Outcome::Ok(a.text),
                Err(e) => wire(&e),
            },
            Action::Simulate { design, opts } => match simulate_request(design, opts, &ctx) {
                Ok(a) => Outcome::Ok(a.text),
                Err(e) => wire(&e),
            },
            _ => panic!("journal contains a control action"),
        },
        Err((_, e)) => wire(&e),
    }
}

struct RunResult {
    workers: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
    compared: usize,
    skipped_load_dependent: usize,
}

/// Replays `lines` against a fresh daemon with `workers` workers and
/// `REPLAY_CLIENTS` concurrent clients (round-robin partition), checking
/// every deterministic response against `expected`.
fn replay(
    lines: &[String],
    workers: usize,
    cache_capacity: usize,
    expected: &BTreeMap<String, Outcome>,
) -> RunResult {
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers,
        queue_capacity: lines.len() + 16,
        cache_capacity,
        ..ServeConfig::default()
    })
    .expect("replay daemon starts");
    let addr = server.local_addr();
    let clients = REPLAY_CLIENTS.min(lines.len()).max(1);
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let mine: Vec<(usize, String)> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(i, l)| (i, l.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                mine.into_iter()
                    .map(|(i, line)| {
                        let sent = Instant::now();
                        let resp = client.request(&line).expect("replay response");
                        #[allow(clippy::cast_precision_loss)]
                        let latency_ms = sent.elapsed().as_micros() as f64 / 1000.0;
                        let outcome = match (&resp.error, resp.output()) {
                            (Some((class, code, _)), _) => Outcome::Err(class.clone(), *code),
                            (None, Some(text)) => Outcome::Ok(text.to_owned()),
                            (None, None) => panic!("work response without output"),
                        };
                        (i, line, outcome, latency_ms)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut results = Vec::with_capacity(lines.len());
    for h in handles {
        results.extend(h.join().expect("client thread"));
    }
    let wall = started.elapsed();
    assert_eq!(results.len(), lines.len(), "every request gets a response");

    let mut compared = 0usize;
    let mut skipped = 0usize;
    for (i, line, outcome, _) in &results {
        if let Outcome::Err(class, _) = outcome {
            if load_dependent(class) {
                skipped += 1;
                continue;
            }
        }
        let want = expected.get(line).expect("expected outcome computed");
        assert_eq!(
            outcome, want,
            "request {i} at {workers} workers must match the one-shot pipeline bit-for-bit"
        );
        compared += 1;
    }

    let cache = server.cache().stats();
    server.shutdown();
    server.wait().expect("clean shutdown");

    let mut latencies: Vec<f64> = results.iter().map(|(_, _, _, l)| *l).collect();
    latencies.sort_by(f64::total_cmp);
    #[allow(clippy::cast_precision_loss)]
    let throughput = lines.len() as f64 / wall.as_secs_f64();
    RunResult {
        workers,
        wall_s: wall.as_secs_f64(),
        throughput_rps: throughput,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        hit_rate: cache.hit_rate(),
        compared,
        skipped_load_dependent: skipped,
    }
}

fn run_json(run: &RunResult) -> JsonValue {
    #[allow(clippy::cast_precision_loss)]
    let count = |n: usize| JsonValue::Number(n as f64);
    let mut m = BTreeMap::new();
    m.insert("workers".to_owned(), count(run.workers));
    m.insert("wall_s".to_owned(), JsonValue::Number(run.wall_s));
    m.insert(
        "throughput_rps".to_owned(),
        JsonValue::Number(run.throughput_rps),
    );
    m.insert("p50_ms".to_owned(), JsonValue::Number(run.p50_ms));
    m.insert("p99_ms".to_owned(), JsonValue::Number(run.p99_ms));
    m.insert("hit_rate".to_owned(), JsonValue::Number(run.hit_rate));
    m.insert("compared".to_owned(), count(run.compared));
    m.insert(
        "skipped_load_dependent".to_owned(),
        count(run.skipped_load_dependent),
    );
    JsonValue::Object(m)
}

/// Captures (when synthetic) and replays one workload; returns its JSON
/// report section.
fn sweep(
    label: &str,
    lines: &[String],
    cache_capacity: usize,
    expected: &mut BTreeMap<String, Outcome>,
) -> JsonValue {
    for line in lines {
        if !expected.contains_key(line) {
            expected.insert(line.clone(), one_shot(line));
        }
    }
    let mut runs = Vec::new();
    for workers in WORKER_COUNTS {
        let run = replay(lines, workers, cache_capacity, expected);
        println!(
            "{label}: {} workers: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, \
             hit rate {:.3}, {} compared, {} skipped",
            run.workers,
            run.throughput_rps,
            run.p50_ms,
            run.p99_ms,
            run.hit_rate,
            run.compared,
            run.skipped_load_dependent,
        );
        runs.push(run_json(&run));
    }
    #[allow(clippy::cast_precision_loss)]
    let count = |n: usize| JsonValue::Number(n as f64);
    let mut section = BTreeMap::new();
    section.insert("requests".to_owned(), count(lines.len()));
    section.insert(
        "unique_requests".to_owned(),
        count(
            lines
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
        ),
    );
    section.insert("runs".to_owned(), JsonValue::Array(runs));
    JsonValue::Object(section)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut journal: Option<String> = None;
    let mut requests = 120usize;
    let mut designs = 10usize;
    let mut seed = 7u64;
    let mut cache_capacity = 0usize; // 0 = auto
    let mut out_path = "BENCH_replay.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--journal" => journal = Some(next(&mut it, "--journal")),
            "--requests" => requests = next(&mut it, "--requests").parse().expect("bad count"),
            "--designs" => designs = next(&mut it, "--designs").parse().expect("bad count"),
            "--seed" => seed = next(&mut it, "--seed").parse().expect("bad seed"),
            "--cache-capacity" => {
                cache_capacity = next(&mut it, "--cache-capacity")
                    .parse()
                    .expect("bad count");
            }
            "--out" => out_path = next(&mut it, "--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(requests > 0 && designs > 0, "counts must be positive");

    let mut expected: BTreeMap<String, Outcome> = BTreeMap::new();
    let mut workloads = BTreeMap::new();
    if let Some(path) = journal {
        // A directory, or the live `journal.jsonl` of a rotating
        // `--journal-dir`, reassembles every sealed segment plus the
        // live tail; any other file path replays that single file.
        let p = std::path::Path::new(&path);
        let (records, report) = if p.is_dir() {
            load_journal_dir(p).expect("load provided journal dir")
        } else if p.file_name().and_then(|n| n.to_str()) == Some(tcms_serve::journal::JOURNAL_FILE)
        {
            load_journal_dir(p.parent().unwrap_or_else(|| std::path::Path::new(".")))
                .expect("load provided journal dir")
        } else {
            load_journal(p).expect("load provided journal")
        };
        println!(
            "journal {path}: {} records loaded, {} skipped{}",
            report.loaded,
            report.skipped,
            if report.torn_tail { " (torn tail)" } else { "" }
        );
        let lines: Vec<String> = records.into_iter().map(|r| r.request).collect();
        assert!(!lines.is_empty(), "journal holds no replayable records");
        let capacity = if cache_capacity == 0 {
            ServeConfig::default().cache_capacity
        } else {
            cache_capacity
        };
        workloads.insert(
            "journal".to_owned(),
            sweep("journal", &lines, capacity, &mut expected),
        );
    } else {
        // Synthetic default: a cache *smaller than the design pool*, so
        // the hit-rate-vs-skew effect is visible — uniform traffic
        // thrashes the LRU, Zipf traffic keeps its hot set resident.
        let capacity = if cache_capacity == 0 {
            (designs / 2).max(2)
        } else {
            cache_capacity
        };
        for alpha in [0.0f64, 1.2] {
            let label = format!("zipf_{alpha:.1}");
            let lines = synthetic_requests(requests, designs, alpha, seed);
            let dir =
                std::env::temp_dir().join(format!("tcms_replay_{label}_{}", std::process::id()));
            let captured = capture(&lines, &dir);
            assert_eq!(captured, lines, "journal preserves the request stream");
            let mut section = sweep(&label, &captured, capacity, &mut expected);
            if let JsonValue::Object(m) = &mut section {
                m.insert("alpha".to_owned(), JsonValue::Number(alpha));
            }
            workloads.insert(label, section);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let mut doc = BTreeMap::new();
    doc.insert(
        "benchmark".to_owned(),
        JsonValue::String("serve_replay".to_owned()),
    );
    doc.insert(
        "worker_counts".to_owned(),
        JsonValue::Array(
            WORKER_COUNTS
                .iter()
                .map(|w| {
                    #[allow(clippy::cast_precision_loss)]
                    JsonValue::Number(*w as f64)
                })
                .collect(),
        ),
    );
    doc.insert("workloads".to_owned(), JsonValue::Object(workloads));
    let rendered = format!("{}\n", json::to_string(&JsonValue::Object(doc)));
    json::parse(&rendered).expect("valid JSON report");
    std::fs::write(&out_path, rendered).expect("write report");
    println!("report written to {out_path}");
}
