//! Concurrent-load study of the `tcms serve` daemon: N closed-loop
//! clients hammer an in-process daemon over loopback TCP and the run is
//! summarized into `BENCH_serve.json` (throughput, latency percentiles,
//! cache hit rate).
//!
//! ```text
//! repro_serve_load [--clients N] [--requests N] [--workers N] [--out FILE]
//!                  [--journal-dir DIR]
//! ```
//!
//! `--journal-dir` turns on workload-journal capture during the run —
//! the A/B against a capture-less run measures the journal's hot-path
//! overhead, and the captured file feeds `repro_replay --journal`.
//!
//! Each client keeps exactly one request in flight, so `--clients 100`
//! (the default) holds 100 concurrent in-flight requests for the whole
//! run. Clients draw from a small pool of generated designs; half the
//! clients send declaration-permuted variants, which must hit the same
//! cache entries through canonicalization. The run asserts zero lost
//! responses and zero protocol errors — a deadlocked or shedding daemon
//! fails loudly, it does not produce a report.

use std::collections::BTreeMap;
use std::time::Instant;

use tcms_obs::json::{self, JsonValue};
use tcms_serve::{Client, ServeConfig, Server};

/// A small synthetic design: `stages` multiply-accumulate chains across
/// two processes. `permuted` emits the same design with every
/// declaration order reversed — canonically identical, textually not.
fn make_design(stages: usize, permuted: bool) -> String {
    let mut resources = [
        "resource add delay=1 area=1".to_owned(),
        "resource mul delay=2 area=4 pipelined".to_owned(),
    ];
    let time = 6 + 3 * stages;
    let mut processes = Vec::new();
    for pname in ["P", "Q"] {
        let mut lines = vec![
            format!("process {pname}"),
            format!("block body time={time}"),
        ];
        let mut ops = Vec::new();
        let mut edges = Vec::new();
        for s in 0..stages {
            ops.push(format!("op m{s} mul"));
            ops.push(format!("op a{s} add"));
            edges.push(format!("edge m{s} a{s}"));
            if s > 0 {
                edges.push(format!("edge a{} m{s}", s - 1));
            }
        }
        if permuted {
            ops.reverse();
            edges.reverse();
        }
        lines.extend(ops);
        lines.extend(edges);
        processes.push(lines.join("\n"));
    }
    if permuted {
        resources.reverse();
        processes.reverse();
    }
    format!("{}\n{}\n", resources.join("\n"), processes.join("\n"))
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let idx = (((sorted_ms.len() - 1) as f64) * q).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clients = 100usize;
    let mut requests = 5usize;
    let mut workers = 0usize;
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut journal_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--clients" => clients = next(&mut it, "--clients").parse().expect("bad count"),
            "--requests" => requests = next(&mut it, "--requests").parse().expect("bad count"),
            "--workers" => workers = next(&mut it, "--workers").parse().expect("bad count"),
            "--out" => out_path = next(&mut it, "--out"),
            "--journal-dir" => journal_dir = Some(next(&mut it, "--journal-dir")),
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(clients > 0 && requests > 0, "counts must be positive");

    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        workers,
        // Every client keeps one request in flight; leave headroom so
        // the run measures service, not shedding.
        queue_capacity: clients + 16,
        journal_dir: journal_dir.as_deref().map(std::path::PathBuf::from),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.local_addr();
    println!("daemon on {addr}: {clients} clients x {requests} requests");

    // 4 base designs x plain/permuted. Permuted variants must share
    // cache entries with their plain twins through canonicalization.
    let designs: Vec<String> = (0..4)
        .flat_map(|stages| {
            [
                make_design(2 + stages, false),
                make_design(2 + stages, true),
            ]
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let design = designs[c % designs.len()].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_ms = Vec::with_capacity(requests);
                let mut errors = 0usize;
                for r in 0..requests {
                    let line = tcms_serve::client::schedule_request_line(
                        &format!("c{c}-r{r}"),
                        &design,
                        &tcms_serve::ScheduleOptions {
                            all_global: Some(4),
                            ..tcms_serve::ScheduleOptions::default()
                        },
                        None,
                    );
                    let sent = Instant::now();
                    match client.request(&line) {
                        Ok(resp) => {
                            #[allow(clippy::cast_precision_loss)]
                            latencies_ms.push(sent.elapsed().as_micros() as f64 / 1000.0);
                            if !resp.is_ok() {
                                errors += 1;
                            }
                        }
                        Err(_) => errors += 1,
                    }
                }
                (latencies_ms, errors)
            })
        })
        .collect();

    let mut latencies_ms = Vec::with_capacity(clients * requests);
    let mut errors = 0usize;
    for h in handles {
        let (lat, err) = h.join().expect("client thread");
        latencies_ms.extend(lat);
        errors += err;
    }
    let wall = started.elapsed();

    let total = clients * requests;
    let lost = total - latencies_ms.len() - errors;
    assert_eq!(lost, 0, "every request must receive a response");
    assert_eq!(errors, 0, "no request may fail under plain load");

    let stats = server.cache().stats();
    let scheduler_runs = server.counter("serve.scheduler.runs");
    let journal_stats = server.journal_stats();
    server.shutdown();
    server.wait().expect("clean shutdown");

    latencies_ms.sort_by(f64::total_cmp);
    #[allow(clippy::cast_precision_loss)]
    let throughput = total as f64 / wall.as_secs_f64();
    let p50 = percentile(&latencies_ms, 0.50);
    let p90 = percentile(&latencies_ms, 0.90);
    let p99 = percentile(&latencies_ms, 0.99);
    println!(
        "{total} responses in {:.2}s: {throughput:.0} req/s, p50 {p50:.2} ms, p99 {p99:.2} ms",
        wall.as_secs_f64()
    );
    println!(
        "cache: {} hits, {} misses, {} coalesced (hit rate {:.3}); {scheduler_runs} scheduler runs",
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.hit_rate()
    );

    let num = |n: f64| JsonValue::Number(n);
    #[allow(clippy::cast_precision_loss)]
    let count = |n: u64| JsonValue::Number(n as f64);
    let mut latency = BTreeMap::new();
    latency.insert("p50_ms".to_owned(), num(p50));
    latency.insert("p90_ms".to_owned(), num(p90));
    latency.insert("p99_ms".to_owned(), num(p99));
    latency.insert(
        "max_ms".to_owned(),
        num(latencies_ms.last().copied().unwrap_or(0.0)),
    );
    let mut cache = BTreeMap::new();
    cache.insert("hits".to_owned(), count(stats.hits));
    cache.insert("misses".to_owned(), count(stats.misses));
    cache.insert("coalesced".to_owned(), count(stats.coalesced));
    cache.insert("hit_rate".to_owned(), num(stats.hit_rate()));
    let mut doc = BTreeMap::new();
    doc.insert(
        "benchmark".to_owned(),
        JsonValue::String("serve_load".to_owned()),
    );
    doc.insert("clients".to_owned(), count(clients as u64));
    doc.insert("requests_per_client".to_owned(), count(requests as u64));
    doc.insert("total_requests".to_owned(), count(total as u64));
    #[allow(clippy::cast_precision_loss)]
    doc.insert("wall_ms".to_owned(), num(wall.as_micros() as f64 / 1000.0));
    doc.insert("throughput_rps".to_owned(), num(throughput));
    doc.insert("latency".to_owned(), JsonValue::Object(latency));
    doc.insert("cache".to_owned(), JsonValue::Object(cache));
    doc.insert("scheduler_runs".to_owned(), count(scheduler_runs));
    doc.insert("errors".to_owned(), count(errors as u64));
    doc.insert("lost_responses".to_owned(), count(lost as u64));
    if let Some(j) = journal_stats {
        let mut journal = BTreeMap::new();
        journal.insert("recorded".to_owned(), count(j.recorded));
        journal.insert("dropped".to_owned(), count(j.dropped));
        doc.insert("journal".to_owned(), JsonValue::Object(journal));
        println!("journal: {} recorded, {} dropped", j.recorded, j.dropped);
    }
    let rendered = format!("{}\n", json::to_string(&JsonValue::Object(doc)));
    // Self-check: the report must parse back.
    json::parse(&rendered).expect("valid JSON report");
    std::fs::write(&out_path, rendered).expect("write report");
    println!("report written to {out_path}");
}
