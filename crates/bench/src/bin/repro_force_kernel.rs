//! Force-kernel microbenchmark: the slab fold/force paths against the
//! seed's jagged per-candidate implementation, on the Table-1 design.
//!
//! ```text
//! repro_force_kernel [--rounds N] [--out FILE]
//! ```
//!
//! Three ways of scoring the same candidate set are timed:
//!
//! * **legacy** — `ModuloEvaluator::force_legacy`, the pre-slab
//!   incremental path kept behind the `naive-oracle` feature: fresh delta
//!   buffers per candidate, a distribution copy and per-sibling fold
//!   `Vec`s per key.
//! * **scalar** — `ModuloEvaluator::force`, the slab kernels with
//!   per-call scratch.
//! * **batched** — `ModuloEvaluator::force_batch`, the slab kernels with
//!   scratch and sibling profiles shared across the whole candidate set.
//!
//! Every pair of scores is asserted bit-identical before anything is
//! timed — a fast-but-wrong kernel fails loudly. The summary lands in
//! `BENCH_kernel.json` (per-force ns, folds/s, speedups).

use std::collections::BTreeMap;
use std::time::Instant;

use tcms_bench::paper_spec;
use tcms_core::ModuloEvaluator;
use tcms_fds::{FdsConfig, ForceEvaluator};
use tcms_ir::generators::paper_system;
use tcms_ir::{FrameTable, OpId, TimeFrame};
use tcms_obs::json::{self, JsonValue};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds = 200usize;
    let mut out_path = "BENCH_kernel.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = it
                    .next()
                    .expect("--rounds needs a count")
                    .parse()
                    .expect("--rounds needs a number");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a path").clone();
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(rounds > 0, "--rounds must be positive");

    let (system, _) = paper_system().expect("paper system builds");
    let spec = paper_spec(&system);
    let frames = FrameTable::initial(&system);
    let eval = ModuloEvaluator::new(&system, spec, FdsConfig::default(), &frames);

    // The candidate set of one full engine sweep: every feasible start
    // slot of every operation — the batch shape the engine's candidate
    // scoring and the exact-search bounds evaluate.
    let mut candidates: Vec<Vec<(OpId, TimeFrame)>> = Vec::new();
    for o in system.op_ids() {
        let fr = frames.get(o);
        for t in fr.asap..=fr.alap {
            candidates.push(vec![(o, TimeFrame::new(t, t))]);
        }
    }
    let views: Vec<&[(OpId, TimeFrame)]> = candidates.iter().map(|c| c.as_slice()).collect();

    // Correctness before speed: all three paths must agree bitwise.
    let batched_scores = eval.force_batch(&frames, &views);
    for (i, cand) in views.iter().enumerate() {
        let scalar = eval.force(&frames, cand);
        let legacy = eval.force_legacy(&frames, cand);
        assert_eq!(
            batched_scores[i].to_bits(),
            scalar.to_bits(),
            "candidate {i}: batched vs scalar"
        );
        assert_eq!(
            scalar.to_bits(),
            legacy.to_bits(),
            "candidate {i}: scalar vs legacy"
        );
    }

    // Each path scores `rounds` full sweeps; best-of-rounds per-force
    // time (minimum is the right statistic — noise only adds time).
    let mut sink = 0.0f64;
    let time_sweep = |f: &mut dyn FnMut() -> f64| -> f64 {
        let mut best = f64::INFINITY;
        let mut acc = 0.0;
        for _ in 0..rounds {
            let started = Instant::now();
            acc += f();
            best = best.min(started.elapsed().as_secs_f64());
        }
        sink_guard(acc);
        best
    };

    let n = views.len() as f64;
    let legacy_sweep = time_sweep(&mut || {
        views
            .iter()
            .map(|c| eval.force_legacy(&frames, c))
            .sum::<f64>()
    });
    let scalar_sweep = time_sweep(&mut || views.iter().map(|c| eval.force(&frames, c)).sum());
    let batched_sweep = time_sweep(&mut || eval.force_batch(&frames, &views).iter().sum());
    sink += legacy_sweep;

    let legacy_ns = legacy_sweep * 1e9 / n;
    let scalar_ns = scalar_sweep * 1e9 / n;
    let batched_ns = batched_sweep * 1e9 / n;
    // One modified-force candidate performs one fused modulo fold per
    // touched (block, type) pair; single-op candidates touch exactly one.
    let folds_per_s = n / batched_sweep;
    let speedup_vs_legacy = legacy_ns / batched_ns;
    let batched_vs_scalar = scalar_ns / batched_ns;

    println!(
        "force kernel on table1 design ({} ops, {} candidates, best of {rounds} sweeps):",
        system.num_ops(),
        views.len()
    );
    println!("  legacy  (jagged, per-candidate): {legacy_ns:9.1} ns/force");
    println!("  scalar  (slab,   per-candidate): {scalar_ns:9.1} ns/force");
    println!("  batched (slab,   shared sweep) : {batched_ns:9.1} ns/force");
    println!("  fused folds: {folds_per_s:.0}/s");
    println!(
        "  batched vs legacy: {speedup_vs_legacy:.2}x   batched vs scalar: {batched_vs_scalar:.2}x"
    );

    assert!(
        batched_vs_scalar > 1.0,
        "batched evaluation must beat per-candidate scalar evaluation \
         ({batched_ns:.1} ns vs {scalar_ns:.1} ns)"
    );

    let num = |v: f64| JsonValue::Number(v);
    let mut doc = BTreeMap::new();
    doc.insert(
        "benchmark".to_owned(),
        JsonValue::String("force_kernel".to_owned()),
    );
    doc.insert(
        "design".to_owned(),
        JsonValue::String("table1_paper_system".to_owned()),
    );
    #[allow(clippy::cast_precision_loss)]
    doc.insert("ops".to_owned(), num(system.num_ops() as f64));
    doc.insert("candidates".to_owned(), num(n));
    #[allow(clippy::cast_precision_loss)]
    doc.insert("rounds".to_owned(), num(rounds as f64));
    doc.insert("legacy_ns_per_force".to_owned(), num(legacy_ns));
    doc.insert("scalar_ns_per_force".to_owned(), num(scalar_ns));
    doc.insert("batched_ns_per_force".to_owned(), num(batched_ns));
    doc.insert("folds_per_s".to_owned(), num(folds_per_s));
    doc.insert(
        "speedup_batched_vs_legacy".to_owned(),
        num(speedup_vs_legacy),
    );
    doc.insert("ratio_batched_vs_scalar".to_owned(), num(batched_vs_scalar));
    doc.insert("bit_identical".to_owned(), JsonValue::Bool(true));
    let rendered = format!("{}\n", json::to_string(&JsonValue::Object(doc)));
    json::parse(&rendered).expect("valid JSON report");
    std::fs::write(&out_path, rendered).expect("write report");
    println!("report written to {out_path}");
    let _ = sink;
}

/// Keeps the summed forces observable so the optimizer cannot delete the
/// timed work.
#[inline(never)]
fn sink_guard(v: f64) {
    assert!(v.is_finite(), "forces must stay finite");
}
