//! Regenerates Figure 1 of the paper: the periodic access-authorization
//! mapping of one process onto a globally shared resource type.
//!
//! Accepts the observability flags `--trace <file.json>`, `--timeline
//! <file.jsonl>`, `--metrics` (see `tcms_bench::obs`).

fn main() {
    let obs = tcms_bench::ObsSession::from_env_args();
    let fig = tcms_bench::run_figure1_recorded(obs.recorder());
    print!("{}", fig.rendered);
    obs.finish();
}
