//! Regenerates Figure 1 of the paper: the periodic access-authorization
//! mapping of one process onto a globally shared resource type.

fn main() {
    let fig = tcms_bench::run_figure1();
    print!("{}", fig.rendered);
}
