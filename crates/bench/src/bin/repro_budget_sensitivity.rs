//! Sensitivity of the Table-1 result to the time budgets.
//!
//! The paper's exact per-process execution-time constraints were lost in
//! the available OCR (digits dropped); DESIGN.md substitutes
//! T(EWF)=30/30/50 and T(diffeq)=15/15. This ablation sweeps the budgets
//! over a grid and shows that the headline shape — global sharing beats
//! the one-resource-per-type-and-process floor by a large factor — holds
//! across every plausible reading of the garbled numbers.

use tcms_bench::{ObsSession, TextTable};
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{add_diffeq_process, add_ewf_process, paper_library};
use tcms_ir::SystemBuilder;

fn build(ewf_t: u32, ewf3_t: u32, diffeq_t: u32) -> tcms_ir::System {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    add_ewf_process(&mut b, "P1", ewf_t, types).expect("builds");
    add_ewf_process(&mut b, "P2", ewf_t, types).expect("builds");
    add_ewf_process(&mut b, "P3", ewf3_t, types).expect("builds");
    add_diffeq_process(&mut b, "P4", diffeq_t, types).expect("builds");
    add_diffeq_process(&mut b, "P5", diffeq_t, types).expect("builds");
    b.build().expect("feasible budgets")
}

fn main() {
    let obs = ObsSession::from_env_args();
    let mut t = TextTable::new();
    t.row(["T(P1,P2)", "T(P3)", "T(P4,P5)", "global", "local", "ratio"]);
    t.sep();
    for (ewf_t, ewf3_t, diffeq_t) in [
        (20u32, 35u32, 10u32),
        (25, 40, 10),
        (30, 50, 15), // the DESIGN.md substitution
        (30, 30, 15),
        (35, 50, 15),
        (35, 55, 25),
        (40, 60, 20),
        (50, 50, 25),
    ] {
        let system = build(ewf_t, ewf3_t, diffeq_t);
        let global = ModuloScheduler::new(&system, SharingSpec::all_global(&system, 5))
            .expect("valid")
            .run_recorded(obs.recorder())
            .expect("sweep budgets are feasible")
            .report()
            .total_area();
        let local = ModuloScheduler::new(&system, SharingSpec::all_local(&system))
            .expect("valid")
            .run_recorded(obs.recorder())
            .expect("local sharing is always feasible")
            .report()
            .total_area();
        t.row([
            ewf_t.to_string(),
            ewf3_t.to_string(),
            diffeq_t.to_string(),
            global.to_string(),
            local.to_string(),
            format!("{:.2}", local as f64 / global as f64),
        ]);
    }
    println!("Time-budget sensitivity of the Table-1 comparison (ρ = 5):\n");
    print!("{}", t.render());
    println!("\nThe paper reports ratio 1.65 with its (OCR-lost) budgets; the shape");
    println!("holds across the whole plausible range.");
    obs.finish();
}
