//! Exact-search node throughput across system sizes, single-threaded.
//!
//! The branch-and-bound's admissible bound is maintained incrementally
//! on DFS push/pop (DESIGN.md §8); its per-node cost no longer grows
//! with `ops × time_range`. Running this study against a build of the
//! from-scratch bound shows the gap widening with system size — the
//! per-node win is superlinear, not a constant factor.
//!
//! ```text
//! repro_exact_throughput [--node-cap N]
//! ```
//!
//! Sequential on purpose: node throughput is a per-node-cost metric and
//! the parallel root split changes node counts, so threads would blur
//! the comparison. See `repro_thread_scaling` for the multicore study.

use std::time::Instant;

use tcms_core::exact::exact_schedule;
use tcms_core::SharingSpec;
use tcms_ir::generators::{random_system, RandomSystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node_cap = 50_000_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--node-cap" => {
                node_cap = it
                    .next()
                    .expect("--node-cap needs a count")
                    .parse()
                    .expect("--node-cap needs a number");
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    rayon::set_num_threads(1);

    println!("layers  ops  seed      nodes  complete       wall    nodes/s");
    for &(layers, per_layer) in &[(2, 2), (3, 2), (4, 2), (4, 3), (5, 3)] {
        let cfg = RandomSystemConfig {
            processes: 2,
            blocks_per_process: 1,
            layers,
            ops_per_layer: (per_layer, per_layer),
            edge_prob: 0.5,
            slack: 2.0,
            type_weights: [2, 1, 2],
        };
        for seed in 0..5u64 {
            let (sys, _) = random_system(&cfg, seed).expect("feasible");
            let spec = SharingSpec::all_global(&sys, 2);
            if !tcms_core::period::spacing_feasible(&sys, &spec) {
                continue;
            }
            let started = Instant::now();
            let Some(out) = exact_schedule(&sys, &spec, node_cap).expect("valid spec") else {
                continue;
            };
            let wall = started.elapsed();
            println!(
                "{:>6}  {:>3}  {:>4}  {:>9}  {:>8}  {:>9.3?}  {:>9.0}",
                layers,
                sys.num_ops(),
                seed,
                out.nodes,
                out.complete,
                wall,
                out.nodes as f64 / wall.as_secs_f64()
            );
        }
    }
}
