//! Distributed-fleet study: an in-process 3-node `tcms serve` fleet is
//! exercised end to end and summarized into `BENCH_fleet.json`.
//!
//! ```text
//! repro_fleet [--quick] [--requests N] [--designs N] [--alpha F]
//!             [--seed N] [--out FILE]
//! ```
//!
//! Three phases, each a claim from `DESIGN.md` §14:
//!
//! 1. **One logical cache** — a spec scheduled anywhere in the fleet is
//!    a verbatim, zero-iteration hit from *every* node, over both the
//!    NDJSON wire and the HTTP front-end. Asserted bit-for-bit.
//! 2. **Hit rate is node-count invariant** — the same Zipf request
//!    stream replayed round-robin against 1-, 2- and 3-node fleets
//!    performs exactly `unique designs` scheduler runs fleet-wide at
//!    every size: consistent-hash routing makes N caches behave as one.
//! 3. **Chaos rejoin converges** — one node is killed mid-run while a
//!    fault-injecting proxy mangles the traffic to a survivor; every
//!    response that does arrive is still bit-identical to the one-shot
//!    pipeline (zero wrong answers), and after the dead node restarts,
//!    anti-entropy pulls its cache back to digest equality with the
//!    survivors in a bounded number of rounds.
//!
//! A failed claim panics — this harness does not write a report for a
//! broken fleet.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::Instant;

use tcms_bench::workload::{draw, make_design, zipf_cdf};
use tcms_obs::json::{self, JsonValue};
use tcms_obs::NoopRecorder;
use tcms_serve::fleet::sync;
use tcms_serve::{
    schedule_request, ChaosProxy, Client, ExecContext, FleetConfig, RetryPolicy, ScheduleOptions,
    ServeClient, ServeConfig, Server, DEFAULT_AUTO_PARTITION_OPS,
};
use tcms_sim::NetFaultPlan;

/// Reserves `n` distinct loopback ports by bind-and-drop, so the fleet
/// addresses are known before any server starts (the ring needs the
/// full peer list up front).
fn reserve_ports(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            drop(listener);
            format!("127.0.0.1:{}", addr.port())
        })
        .collect()
}

/// Starts one fleet node on `addr`. Background sync is off — phases
/// drive `sync_now` explicitly so the run is deterministic.
fn start_node(addr: &str, peers: &[String], replicas: usize) -> Server {
    Server::start(ServeConfig {
        listen: addr.to_owned(),
        workers: 2,
        http_listen: Some("127.0.0.1:0".into()),
        fleet: Some(FleetConfig {
            replicas,
            sync_interval: None,
            ..FleetConfig::new(addr.to_owned(), peers.to_vec())
        }),
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| panic!("node on {addr} failed to start: {e}"))
}

/// Restarts a node whose previous incarnation just shut down; the
/// listen port can linger briefly, so retry `AddrInUse` for a while.
fn restart_node(addr: &str, peers: &[String]) -> Server {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match Server::start(ServeConfig {
            listen: addr.to_owned(),
            workers: 2,
            fleet: Some(FleetConfig {
                sync_interval: None,
                ..FleetConfig::new(addr.to_owned(), peers.to_vec())
            }),
            ..ServeConfig::default()
        }) {
            Ok(server) => return server,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => panic!("node on {addr} failed to restart: {e}"),
        }
    }
}

fn request_line(id: &str, design: &str) -> String {
    tcms_serve::client::schedule_request_line(
        id,
        design,
        &ScheduleOptions {
            all_global: Some(4),
            ..ScheduleOptions::default()
        },
        None,
    )
}

/// The one-shot pipeline's answer for `design` — the ground truth every
/// fleet response is compared against, bit for bit.
fn oneshot(design: &str) -> String {
    let ctx = ExecContext {
        cache: None,
        budget: tcms_fds::RunBudget::UNLIMITED,
        rec: &NoopRecorder,
        fault_marker: false,
        auto_partition_ops: DEFAULT_AUTO_PARTITION_OPS,
    };
    schedule_request(
        design,
        &ScheduleOptions {
            all_global: Some(4),
            ..ScheduleOptions::default()
        },
        &ctx,
    )
    .expect("ground-truth schedule")
    .text
}

fn http_post(addr: std::net::SocketAddr, body: &str) -> (u16, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("http connect");
    let req = format!(
        "POST /schedule HTTP/1.1\r\nHost: f\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("http send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("http read");
    let text = String::from_utf8(raw).expect("http utf8");
    let (head, payload) = text.split_once("\r\n\r\n").expect("http framing");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, payload.to_owned())
}

#[allow(clippy::cast_precision_loss)]
fn count(n: u64) -> JsonValue {
    JsonValue::Number(n as f64)
}

/// Phase 1: schedule once via a non-owner (the proxy path), then read
/// the result back from every node over both wires.
fn phase_one_logical_cache(doc: &mut BTreeMap<String, JsonValue>) {
    let peers = reserve_ports(3);
    let servers: Vec<Server> = peers.iter().map(|a| start_node(a, &peers, 2)).collect();
    let design = make_design(3, false);
    let truth = oneshot(&design);
    let line = request_line("p1", &design);

    // First contact through node 0 — owner or proxy, the answer is the
    // same bytes either way.
    let first = Client::connect(servers[0].local_addr())
        .expect("connect")
        .request(&line)
        .expect("first response");
    assert_eq!(first.output(), Some(truth.as_str()), "daemon == one-shot");
    assert_eq!(first.cache(), Some("miss"));

    // Converge the replicas, then every node must answer a verbatim
    // zero-work hit over NDJSON …
    for server in &servers {
        server.sync_now();
    }
    let runs_before: u64 = servers
        .iter()
        .map(|s| s.counter("serve.scheduler.runs"))
        .sum();
    for (i, server) in servers.iter().enumerate() {
        let resp = Client::connect(server.local_addr())
            .expect("connect")
            .request(&line)
            .expect("fleet response");
        assert_eq!(resp.cache(), Some("hit"), "node {i} missed");
        assert_eq!(resp.output(), Some(truth.as_str()), "node {i} diverged");
        // … and over HTTP, whose body IS the NDJSON line.
        let body = format!(
            r#"{{"id":"p1h","design":"{}","all_global":4}}"#,
            design.replace('\n', "\\n")
        );
        let (status, payload) = http_post(server.local_http_addr().expect("http addr"), &body);
        assert_eq!(status, 200, "node {i} http: {payload}");
        let http_resp =
            tcms_serve::protocol::parse_response(payload.trim_end()).expect("http body");
        assert_eq!(
            http_resp.output(),
            Some(truth.as_str()),
            "node {i} http diverged"
        );
    }
    let runs_after: u64 = servers
        .iter()
        .map(|s| s.counter("serve.scheduler.runs"))
        .sum();
    assert_eq!(runs_after, runs_before, "warm reads ran the scheduler");
    assert_eq!(runs_after, 1, "exactly one scheduler run fleet-wide");

    let proxied: u64 = servers
        .iter()
        .map(|s| s.counter("serve.fleet.proxied"))
        .sum();
    let mut phase = BTreeMap::new();
    phase.insert("nodes".to_owned(), count(3));
    phase.insert("scheduler_runs".to_owned(), count(runs_after));
    phase.insert("proxied".to_owned(), count(proxied));
    phase.insert("bit_identical".to_owned(), JsonValue::Bool(true));
    doc.insert("one_logical_cache".to_owned(), JsonValue::Object(phase));
    println!("phase 1: 1 run, {proxied} proxied, every node verbatim over both wires");

    for server in servers {
        server.shutdown();
        server.wait().expect("clean shutdown");
    }
}

/// Phase 2: the same Zipf stream against growing fleets — scheduler
/// runs fleet-wide must equal the number of unique designs requested,
/// independent of node count.
fn phase_hit_rate_vs_nodes(
    requests: usize,
    designs: usize,
    alpha: f64,
    seed: u64,
    doc: &mut BTreeMap<String, JsonValue>,
) {
    // Stage counts grow with the rank so every pool entry is textually
    // (and canonically) distinct — `unique designs` really means it.
    let pool: Vec<String> = (0..designs).map(|d| make_design(2 + d, false)).collect();
    let cdf = zipf_cdf(designs, alpha);
    let mut rows = Vec::new();
    for nodes in 1..=3usize {
        let peers = reserve_ports(nodes);
        // R=1: exactly one owner per key, every other node proxies —
        // the cleanest demonstration that N caches act as one.
        let servers: Vec<Server> = peers.iter().map(|a| start_node(a, &peers, 1)).collect();
        let mut clients: Vec<Client> = servers
            .iter()
            .map(|s| Client::connect(s.local_addr()).expect("connect"))
            .collect();
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        // The pool cycles stage counts, so distinct indices can carry
        // identical text — dedup on the text, which is what the
        // content-addressed cache sees.
        let mut unique = std::collections::BTreeSet::new();
        let started = Instant::now();
        for r in 0..requests {
            let d = draw(&cdf, &mut state);
            unique.insert(pool[d].as_str());
            let resp = clients[r % nodes]
                .request(&request_line(&format!("r{r}"), &pool[d]))
                .expect("response");
            assert!(resp.is_ok(), "request {r}: {:?}", resp.error);
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let runs: u64 = servers
            .iter()
            .map(|s| s.counter("serve.scheduler.runs"))
            .sum();
        let hits: u64 = servers.iter().map(|s| s.cache().stats().hits).sum();
        let misses: u64 = servers.iter().map(|s| s.cache().stats().misses).sum();
        let proxied: u64 = servers
            .iter()
            .map(|s| s.counter("serve.fleet.proxied"))
            .sum();
        assert_eq!(
            runs,
            unique.len() as u64,
            "{nodes} nodes: fleet ran the scheduler more than once per unique design"
        );
        #[allow(clippy::cast_precision_loss)]
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        println!(
            "phase 2: {nodes} node(s): {requests} requests, {} unique, {runs} runs, hit rate {hit_rate:.3}, {proxied} proxied",
            unique.len()
        );
        let mut row = BTreeMap::new();
        row.insert("nodes".to_owned(), count(nodes as u64));
        row.insert("requests".to_owned(), count(requests as u64));
        row.insert("unique_designs".to_owned(), count(unique.len() as u64));
        row.insert("scheduler_runs".to_owned(), count(runs));
        row.insert("hits".to_owned(), count(hits));
        row.insert("misses".to_owned(), count(misses));
        row.insert("proxied".to_owned(), count(proxied));
        row.insert("hit_rate".to_owned(), JsonValue::Number(hit_rate));
        row.insert("wall_ms".to_owned(), JsonValue::Number(wall_ms));
        rows.push(JsonValue::Object(row));
        drop(clients.drain(..));
        for server in servers {
            server.shutdown();
            server.wait().expect("clean shutdown");
        }
    }
    doc.insert("hit_rate_vs_nodes".to_owned(), JsonValue::Array(rows));
}

/// Phase 3: kill a node mid-run behind injected network faults, demand
/// zero wrong answers from the survivors, then restart it and count the
/// sync rounds until the caches are digest-equal again.
fn phase_chaos_rejoin(requests: usize, seed: u64, doc: &mut BTreeMap<String, JsonValue>) {
    let peers = reserve_ports(3);
    let mut servers: Vec<Option<Server>> = peers
        .iter()
        .map(|a| Some(start_node(a, &peers, 2)))
        .collect();
    let pool: Vec<String> = (0..6).map(|d| make_design(2 + d, false)).collect();
    let truths: Vec<String> = pool.iter().map(|d| oneshot(d)).collect();

    // Warm the fleet and converge it.
    for (d, design) in pool.iter().enumerate() {
        let resp = Client::connect(servers[0].as_ref().expect("node 0").local_addr())
            .expect("connect")
            .request(&request_line(&format!("warm{d}"), design))
            .expect("warm response");
        assert_eq!(resp.output(), Some(truths[d].as_str()), "warm answer {d}");
    }
    for server in servers.iter().flatten() {
        server.sync_now();
    }

    // Kill node 2; survivors take traffic through a fault-injecting
    // proxy (resets, latency spikes, truncation) on node 1's wire.
    let killed = servers[2].take().expect("node 2");
    killed.shutdown();
    killed.wait().expect("killed node drains");
    let node1_addr = servers[1].as_ref().expect("node 1").local_addr();
    let mut proxy =
        ChaosProxy::start(node1_addr, NetFaultPlan::moderate(seed)).expect("chaos proxy");
    let policy = RetryPolicy {
        connect_timeout: Some(std::time::Duration::from_millis(500)),
        read_timeout: Some(std::time::Duration::from_secs(30)),
        max_retries: 10,
        base_backoff: std::time::Duration::from_millis(5),
        max_backoff: std::time::Duration::from_millis(100),
        seed,
    };
    // Half the traffic goes straight to node 0, half through the
    // mangled wire to node 1 — the proxy client has one address on
    // purpose, so its retries keep re-entering the fault stream
    // instead of failing over to a clean path.
    let mut clean = ServeClient::new(
        servers[0]
            .as_ref()
            .expect("node 0")
            .local_addr()
            .to_string(),
        policy.clone(),
    );
    let mut mangled = ServeClient::new(proxy.local_addr().to_string(), policy);
    let mut state = seed ^ 0x0005_EEDF_1EE7;
    let mut answered = 0u64;
    for r in 0..requests {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        let d = (state >> 33) as usize % pool.len();
        let client = if r % 2 == 0 { &mut clean } else { &mut mangled };
        match client.request(&request_line(&format!("chaos{r}"), &pool[d])) {
            Ok(resp) if resp.is_ok() => {
                // THE invariant: an answer that arrives is never wrong.
                assert_eq!(
                    resp.output(),
                    Some(truths[d].as_str()),
                    "request {r}: wrong answer under chaos"
                );
                answered += 1;
            }
            // Typed pushback (peer-unavailable while the failure
            // detector settles) and transport drops are survivable;
            // wrong bytes are not.
            Ok(_) | Err(_) => {}
        }
    }
    let faults = proxy.stats().faults();
    proxy.stop();
    assert!(answered > 0, "chaos silenced every request");
    assert!(
        faults > 0,
        "the chaos proxy never fired — nothing was exercised"
    );

    // Rejoin: restart node 2 cold and let anti-entropy pull it level.
    let rejoined = restart_node(&peers[2], &peers);
    let digest_of = |s: &Server| sync::digests(s.cache());
    let mut rounds = 0u64;
    let converged = loop {
        rounds += 1;
        rejoined.sync_now();
        for server in servers.iter().flatten() {
            server.sync_now();
        }
        let target = digest_of(&rejoined);
        if servers.iter().flatten().all(|s| digest_of(s) == target) {
            break true;
        }
        if rounds >= 5 {
            break false;
        }
    };
    assert!(converged, "fleet did not converge within 5 sync rounds");
    assert!(
        rounds <= 3,
        "convergence took {rounds} rounds (expected <= 3)"
    );
    // The rejoined node now answers a warm spec with zero local work.
    let resp = Client::connect(rejoined.local_addr())
        .expect("connect rejoined")
        .request(&request_line("rejoin", &pool[0]))
        .expect("rejoined response");
    assert_eq!(resp.cache(), Some("hit"), "{:?}", resp.error);
    assert_eq!(resp.output(), Some(truths[0].as_str()));
    assert_eq!(rejoined.counter("serve.scheduler.runs"), 0);
    assert_eq!(rejoined.counter("serve.ifds.iterations"), 0);
    let applied = rejoined.counter("serve.fleet.sync.entries_applied");
    println!(
        "phase 3: {answered}/{requests} answered under chaos ({faults} faults), rejoin converged in {rounds} round(s), {applied} entries pulled"
    );

    let mut phase = BTreeMap::new();
    phase.insert("requests".to_owned(), count(requests as u64));
    phase.insert("answered".to_owned(), count(answered));
    phase.insert("wrong_answers".to_owned(), count(0));
    phase.insert("proxy_faults".to_owned(), count(faults));
    phase.insert("rejoin_sync_rounds".to_owned(), count(rounds));
    phase.insert("rejoin_entries_applied".to_owned(), count(applied));
    phase.insert("rejoin_warm_hit".to_owned(), JsonValue::Bool(true));
    doc.insert("chaos_rejoin".to_owned(), JsonValue::Object(phase));

    rejoined.shutdown();
    rejoined.wait().expect("rejoined node drains");
    for server in servers.into_iter().flatten() {
        server.shutdown();
        server.wait().expect("clean shutdown");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut requests = 300usize;
    let mut designs = 12usize;
    let mut alpha = 1.1f64;
    let mut seed = 7u64;
    let mut out_path = "BENCH_fleet.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--quick" => {
                requests = 60;
                designs = 8;
            }
            "--requests" => requests = next(&mut it, "--requests").parse().expect("bad count"),
            "--designs" => designs = next(&mut it, "--designs").parse().expect("bad count"),
            "--alpha" => alpha = next(&mut it, "--alpha").parse().expect("bad alpha"),
            "--seed" => seed = next(&mut it, "--seed").parse().expect("bad seed"),
            "--out" => out_path = next(&mut it, "--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(requests > 0 && designs > 0, "counts must be positive");

    let mut doc = BTreeMap::new();
    doc.insert(
        "benchmark".to_owned(),
        JsonValue::String("fleet".to_owned()),
    );
    doc.insert("seed".to_owned(), count(seed));
    doc.insert("alpha".to_owned(), JsonValue::Number(alpha));

    phase_one_logical_cache(&mut doc);
    phase_hit_rate_vs_nodes(requests, designs, alpha, seed, &mut doc);
    phase_chaos_rejoin(requests.min(120), seed, &mut doc);

    let rendered = format!("{}\n", json::to_string(&JsonValue::Object(doc)));
    json::parse(&rendered).expect("valid JSON report");
    std::fs::write(&out_path, rendered).expect("write report");
    println!("report written to {out_path}");
}
