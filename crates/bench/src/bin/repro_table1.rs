//! Regenerates Table 1 of the paper: scheduling results of the
//! multi-process example (3 elliptical wave filters + 2 diffeq solvers),
//! modulo-global vs. traditional pure-local assignment.
//!
//! Pass `--stats` to also print the engine instrumentation (candidate
//! force evaluations, incremental-cache hit rates, phase times), and/or
//! the observability flags `--trace <file.json>`, `--timeline
//! <file.jsonl>`, `--metrics` (see `tcms_bench::obs`).

fn main() {
    let obs = tcms_bench::ObsSession::from_env_args();
    let results = tcms_bench::run_table1_recorded(obs.recorder());
    print!("{}", tcms_bench::render_table1(&results));
    if tcms_bench::stats_requested() {
        println!("\nengine instrumentation:");
        for run in [&results.global, &results.local] {
            print!("  {}", tcms_bench::render_stats(run.label, &run.stats));
        }
    }
    obs.finish();
}
