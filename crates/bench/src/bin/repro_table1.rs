//! Regenerates Table 1 of the paper: scheduling results of the
//! multi-process example (3 elliptical wave filters + 2 diffeq solvers),
//! modulo-global vs. traditional pure-local assignment.

fn main() {
    let results = tcms_bench::run_table1();
    print!("{}", tcms_bench::render_table1(&results));
}
