//! Process-merging baseline (paper §1.1).
//!
//! When every process is triggered simultaneously and deterministically,
//! the classical answer is to merge them into one process and schedule the
//! union with a plain single-process scheduler. The paper's contribution
//! matters because merging is *impossible* for reactive systems; this
//! baseline quantifies both sides:
//!
//! * merged scheduling gets the unrestricted interleaving (and here even
//!   relaxed deadlines — see `tcms_ir::transform`), so its area is a lower
//!   bound for what any sharing scheme can reach,
//! * modulo sharing approaches that area **while keeping the processes
//!   independent**, which merging cannot.

use tcms_bench::{ObsSession, TextTable};
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_fds::{schedule_system_local, FdsConfig};
use tcms_ir::generators::paper_system;
use tcms_ir::transform::merge_processes;

fn main() {
    let obs = ObsSession::from_env_args();
    let (system, types) = paper_system().expect("paper system builds");

    // 1. Traditional per-process scheduling (one pool per process).
    let local = ModuloScheduler::new(&system, SharingSpec::all_local(&system))
        .expect("valid")
        .run_recorded(obs.recorder())
        .expect("paper specs are feasible under an unlimited budget")
        .report();

    // 2. The paper's modulo-global sharing (processes stay independent).
    let global = ModuloScheduler::new(&system, SharingSpec::all_global(&system, 5))
        .expect("valid")
        .run_recorded(obs.recorder())
        .expect("paper specs are feasible under an unlimited budget")
        .report();

    // 3. Merged baseline: one fused process, classical IFDS.
    let merged_sys = merge_processes(&system).expect("merge succeeds");
    let merged_out = schedule_system_local(&merged_sys, &FdsConfig::default())
        .expect("unlimited budget cannot trip");
    merged_out
        .schedule
        .verify(&merged_sys)
        .expect("valid schedule");
    let blk = merged_sys.block_ids().next().expect("one block");
    let peak = |k| merged_out.schedule.peak_usage(&merged_sys, blk, k);
    let merged_area: u64 = merged_sys
        .library()
        .iter()
        .map(|(k, rt)| u64::from(peak(k)) * rt.area())
        .sum();

    let mut t = TextTable::new();
    t.row(["flow", "independent?", "add", "sub", "mul", "area"]);
    t.sep();
    t.row([
        "local (traditional)".to_owned(),
        "yes".to_owned(),
        local.instances(types.add).to_string(),
        local.instances(types.sub).to_string(),
        local.instances(types.mul).to_string(),
        local.total_area().to_string(),
    ]);
    t.row([
        "modulo global (paper)".to_owned(),
        "yes".to_owned(),
        global.instances(types.add).to_string(),
        global.instances(types.sub).to_string(),
        global.instances(types.mul).to_string(),
        global.total_area().to_string(),
    ]);
    t.row([
        "merged (when possible)".to_owned(),
        "no".to_owned(),
        peak(types.add).to_string(),
        peak(types.sub).to_string(),
        peak(types.mul).to_string(),
        merged_area.to_string(),
    ]);
    println!("Process-merging baseline on the Table-1 system:\n");
    print!("{}", t.render());
    println!("\nMerging is the cheapest when it applies, but it forces every process onto");
    println!("one common, slowest invocation rate (here all deadlines stretch to T=50 —");
    println!("the 'latency adaption' restriction of paper ref. [5]) and requires");
    println!("deterministic simultaneous triggers. Modulo sharing closes most of the");
    println!("local-to-merged gap while every process keeps its own rate and reacts");
    println!("independently to spontaneous events.");
    obs.finish();
}
