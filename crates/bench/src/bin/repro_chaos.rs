//! Chaos study of the `tcms serve` daemon: retrying clients drive an
//! in-process daemon **through a seeded fault proxy** (connection
//! resets, latency spikes, mid-line truncation, kills after complete
//! writes) while a fraction of the workload carries the deliberate
//! panic marker that exercises worker supervision. The run is
//! summarized into `BENCH_chaos.json`.
//!
//! ```text
//! repro_chaos [--seeds N] [--requests N] [--out FILE]
//! ```
//!
//! The harness asserts the failure model's core claims at every seed:
//!
//! * **zero wrong answers** — every completed schedule response is
//!   bit-identical to the one-shot pipeline's output for that design,
//! * **typed errors only** — the daemon never answers with anything
//!   outside the stable error taxonomy (marked designs come back as
//!   `internal`/500, never as garbage or silence),
//! * **bounded retries** — the retry budget is respected,
//! * **clean recovery** — once the proxy stops, a direct request
//!   schedules correctly and the panic counters are visible in `stats`.
//!
//! A violated claim panics the run — a chaos harness that "mostly
//! passes" does not produce a report.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tcms_obs::json::{self, JsonValue};
use tcms_serve::{
    pipeline, render_stats, Client, ExecContext, RetryPolicy, ScheduleOptions, ServeClient,
    ServeConfig, Server, PANIC_MARKER,
};
use tcms_sim::NetFaultPlan;

/// A small synthetic design: `stages` multiply-accumulate chains across
/// two processes (the same family the serve-load study uses).
fn make_design(stages: usize) -> String {
    let time = 6 + 3 * stages;
    let mut out =
        String::from("resource add delay=1 area=1\nresource mul delay=2 area=4 pipelined\n");
    for pname in ["P", "Q"] {
        out.push_str(&format!("process {pname}\nblock body time={time}\n"));
        for s in 0..stages {
            out.push_str(&format!("op m{s} mul\nop a{s} add\n"));
        }
        for s in 0..stages {
            out.push_str(&format!("edge m{s} a{s}\n"));
            if s > 0 {
                out.push_str(&format!("edge a{} m{s}\n", s - 1));
            }
        }
    }
    out
}

fn opts() -> ScheduleOptions {
    ScheduleOptions {
        all_global: Some(4),
        ..ScheduleOptions::default()
    }
}

/// The one-shot pipeline's output for `design` — the ground truth every
/// completed daemon response must reproduce bit-for-bit.
fn one_shot(design: &str) -> String {
    let ctx = ExecContext::default();
    pipeline::schedule_request(design, &opts(), &ctx)
        .expect("ground-truth schedule succeeds")
        .text
}

/// Wire error classes a chaos run is allowed to surface. Anything else
/// is a harness failure.
const ALLOWED_CLASSES: &[&str] = &[
    "internal",
    "overloaded",
    "deadline-expired",
    "shutting-down",
];

#[derive(Default)]
struct Tally {
    completed: u64,
    wrong: u64,
    internal_errors: u64,
    other_typed_errors: u64,
    transport_failures: u64,
    retries: u64,
}

fn run_seed(seed: u64, requests_per_client: usize) -> (Tally, BTreeMap<String, JsonValue>) {
    const CLIENTS: u64 = 3;
    let server = Server::start(ServeConfig {
        workers: 2,
        fault_marker: true,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let upstream = server.local_addr();
    let proxy =
        tcms_serve::ChaosProxy::start(upstream, NetFaultPlan::moderate(seed)).expect("proxy");
    let proxy_addr = proxy.local_addr();

    // Workload: two clean designs plus one carrying the panic marker
    // (a `#` comment, so it parses — and canonicalizes identically to
    // its clean twin, which is exactly why the daemon checks the marker
    // before the cache).
    let clean_a = make_design(2);
    let clean_b = make_design(3);
    let marked = format!("{clean_a}{PANIC_MARKER}\n");
    let truth_a = one_shot(&clean_a);
    let truth_b = one_shot(&clean_b);

    let policy = |client: u64| RetryPolicy {
        max_retries: 10,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        seed: seed * 1000 + client,
        ..RetryPolicy::default()
    };
    let max_retries = policy(0).max_retries;

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let designs = [
                (clean_a.clone(), Some(truth_a.clone())),
                (clean_b.clone(), Some(truth_b.clone())),
                (marked.clone(), None),
            ];
            let policy = policy(c);
            std::thread::spawn(move || {
                let mut client = ServeClient::new(proxy_addr.to_string(), policy);
                let mut t = Tally::default();
                for r in 0..requests_per_client {
                    let (design, truth) = &designs[r % designs.len()];
                    let line = tcms_serve::client::schedule_request_line(
                        &format!("s{seed}c{c}r{r}"),
                        design,
                        &opts(),
                        None,
                    );
                    match client.request(&line) {
                        Ok(resp) => {
                            if let Some((class, code, _)) = &resp.error {
                                assert!(
                                    ALLOWED_CLASSES.contains(&class.as_str()),
                                    "unexpected error class {class}/{code} under chaos"
                                );
                                if class == "internal" {
                                    assert!(truth.is_none(), "clean design answered 500");
                                    t.internal_errors += 1;
                                } else {
                                    t.other_typed_errors += 1;
                                }
                            } else {
                                let output = resp.output().unwrap_or_default();
                                match truth {
                                    Some(want) if output == want => t.completed += 1,
                                    Some(_) => t.wrong += 1,
                                    // A marked design must never complete.
                                    None => t.wrong += 1,
                                }
                            }
                        }
                        Err(_) => t.transport_failures += 1,
                    }
                }
                t.retries = client.retries();
                t
            })
        })
        .collect();

    let mut tally = Tally::default();
    for h in handles {
        let t = h.join().expect("client thread");
        tally.completed += t.completed;
        tally.wrong += t.wrong;
        tally.internal_errors += t.internal_errors;
        tally.other_typed_errors += t.other_typed_errors;
        tally.transport_failures += t.transport_failures;
        tally.retries += t.retries;
    }
    let chaos = proxy.stats();
    drop(proxy);

    // The failure-model claims, per seed.
    assert_eq!(tally.wrong, 0, "seed {seed}: a completed answer was wrong");
    let total_requests = CLIENTS * requests_per_client as u64;
    assert!(
        tally.retries <= total_requests * max_retries as u64,
        "seed {seed}: retry budget exceeded ({} retries)",
        tally.retries
    );
    assert!(
        chaos.faults() > 0,
        "seed {seed}: the plan injected no faults — the run proves nothing"
    );

    // Clean recovery: chaos is gone, the daemon must answer a direct
    // request correctly and expose its panic counters.
    let mut direct = Client::connect(upstream).expect("direct connect");
    let resp = direct
        .request(&tcms_serve::client::schedule_request_line(
            "recovery",
            &clean_a,
            &opts(),
            None,
        ))
        .expect("post-chaos request");
    assert!(resp.is_ok(), "post-chaos request failed: {:?}", resp.error);
    assert_eq!(
        resp.output(),
        Some(truth_a.as_str()),
        "seed {seed}: post-chaos answer diverged from the one-shot pipeline"
    );
    let worker_panics = server.counter("serve.worker.panics");
    assert!(
        worker_panics >= 1,
        "seed {seed}: the marked workload never tripped the supervisor"
    );
    let stats = direct
        .request(&tcms_serve::client::control_request_line("st", "stats"))
        .expect("stats request");
    let body = stats.body.as_object().expect("stats body").clone();
    let rendered = render_stats(&body);
    assert!(
        rendered.contains("worker panics"),
        "stats rendering lost the panic counter"
    );
    server.shutdown();
    server.wait().expect("clean shutdown");

    #[allow(clippy::cast_precision_loss)]
    let count = |n: u64| JsonValue::Number(n as f64);
    let mut doc = BTreeMap::new();
    doc.insert("seed".to_owned(), count(seed));
    doc.insert("requests".to_owned(), count(total_requests));
    doc.insert("completed".to_owned(), count(tally.completed));
    doc.insert("wrong_answers".to_owned(), count(tally.wrong));
    doc.insert("internal_errors".to_owned(), count(tally.internal_errors));
    doc.insert(
        "other_typed_errors".to_owned(),
        count(tally.other_typed_errors),
    );
    doc.insert(
        "transport_failures".to_owned(),
        count(tally.transport_failures),
    );
    doc.insert("retries".to_owned(), count(tally.retries));
    doc.insert("worker_panics".to_owned(), count(worker_panics));
    let mut faults = BTreeMap::new();
    faults.insert("connections".to_owned(), count(chaos.connections));
    faults.insert("chunks".to_owned(), count(chaos.chunks));
    faults.insert("delays".to_owned(), count(chaos.delays));
    faults.insert("truncations".to_owned(), count(chaos.truncations));
    faults.insert("resets".to_owned(), count(chaos.resets));
    faults.insert("kills".to_owned(), count(chaos.kills));
    doc.insert("faults".to_owned(), JsonValue::Object(faults));
    (tally, doc)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 3u64;
    let mut requests = 9usize;
    let mut out_path = "BENCH_chaos.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--seeds" => seeds = next(&mut it, "--seeds").parse().expect("bad count"),
            "--requests" => requests = next(&mut it, "--requests").parse().expect("bad count"),
            "--out" => out_path = next(&mut it, "--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }
    assert!(seeds > 0 && requests > 0, "counts must be positive");

    // The marked workload panics *on purpose*, many times per run; keep
    // the default hook for everything else so a real bug still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        let deliberate = message.is_some_and(|m| m.contains("chaos: deliberate panic marker"));
        if !deliberate {
            default_hook(info);
        }
    }));

    let started = Instant::now();
    let mut per_seed = Vec::new();
    let mut total = Tally::default();
    for seed in 1..=seeds {
        let (tally, doc) = run_seed(seed, requests);
        println!(
            "seed {seed}: {} completed, {} internal, {} transport failures, {} retries — ok",
            tally.completed, tally.internal_errors, tally.transport_failures, tally.retries
        );
        total.completed += tally.completed;
        total.internal_errors += tally.internal_errors;
        total.transport_failures += tally.transport_failures;
        total.retries += tally.retries;
        per_seed.push(JsonValue::Object(doc));
    }
    assert!(
        total.completed > 0,
        "no request completed at any seed — the chaos plan is too hot to prove anything"
    );
    assert!(
        total.internal_errors > 0,
        "no marked request surfaced a typed 500 at any seed"
    );
    let wall = started.elapsed();
    println!(
        "{} seeds in {:.2}s: {} completed (all bit-identical), {} typed 500s, {} retries",
        seeds,
        wall.as_secs_f64(),
        total.completed,
        total.internal_errors,
        total.retries
    );

    #[allow(clippy::cast_precision_loss)]
    let count = |n: u64| JsonValue::Number(n as f64);
    let mut doc = BTreeMap::new();
    doc.insert(
        "benchmark".to_owned(),
        JsonValue::String("serve_chaos".to_owned()),
    );
    doc.insert("seeds".to_owned(), count(seeds));
    #[allow(clippy::cast_precision_loss)]
    doc.insert("wall_ms".to_owned(), {
        JsonValue::Number(wall.as_micros() as f64 / 1000.0)
    });
    doc.insert("completed".to_owned(), count(total.completed));
    doc.insert("wrong_answers".to_owned(), count(0));
    doc.insert("internal_errors".to_owned(), count(total.internal_errors));
    doc.insert(
        "transport_failures".to_owned(),
        count(total.transport_failures),
    );
    doc.insert("retries".to_owned(), count(total.retries));
    doc.insert("per_seed".to_owned(), JsonValue::Array(per_seed));
    let rendered = format!("{}\n", json::to_string(&JsonValue::Object(doc)));
    // Self-check: the report must parse back.
    json::parse(&rendered).expect("valid JSON report");
    std::fs::write(&out_path, rendered).expect("write report");
    println!("report written to {out_path}");
}
