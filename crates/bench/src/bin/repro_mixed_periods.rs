//! Non-uniform period assignments (equations 2–3): harmonic period sets
//! keep the block-start grid fine, while incommensurate periods blow the
//! lcm up — the paper notes that only combinations complying with the
//! grid spacings survive the equation-3 filter.

use tcms_bench::{ObsSession, TextTable};
use tcms_core::period::{combined_spacing, is_harmonic, spacing_feasible};
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::paper_system;

fn main() {
    let obs = ObsSession::from_env_args();
    let (system, types) = paper_system().expect("paper system builds");
    let mut t = TextTable::new();
    t.row([
        "rho(add)", "rho(sub)", "rho(mul)", "harmonic", "spacing", "area",
    ]);
    t.sep();
    for (pa, ps, pm) in [
        (5u32, 5u32, 5u32),
        (2, 2, 4),
        (3, 3, 6),
        (2, 4, 8),
        (5, 5, 15),
        (3, 5, 5),
        (2, 3, 5),
        (4, 6, 8),
    ] {
        let mut spec = SharingSpec::all_local(&system);
        spec.set_global(types.add, system.users_of_type(types.add), pa);
        spec.set_global(types.sub, system.users_of_type(types.sub), ps);
        spec.set_global(types.mul, system.users_of_type(types.mul), pm);
        let harmonic = is_harmonic(vec![pa, ps, pm]);
        let spacing = combined_spacing(&[pa, ps, pm]);
        if !spacing_feasible(&system, &spec) {
            t.row([
                pa.to_string(),
                ps.to_string(),
                pm.to_string(),
                if harmonic { "yes" } else { "no" }.to_owned(),
                spacing.to_string(),
                "filtered (eq. 3)".to_owned(),
            ]);
            continue;
        }
        let report = ModuloScheduler::new(&system, spec)
            .expect("valid")
            .run_recorded(obs.recorder())
            .expect("paper specs are feasible under an unlimited budget")
            .report();
        t.row([
            pa.to_string(),
            ps.to_string(),
            pm.to_string(),
            if harmonic { "yes" } else { "no" }.to_owned(),
            spacing.to_string(),
            report.total_area().to_string(),
        ]);
    }
    println!("Mixed period assignments on the Table-1 system:\n");
    print!("{}", t.render());
    println!("\nHarmonic sets keep the grid equal to the largest period; incommensurate");
    println!("sets multiply the spacing and are filtered once it exceeds the diffeq");
    println!("processes' budget of 15 steps (equation 3).");
    obs.finish();
}
