//! Ablation of step (S1): every local/global combination of the three
//! resource types on the Table-1 system.
//!
//! Accepts the observability flags `--trace <file.json>`, `--timeline
//! <file.jsonl>`, `--metrics` (see `tcms_bench::obs`).

use tcms_bench::{ObsSession, TextTable};
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::paper_system;

fn main() {
    let obs = ObsSession::from_env_args();
    let (system, types) = paper_system().expect("paper system builds");
    let mut t = TextTable::new();
    t.row(["add", "sub", "mul", "#add", "#sub", "#mul", "area"]);
    t.sep();
    for mask in 0..8u32 {
        let mut spec = SharingSpec::all_local(&system);
        let mut labels = ["local"; 3];
        for (i, &k) in [types.add, types.sub, types.mul].iter().enumerate() {
            if mask & (1 << i) != 0 {
                spec.set_global(k, system.users_of_type(k), 5);
                labels[i] = "global";
            }
        }
        let report = ModuloScheduler::new(&system, spec)
            .expect("valid spec")
            .run_recorded(obs.recorder())
            .expect("paper specs are feasible under an unlimited budget")
            .report();
        t.row([
            labels[0].to_owned(),
            labels[1].to_owned(),
            labels[2].to_owned(),
            report.instances(types.add).to_string(),
            report.instances(types.sub).to_string(),
            report.instances(types.mul).to_string(),
            report.total_area().to_string(),
        ]);
    }
    println!("Scope ablation (S1) on the Table-1 system, ρ = 5:\n");
    print!("{}", t.render());
    println!("\nSharing the multiplier alone recovers most of the area saving;");
    println!("the paper shares all types to demonstrate many concurrent global sharings.");
    obs.finish();
}
