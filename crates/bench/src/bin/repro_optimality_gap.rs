//! Optimality-gap study: the coupled force-directed heuristic vs. the
//! exact branch-and-bound optimum on small random systems.
//!
//! The paper gives no optimality evidence (FDS is a heuristic); this
//! study quantifies the gap where exhaustive search is tractable.
//!
//! `--node-cap <N>` bounds the exact search (systems that do not finish
//! under the cap are skipped); `--seeds <N>` sets how many random
//! systems are tried. CI runs a small-cap smoke configuration.

use tcms_bench::{ObsSession, TextTable};
use tcms_core::exact::exact_schedule;
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{random_system, RandomSystemConfig};

fn main() {
    let obs = ObsSession::from_env_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node_cap = 5_000_000u64;
    let mut seeds = 20u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--node-cap" => {
                node_cap = it
                    .next()
                    .expect("--node-cap needs a count")
                    .parse()
                    .expect("--node-cap needs a number");
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .expect("--seeds needs a count")
                    .parse()
                    .expect("--seeds needs a number");
            }
            _ => {} // observability flags already handled by ObsSession
        }
    }
    let cfg = RandomSystemConfig {
        processes: 2,
        blocks_per_process: 1,
        layers: 3,
        ops_per_layer: (1, 2),
        edge_prob: 0.5,
        slack: 2.0,
        type_weights: [2, 1, 2],
    };
    let mut t = TextTable::new();
    t.row(["seed", "ops", "heuristic", "optimum", "nodes", "gap"]);
    t.sep();
    let (mut total_h, mut total_e, mut solved) = (0u64, 0u64, 0u32);
    for seed in 0..seeds {
        let (sys, _) = random_system(&cfg, seed).expect("feasible");
        let spec = SharingSpec::all_global(&sys, 2);
        if !tcms_core::period::spacing_feasible(&sys, &spec) {
            continue;
        }
        let Some(exact) = exact_schedule(&sys, &spec, node_cap).expect("valid spec") else {
            continue;
        };
        if !exact.complete {
            continue;
        }
        let heuristic = ModuloScheduler::new(&sys, spec)
            .expect("valid")
            .run_recorded(obs.recorder())
            .expect("random specs that pass eq. 3 are feasible");
        let h = heuristic.report().total_area();
        total_h += h;
        total_e += exact.area;
        solved += 1;
        t.row([
            seed.to_string(),
            sys.num_ops().to_string(),
            h.to_string(),
            exact.area.to_string(),
            exact.nodes.to_string(),
            format!("{:.2}", h as f64 / exact.area as f64),
        ]);
    }
    println!("Heuristic vs. proven optimum on tiny 2-process systems (ρ = 2):\n");
    print!("{}", t.render());
    println!(
        "\naggregate: heuristic {total_h} vs optimum {total_e} over {solved} systems — ratio {:.3}",
        total_h as f64 / total_e as f64
    );
    obs.finish();
}
