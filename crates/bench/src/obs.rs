//! Observability plumbing shared by the `repro_*` binaries.
//!
//! Every reproduction binary accepts the same flags as
//! `tcms schedule`:
//!
//! * `--trace <file.json>` — Chrome `trace_event` output
//!   (Perfetto / about:tracing),
//! * `--timeline <file.jsonl>` — the JSONL span/event/timeline stream,
//! * `--metrics` — print the metrics-registry summary table,
//! * `--threads <N>` — worker threads for candidate-force evaluation
//!   (0 = auto; results are bit-identical at every thread count).
//!
//! A binary constructs one [`ObsSession`] from its arguments, threads
//! [`ObsSession::recorder`] through the `*_recorded` runners and calls
//! [`ObsSession::finish`] before exiting. Without any of the flags the
//! recorder is the no-op recorder and nothing is collected.

use tcms_obs::{NoopRecorder, Recorder, TraceRecorder};

/// Per-invocation observability state of a `repro_*` binary.
#[derive(Debug, Default)]
pub struct ObsSession {
    recorder: Option<TraceRecorder>,
    trace: Option<String>,
    timeline: Option<String>,
    metrics: bool,
}

impl ObsSession {
    /// Parses `--trace`, `--timeline`, `--metrics` and `--threads` from
    /// the process arguments. Unknown flags are left for the binary's own
    /// parsing. `--threads` applies the global worker-thread override
    /// immediately (see `tcms_fds::threads`).
    ///
    /// # Panics
    ///
    /// Panics when `--trace`/`--timeline` is passed without a path or
    /// `--threads` without a valid count.
    pub fn from_env_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// [`ObsSession::from_env_args`] on an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics when `--trace`/`--timeline` is passed without a path or
    /// `--threads` without a valid count.
    pub fn from_args(args: &[String]) -> Self {
        let mut s = ObsSession::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => s.trace = Some(it.next().expect("--trace needs a path").clone()),
                "--timeline" => {
                    s.timeline = Some(it.next().expect("--timeline needs a path").clone());
                }
                "--metrics" => s.metrics = true,
                "--threads" => {
                    let n: usize = it
                        .next()
                        .expect("--threads needs a count")
                        .parse()
                        .expect("--threads needs a numeric count");
                    tcms_fds::threads::set(n);
                }
                _ => {}
            }
        }
        if s.trace.is_some() || s.timeline.is_some() || s.metrics {
            s.recorder = Some(TraceRecorder::new());
        }
        s
    }

    /// The recorder to thread through `*_recorded` runners: a live
    /// [`TraceRecorder`] when any flag was given, the no-op otherwise.
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.recorder {
            Some(r) => r,
            None => &NoopRecorder,
        }
    }

    /// Whether any observability output was requested.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Writes the requested sink files and prints the metrics summary.
    ///
    /// # Panics
    ///
    /// Panics when an output file cannot be written.
    pub fn finish(self) {
        let Some(recorder) = self.recorder else {
            return;
        };
        let data = recorder.finish();
        if let Some(path) = &self.trace {
            std::fs::write(path, tcms_obs::sink::to_chrome_trace(&data))
                .unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            println!("chrome trace written to {path}");
        }
        if let Some(path) = &self.timeline {
            std::fs::write(path, tcms_obs::sink::to_jsonl(&data))
                .unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            println!("timeline written to {path}");
        }
        if self.metrics {
            println!("\n{}", data.metrics.render_summary());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_flags_is_noop() {
        let s = ObsSession::from_args(&args(&["--stats", "other"]));
        assert!(!s.enabled());
        assert!(!s.recorder().enabled());
        s.finish(); // writes nothing
    }

    #[test]
    fn flags_arm_the_recorder() {
        let s = ObsSession::from_args(&args(&["--metrics"]));
        assert!(s.enabled());
        assert!(s.recorder().enabled());
        let s = ObsSession::from_args(&args(&["--trace", "t.json", "--stats"]));
        assert!(s.enabled());
        assert_eq!(s.trace.as_deref(), Some("t.json"));
        let s = ObsSession::from_args(&args(&["--timeline", "t.jsonl"]));
        assert_eq!(s.timeline.as_deref(), Some("t.jsonl"));
    }

    #[test]
    fn finish_writes_requested_files() {
        let dir = std::env::temp_dir().join("tcms_bench_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json").to_string_lossy().into_owned();
        let timeline = dir.join("t.jsonl").to_string_lossy().into_owned();
        let s = ObsSession::from_args(&args(&["--trace", &trace, "--timeline", &timeline]));
        {
            let rec = s.recorder();
            let _span = tcms_obs::span!(rec, "test.span", n = 1u64);
            rec.counter_add("test.counter", 2);
        }
        s.finish();
        let chrome = std::fs::read_to_string(&trace).unwrap();
        assert!(tcms_obs::sink::validate_chrome_trace(&chrome).unwrap() > 0);
        let jsonl = std::fs::read_to_string(&timeline).unwrap();
        assert!(tcms_obs::sink::validate_jsonl(&jsonl).unwrap() > 0);
    }
}
