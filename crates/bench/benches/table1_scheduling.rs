//! Criterion bench for the Table-1 runs: wall-clock scheduling time of the
//! coupled modulo-global run vs. the traditional per-block local run
//! (the paper reports 171 iterations in seconds-range runtimes on a
//! Pentium 133; shapes, not absolute numbers, are the target).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::paper_system;

fn bench_table1(c: &mut Criterion) {
    let (system, _) = paper_system().expect("paper system builds");
    let mut group = c.benchmark_group("table1_scheduling");
    group.sample_size(10);
    group.bench_function("global_modulo", |b| {
        b.iter(|| {
            let spec = SharingSpec::all_global(&system, 5);
            let out = ModuloScheduler::new(&system, spec)
                .expect("valid")
                .run()
                .unwrap();
            black_box(out.report().total_area())
        })
    });
    group.bench_function("pure_local", |b| {
        b.iter(|| {
            let spec = SharingSpec::all_local(&system);
            let out = ModuloScheduler::new(&system, spec)
                .expect("valid")
                .run()
                .unwrap();
            black_box(out.report().total_area())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
