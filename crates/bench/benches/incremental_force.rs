//! Cached vs naive force evaluation (the incremental-evaluation core).
//!
//! Two levels are compared on 5-process systems:
//!
//! * `force_eval` — one candidate force through the incrementally
//!   maintained `ModuloField` (`force`) vs against a field rebuilt from
//!   scratch (`force_naive`). This isolates the cost the per-candidate
//!   cache avoids paying on every engine iteration.
//! * `scheduler` — a full coupled `ModuloScheduler` run with the engine's
//!   candidate-force cache (`run`) vs the cache-free reference loop
//!   (`run_naive`). Outcomes are bit-identical (enforced by tests); only
//!   the time differs.
//!
//! Numbers are recorded in EXPERIMENTS.md ("Incremental evaluation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcms_core::{ModuloEvaluator, ModuloScheduler, SharingSpec};
use tcms_fds::{FdsConfig, ForceEvaluator};
use tcms_ir::generators::{add_diffeq_process, add_ewf_process, paper_library};
use tcms_ir::{FrameTable, System, SystemBuilder, TimeFrame};

/// `n` elliptical wave filter processes, staggered time ranges.
fn ewf_system(n: usize) -> System {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    for i in 0..n {
        let range = 20 + 2 * i as u32;
        add_ewf_process(&mut b, &format!("P{i}"), range, types).expect("ewf process");
    }
    b.build().expect("valid system")
}

/// `n` differential equation solver processes, staggered time ranges.
fn diffeq_system(n: usize) -> System {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    for i in 0..n {
        let range = 12 + i as u32;
        add_diffeq_process(&mut b, &format!("P{i}"), range, types).expect("diffeq process");
    }
    b.build().expect("valid system")
}

/// A representative candidate: the first op of the first block pinned to
/// its ASAP time (the `f_lo` extreme the engine evaluates per iteration).
fn candidate(system: &System, frames: &FrameTable) -> Vec<(tcms_ir::OpId, TimeFrame)> {
    let block = system.block_ids().next().expect("has blocks");
    let op = system.block(block).ops()[0];
    let fr = frames.get(op);
    vec![(op, TimeFrame::new(fr.asap, fr.asap))]
}

fn bench_force_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_eval");
    for (name, system) in [("ewf5", ewf_system(5)), ("diffeq5", diffeq_system(5))] {
        let spec = SharingSpec::all_global(&system, 5);
        let frames = FrameTable::initial(&system);
        let eval = ModuloEvaluator::new(&system, spec, FdsConfig::default(), &frames);
        let changed = candidate(&system, &frames);
        group.bench_with_input(
            BenchmarkId::new("incremental", name),
            &changed,
            |b, changed| b.iter(|| black_box(eval.force(&frames, changed))),
        );
        group.bench_with_input(BenchmarkId::new("naive", name), &changed, |b, changed| {
            b.iter(|| black_box(eval.force_naive(&frames, changed)))
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for (name, system) in [("ewf5", ewf_system(5)), ("diffeq5", diffeq_system(5))] {
        group.bench_with_input(BenchmarkId::new("cached", name), &system, |b, sys| {
            b.iter(|| {
                let spec = SharingSpec::all_global(sys, 5);
                black_box(
                    ModuloScheduler::new(sys, spec)
                        .expect("valid")
                        .run()
                        .expect("feasible")
                        .iterations,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &system, |b, sys| {
            b.iter(|| {
                let spec = SharingSpec::all_global(sys, 5);
                black_box(
                    ModuloScheduler::new(sys, spec)
                        .expect("valid")
                        .run_naive()
                        .expect("feasible")
                        .iterations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_force_eval, bench_scheduler);
criterion_main!(benches);
