//! Criterion bench: coupled scheduling cost vs. process count, plus the
//! thread-scaling study of the parallel force sweeps and the split exact
//! search (1/2/4/8 workers, results bit-identical by construction — see
//! EXPERIMENTS.md for the recorded numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcms_core::exact::exact_schedule;
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{random_system, RandomSystemConfig};

/// Thread counts of the scaling study. On boxes with fewer cores the
/// higher counts oversubscribe; the bench still runs (and still must
/// produce identical schedules) — the wall-clock column just flattens.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for processes in [2usize, 4, 8] {
        let cfg = RandomSystemConfig {
            processes,
            ..RandomSystemConfig::default()
        };
        let (system, _) = random_system(&cfg, 42).expect("feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(processes),
            &processes,
            |b, _| {
                b.iter(|| {
                    let spec = SharingSpec::all_global(&system, 4);
                    let out = ModuloScheduler::new(&system, spec)
                        .expect("valid")
                        .run()
                        .unwrap();
                    black_box(out.iterations)
                })
            },
        );
    }
    group.finish();
}

/// Coupled run of an 8-process system at each worker-thread count.
fn bench_coupled_threads(c: &mut Criterion) {
    let cfg = RandomSystemConfig {
        processes: 8,
        ..RandomSystemConfig::default()
    };
    let (system, _) = random_system(&cfg, 42).expect("feasible");
    let mut group = c.benchmark_group("coupled_threads");
    group.sample_size(10);
    let reference = {
        rayon::set_num_threads(1);
        let out = ModuloScheduler::new(&system, SharingSpec::all_global(&system, 4))
            .expect("valid")
            .run()
            .unwrap();
        out.schedule
    };
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            rayon::set_num_threads(n);
            b.iter(|| {
                let spec = SharingSpec::all_global(&system, 4);
                let out = ModuloScheduler::new(&system, spec)
                    .expect("valid")
                    .run()
                    .unwrap();
                assert_eq!(out.schedule, reference, "threads={n} must be bit-identical");
                black_box(out.iterations)
            })
        });
    }
    group.finish();
    rayon::set_num_threads(0);
}

/// Exact branch-and-bound at each worker-thread count (the root frame is
/// split across workers sharing the incumbent; the incremental bound
/// dominates the per-node cost either way).
fn bench_exact_threads(c: &mut Criterion) {
    let cfg = RandomSystemConfig {
        processes: 2,
        blocks_per_process: 1,
        layers: 4,
        ops_per_layer: (2, 3),
        edge_prob: 0.5,
        slack: 2.0,
        type_weights: [2, 1, 2],
    };
    let (system, _) = random_system(&cfg, 1).expect("feasible");
    let spec = SharingSpec::all_global(&system, 2);
    let mut group = c.benchmark_group("exact_threads");
    group.sample_size(10);
    let reference = {
        rayon::set_num_threads(1);
        let out = exact_schedule(&system, &spec, 50_000_000)
            .expect("valid spec")
            .expect("feasible");
        // The bit-identity guarantee only covers *complete* searches — a
        // tripped node limit truncates at a timing-dependent frontier.
        assert!(out.complete, "bench case must fit the node limit");
        out
    };
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            rayon::set_num_threads(n);
            b.iter(|| {
                let out = exact_schedule(&system, &spec, 50_000_000)
                    .expect("valid spec")
                    .expect("feasible");
                assert_eq!(out, reference, "threads={n} must find the same optimum");
                black_box(out.nodes)
            })
        });
    }
    group.finish();
    rayon::set_num_threads(0);
}

criterion_group!(
    benches,
    bench_scaling,
    bench_coupled_threads,
    bench_exact_threads
);
criterion_main!(benches);
