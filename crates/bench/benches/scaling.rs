//! Criterion bench: coupled scheduling cost vs. process count on seeded
//! random systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{random_system, RandomSystemConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for processes in [2usize, 4, 8] {
        let cfg = RandomSystemConfig {
            processes,
            ..RandomSystemConfig::default()
        };
        let (system, _) = random_system(&cfg, 42).expect("feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(processes),
            &processes,
            |b, _| {
                b.iter(|| {
                    let spec = SharingSpec::all_global(&system, 4);
                    let out = ModuloScheduler::new(&system, spec)
                        .expect("valid")
                        .run()
                        .unwrap();
                    black_box(out.iterations)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
