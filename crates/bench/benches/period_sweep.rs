//! Criterion bench over the access period (§3.2 trade-off): scheduling
//! cost as the period grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::paper_system;

fn bench_periods(c: &mut Criterion) {
    let (system, _) = paper_system().expect("paper system builds");
    let mut group = c.benchmark_group("period_sweep");
    group.sample_size(10);
    for period in [2u32, 5, 10, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| {
                let spec = SharingSpec::all_global(&system, p);
                let out = ModuloScheduler::new(&system, spec)
                    .expect("valid")
                    .run()
                    .unwrap();
                black_box(out.report().total_area())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_periods);
criterion_main!(benches);
