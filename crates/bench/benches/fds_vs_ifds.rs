//! Criterion bench comparing the original force-directed scheduling
//! against the improved (gradual-reduction) variant on the elliptical
//! wave filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcms_fds::fds::schedule_block_fds;
use tcms_fds::{schedule_block_ifds, FdsConfig};
use tcms_ir::generators::{add_ewf_process, paper_library};
use tcms_ir::SystemBuilder;

fn ewf(time: u32) -> (tcms_ir::System, tcms_ir::BlockId) {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    let (_, blk) = add_ewf_process(&mut b, "P", time, types).expect("builds");
    (b.build().expect("valid"), blk)
}

fn bench_fds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fds_vs_ifds");
    group.sample_size(10);
    for time in [17u32, 20, 25] {
        let (sys, blk) = ewf(time);
        group.bench_with_input(BenchmarkId::new("original_fds", time), &time, |b, _| {
            b.iter(|| black_box(schedule_block_fds(&sys, blk, &FdsConfig::default()).iterations))
        });
        group.bench_with_input(BenchmarkId::new("ifds", time), &time, |b, _| {
            b.iter(|| {
                black_box(
                    schedule_block_ifds(&sys, blk, &FdsConfig::default())
                        .expect("feasible")
                        .iterations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fds);
criterion_main!(benches);
