//! Observability overhead: the no-op recorder vs. a live `TraceRecorder`
//! collecting the full span/event/metrics/timeline stream.
//!
//! Three variants of a complete coupled `ModuloScheduler` run on the
//! 5-process EWF and diffeq systems:
//!
//! * `plain` — `run()` (the public API, no recorder parameter at all),
//! * `noop` — `run_recorded(&NoopRecorder)` (the disabled-recording path:
//!   one virtual `enabled()` check per phase/iteration),
//! * `recording` — `run_recorded(&TraceRecorder)` with everything on,
//!   including the JSONL + Chrome-trace rendering of the collected data.
//!
//! `plain` vs `noop` bounds the cost of the observability seams
//! themselves; `noop` vs `recording` is the price of actually tracing.
//! Numbers are recorded in EXPERIMENTS.md ("Recording overhead").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tcms_core::{ModuloScheduler, SharingSpec};
use tcms_ir::generators::{add_diffeq_process, add_ewf_process, paper_library};
use tcms_ir::{System, SystemBuilder};
use tcms_obs::{sink, NoopRecorder, TraceRecorder};

/// `n` elliptical wave filter processes, staggered time ranges.
fn ewf_system(n: usize) -> System {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    for i in 0..n {
        let range = 20 + 2 * i as u32;
        add_ewf_process(&mut b, &format!("P{i}"), range, types).expect("ewf process");
    }
    b.build().expect("valid system")
}

/// `n` differential equation solver processes, staggered time ranges.
fn diffeq_system(n: usize) -> System {
    let (lib, types) = paper_library();
    let mut b = SystemBuilder::new(lib);
    for i in 0..n {
        let range = 12 + i as u32;
        add_diffeq_process(&mut b, &format!("P{i}"), range, types).expect("diffeq process");
    }
    b.build().expect("valid system")
}

fn bench_recording_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("recording");
    group.sample_size(10);
    for (name, system) in [("ewf5", ewf_system(5)), ("diffeq5", diffeq_system(5))] {
        group.bench_with_input(BenchmarkId::new("plain", name), &system, |b, sys| {
            b.iter(|| {
                let spec = SharingSpec::all_global(sys, 5);
                black_box(
                    ModuloScheduler::new(sys, spec)
                        .expect("valid")
                        .run()
                        .expect("feasible")
                        .iterations,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("noop", name), &system, |b, sys| {
            b.iter(|| {
                let spec = SharingSpec::all_global(sys, 5);
                black_box(
                    ModuloScheduler::new(sys, spec)
                        .expect("valid")
                        .run_recorded(&NoopRecorder)
                        .expect("feasible")
                        .iterations,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("recording", name), &system, |b, sys| {
            b.iter(|| {
                let spec = SharingSpec::all_global(sys, 5);
                let rec = TraceRecorder::new();
                let out = ModuloScheduler::new(sys, spec)
                    .expect("valid")
                    .run_recorded(&rec)
                    .expect("feasible");
                let data = rec.finish();
                black_box((
                    out.iterations,
                    sink::to_jsonl(&data).len(),
                    sink::to_chrome_trace(&data).len(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recording_overhead);
criterion_main!(benches);
