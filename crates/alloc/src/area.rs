//! Extended area model: functional units, registers and multiplexers.
//!
//! Answers the question the paper leaves open: does multiplexer and
//! register overhead eat the area saved by global sharing?

use tcms_core::{compute_report, SharingSpec};
use tcms_fds::Schedule;
use tcms_ir::System;

use crate::binding::Binding;
use crate::mux::estimate_muxes;
use crate::regalloc::allocate_registers;

/// Relative area of one register (word-wide), in adder units.
pub const REGISTER_AREA: f64 = 0.4;

/// Full area accounting of a bound schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FullAreaReport {
    /// Functional-unit area (the paper's metric).
    pub fu_area: u64,
    /// Number of registers over all processes.
    pub registers: u32,
    /// Register area (`registers * REGISTER_AREA`).
    pub register_area: f64,
    /// 2:1-equivalent multiplexer count.
    pub mux2_count: u32,
    /// Multiplexer area.
    pub mux_area: f64,
}

impl FullAreaReport {
    /// Total area: functional units + registers + multiplexers.
    pub fn total(&self) -> f64 {
        self.fu_area as f64 + self.register_area + self.mux_area
    }
}

/// Computes the extended area report for a bound schedule.
pub fn full_area_report(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    binding: &Binding,
) -> FullAreaReport {
    let fu_area = compute_report(system, spec, schedule).total_area();
    let registers = allocate_registers(system, schedule);
    let muxes = estimate_muxes(system, spec, schedule, binding, &registers);
    FullAreaReport {
        fu_area,
        registers: registers.total_registers(),
        register_area: f64::from(registers.total_registers()) * REGISTER_AREA,
        mux2_count: muxes.mux2_count,
        mux_area: muxes.mux_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind_system;
    use tcms_core::ModuloScheduler;
    use tcms_ir::generators::paper_system;

    fn report(spec: &SharingSpec) -> FullAreaReport {
        let (sys, _) = paper_system().unwrap();
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, spec, &out.schedule).unwrap();
        full_area_report(&sys, spec, &out.schedule, &binding)
    }

    #[test]
    fn totals_compose() {
        let (sys, _) = paper_system().unwrap();
        let r = report(&SharingSpec::all_global(&sys, 5));
        assert!((r.total() - (r.fu_area as f64 + r.register_area + r.mux_area)).abs() < 1e-12);
        assert!(r.registers > 0);
    }

    #[test]
    fn global_total_beats_local_total() {
        // The extended answer to the paper's open question on its own
        // example: sharing wins even with interconnect priced in.
        let (sys, _) = paper_system().unwrap();
        let g = report(&SharingSpec::all_global(&sys, 5));
        let l = report(&SharingSpec::all_local(&sys));
        assert!(g.fu_area < l.fu_area);
        assert!(g.total() < l.total(), "global {g:?} vs local {l:?}");
    }
}
