//! Value lifetimes of operation results.
//!
//! A value is born when its producer finishes (`start + delay`) and dies
//! when its last consumer starts. Values without consumers are block
//! outputs and stay live until the block's makespan.

use tcms_fds::Schedule;
use tcms_ir::{BlockId, OpId, System};

/// Live range of one operation's result, in block-local time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// Producing operation.
    pub op: OpId,
    /// First step the value exists (producer finish time).
    pub birth: u32,
    /// Last step the value is needed (exclusive end of the live range).
    pub death: u32,
}

impl Lifetime {
    /// `true` if this value's live range overlaps `other`'s.
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.birth < other.death && other.birth < self.death
    }

    /// Length of the live range in steps.
    pub fn len(&self) -> u32 {
        self.death - self.birth
    }

    /// `true` for zero-length ranges (value consumed the moment it is
    /// produced).
    pub fn is_empty(&self) -> bool {
        self.death == self.birth
    }
}

/// Computes the lifetimes of all values produced inside `block`.
///
/// # Panics
///
/// Panics if an operation of the block is unscheduled.
pub fn value_lifetimes(system: &System, block: BlockId, schedule: &Schedule) -> Vec<Lifetime> {
    let makespan = schedule.block_makespan(system, block);
    system
        .block(block)
        .ops()
        .iter()
        .map(|&o| {
            let birth = schedule.expect_start(o) + system.delay(o);
            let death = system
                .succs(o)
                .iter()
                .map(|&s| schedule.expect_start(s))
                .max()
                .map_or(makespan, |last_use| last_use.max(birth));
            Lifetime {
                op: o,
                birth,
                death,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    fn chain() -> (System, BlockId, Vec<OpId>) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 6).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        let z = b.add_op(blk, "z", add).unwrap();
        b.add_dep(x, y).unwrap();
        b.add_dep(x, z).unwrap();
        (b.build().unwrap(), blk, vec![x, y, z])
    }

    #[test]
    fn lifetimes_span_to_last_use() {
        let (sys, blk, ops) = chain();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        s.set(ops[1], 1);
        s.set(ops[2], 4);
        let lts = value_lifetimes(&sys, blk, &s);
        let lt = |o: OpId| *lts.iter().find(|l| l.op == o).unwrap();
        // x is born at 1, last used by z at 4.
        assert_eq!(
            lt(ops[0]),
            Lifetime {
                op: ops[0],
                birth: 1,
                death: 4
            }
        );
        // y and z are outputs: live until the makespan (5).
        assert_eq!(lt(ops[1]).death, 5);
        assert_eq!(lt(ops[2]).death, 5);
        assert_eq!(lt(ops[0]).len(), 3);
    }

    #[test]
    fn overlap_relation() {
        let a = Lifetime {
            op: OpId::from_index(0),
            birth: 1,
            death: 4,
        };
        let b = Lifetime {
            op: OpId::from_index(1),
            birth: 3,
            death: 6,
        };
        let c = Lifetime {
            op: OpId::from_index(2),
            birth: 4,
            death: 5,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn consumer_at_birth_time_gives_empty_range() {
        let (sys, blk, ops) = chain();
        let mut s = Schedule::new(sys.num_ops());
        s.set(ops[0], 0);
        s.set(ops[1], 1); // consumes x exactly when it is born
        s.set(ops[2], 1);
        let lts = value_lifetimes(&sys, blk, &s);
        let x = lts.iter().find(|l| l.op == ops[0]).unwrap();
        assert!(x.is_empty());
        assert!(!x.overlaps(x));
    }
}
