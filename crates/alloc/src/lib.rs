#![warn(missing_docs)]
//! Post-scheduling allocation: binding, registers, interconnect, datapath.
//!
//! The paper stops at resource counts and explicitly leaves multiplexers
//! and wiring unconsidered ("Whether or not the area saving ... is
//! compensated by additional multiplexors and wires is not considered").
//! This crate closes that gap:
//!
//! * [`binding`] — assigns every operation to a concrete functional-unit
//!   instance, honouring the periodic authorization semantics of globally
//!   shared types,
//! * [`lifetime`] — value lifetimes of operation results,
//! * [`regalloc`] — left-edge register allocation per block,
//! * [`mux`] — multiplexer/interconnect cost estimation per instance port,
//! * [`datapath`] — a structural netlist (FUs, registers, multiplexers),
//! * [`fsm`] — a per-block controller with one control word per step,
//! * [`rtl`] — structural VHDL emission of the full system,
//! * [`area`] — the extended area model combining all of the above.
//!
//! # Example
//!
//! ```
//! use tcms_alloc::{bind_system, full_area_report};
//! use tcms_core::{ModuloScheduler, SharingSpec};
//! use tcms_ir::generators::paper_system;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (sys, _) = paper_system()?;
//! let spec = SharingSpec::all_global(&sys, 5);
//! let out = ModuloScheduler::new(&sys, spec.clone())?.run()?;
//! let binding = bind_system(&sys, &spec, &out.schedule)?;
//! let report = full_area_report(&sys, &spec, &out.schedule, &binding);
//! assert!(report.fu_area > 0);
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod binding;
pub mod datapath;
pub mod fsm;
pub mod lifetime;
pub mod mux;
pub mod regalloc;
pub mod rtl;

pub use area::{full_area_report, FullAreaReport};
pub use binding::{bind_system, bind_system_recorded, Binding, BindingError};
pub use datapath::{build_datapath, Component, Datapath};
pub use fsm::{build_controller, ControlWord, Controller};
pub use lifetime::{value_lifetimes, Lifetime};
pub use mux::{estimate_muxes, MuxEstimate};
pub use regalloc::{allocate_registers, allocate_registers_recorded, RegisterAllocation};
pub use rtl::{emit_vhdl, RtlError, RtlOptions};
