//! Multiplexer and interconnect estimation.
//!
//! The paper leaves open whether the area saved by sharing functional
//! units is eaten by the multiplexers and wires the sharing requires. This
//! estimator answers that: for every functional-unit instance it counts
//! the distinct sources (registers) arriving at each input port and for
//! every register the distinct functional units writing it, then prices
//! each n-input multiplexer as `(n - 1) · MUX2_AREA`.

use std::collections::{HashMap, HashSet};

use tcms_core::SharingSpec;
use tcms_fds::Schedule;
use tcms_ir::{ProcessId, ResourceTypeId, System};

use crate::binding::Binding;
use crate::regalloc::RegisterAllocation;

/// Area of one 2-to-1 multiplexer slice, in the same (relative) unit the
/// paper uses for an adder (area 1). A word-wide 2:1 mux is a sizeable
/// fraction of a word-wide adder; 0.3 is a common rule of thumb for
/// ripple-carry relative costs.
pub const MUX2_AREA: f64 = 0.3;

/// Identifier of one functional-unit instance.
///
/// Shared pools have `process == None`; local pools name their owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuInstance {
    /// The instance's resource type.
    pub rtype: ResourceTypeId,
    /// Owning process for local pools, `None` for the shared pool.
    pub process: Option<ProcessId>,
    /// Index within the pool.
    pub index: u32,
}

/// Interconnect estimate of a bound schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxEstimate {
    /// Per instance: distinct register sources per input port.
    pub fu_port_sources: HashMap<FuInstance, Vec<usize>>,
    /// Per `(process, register)`: distinct functional units writing it.
    pub register_sources: HashMap<(ProcessId, u32), usize>,
    /// Total 2:1-equivalent multiplexer count.
    pub mux2_count: u32,
    /// Total multiplexer area (`mux2_count * MUX2_AREA`).
    pub mux_area: f64,
}

/// The pool an operation's instance belongs to.
fn instance_of(
    system: &System,
    spec: &SharingSpec,
    binding: &Binding,
    op: tcms_ir::OpId,
) -> FuInstance {
    let o = system.op(op);
    let p = system.block(o.block()).process();
    let shared = spec.is_global_for(o.resource_type(), p);
    FuInstance {
        rtype: o.resource_type(),
        process: if shared { None } else { Some(p) },
        index: binding.instance(op),
    }
}

/// Estimates multiplexer needs of a bound and register-allocated schedule.
///
/// Operations are modelled as two-input, one-output (the dominant case for
/// the paper's operator set); an operation with `n` predecessors
/// contributes its sources spread over `min(n, 2)` ports.
pub fn estimate_muxes(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    binding: &Binding,
    registers: &RegisterAllocation,
) -> MuxEstimate {
    let _ = schedule; // sources are structural; the schedule fixed the binding
                      // port -> set of (process, register) sources
    let mut port_sets: HashMap<FuInstance, [HashSet<(ProcessId, u32)>; 2]> = HashMap::new();
    let mut reg_writer_sets: HashMap<(ProcessId, u32), HashSet<FuInstance>> = HashMap::new();
    for (o, op) in system.ops() {
        let inst = instance_of(system, spec, binding, o);
        let process = system.block(op.block()).process();
        let ports = port_sets.entry(inst).or_default();
        for (i, &pred) in system.preds(o).iter().enumerate() {
            let src = (process, registers.register(pred));
            ports[i % 2].insert(src);
        }
        // The instance writes this op's result register.
        reg_writer_sets
            .entry((process, registers.register(o)))
            .or_default()
            .insert(inst);
    }
    let mut fu_port_sources = HashMap::new();
    let mut mux2 = 0u32;
    for (inst, ports) in port_sets {
        let sizes: Vec<usize> = ports.iter().map(HashSet::len).collect();
        for &n in &sizes {
            mux2 += (n as u32).saturating_sub(1);
        }
        fu_port_sources.insert(inst, sizes);
    }
    let mut register_sources = HashMap::new();
    for (key, writers) in reg_writer_sets {
        mux2 += (writers.len() as u32).saturating_sub(1);
        register_sources.insert(key, writers.len());
    }
    MuxEstimate {
        fu_port_sources,
        register_sources,
        mux2_count: mux2,
        mux_area: f64::from(mux2) * MUX2_AREA,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind_system;
    use crate::regalloc::allocate_registers;
    use tcms_core::{ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;

    fn estimate(spec: &SharingSpec) -> (MuxEstimate, u64) {
        let (sys, _) = paper_system().unwrap();
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, spec, &out.schedule).unwrap();
        let regs = allocate_registers(&sys, &out.schedule);
        let est = estimate_muxes(&sys, spec, &out.schedule, &binding, &regs);
        let fu_area = out.report().total_area();
        (est, fu_area)
    }

    #[test]
    fn both_scopes_need_interconnect() {
        // Whether sharing or dedicating needs more multiplexers depends on
        // the schedule shape, so only the structural invariants are
        // asserted; the area question is answered by
        // `sharing_still_wins_after_mux_costs`.
        let (sys, _) = paper_system().unwrap();
        let (global, _) = estimate(&SharingSpec::all_global(&sys, 5));
        let (local, _) = estimate(&SharingSpec::all_local(&sys));
        assert!(global.mux2_count > 0);
        assert!(local.mux2_count > 0);
        // The shared pools concentrate sources: some shared port must see
        // at least two distinct registers.
        assert!(global
            .fu_port_sources
            .iter()
            .any(|(inst, sizes)| inst.process.is_none() && sizes.iter().any(|&n| n >= 2)));
    }

    #[test]
    fn sharing_still_wins_after_mux_costs() {
        // The answer to the paper's open question for its own example: the
        // 14-vs-28 FU area gap is far larger than the mux delta.
        let (sys, _) = paper_system().unwrap();
        let (g_mux, g_area) = estimate(&SharingSpec::all_global(&sys, 5));
        let (l_mux, l_area) = estimate(&SharingSpec::all_local(&sys));
        let g_total = g_area as f64 + g_mux.mux_area;
        let l_total = l_area as f64 + l_mux.mux_area;
        assert!(
            g_total < l_total,
            "global {g_total} must stay below local {l_total}"
        );
    }

    #[test]
    fn mux_count_matches_port_sets() {
        let (sys, _) = paper_system().unwrap();
        let (est, _) = estimate(&SharingSpec::all_global(&sys, 5));
        let from_ports: u32 = est
            .fu_port_sources
            .values()
            .flat_map(|sizes| sizes.iter().map(|&n| (n as u32).saturating_sub(1)))
            .sum();
        let from_regs: u32 = est
            .register_sources
            .values()
            .map(|&n| (n as u32).saturating_sub(1))
            .sum();
        assert_eq!(est.mux2_count, from_ports + from_regs);
        assert!((est.mux_area - f64::from(est.mux2_count) * MUX2_AREA).abs() < 1e-12);
    }

    #[test]
    fn ports_never_exceed_two() {
        let (sys, _) = paper_system().unwrap();
        let (est, _) = estimate(&SharingSpec::all_global(&sys, 5));
        for sizes in est.fu_port_sources.values() {
            assert!(sizes.len() <= 2);
        }
    }
}
