//! Structural datapath generation.
//!
//! Builds a netlist of functional units, registers and multiplexers from a
//! bound, register-allocated schedule, and renders it as text. The netlist
//! is deliberately simple — its purpose is to make the binding inspectable
//! and to anchor the interconnect estimate in an actual structure.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tcms_core::SharingSpec;
use tcms_fds::Schedule;
use tcms_ir::{ProcessId, System};

use crate::binding::Binding;
use crate::mux::{estimate_muxes, FuInstance, MuxEstimate};
use crate::regalloc::RegisterAllocation;

/// One structural component of the datapath.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// A functional-unit instance.
    FunctionalUnit {
        /// The instance identity (type, owning pool, index).
        instance: FuInstance,
    },
    /// One register of a process's register file.
    Register {
        /// Owning process.
        process: ProcessId,
        /// Register index within the file.
        index: u32,
    },
    /// An n-to-1 multiplexer in front of a functional-unit port or a
    /// register input.
    Multiplexer {
        /// Human-readable location (e.g. `"mul[0].port1"`).
        at: String,
        /// Number of selectable inputs.
        inputs: usize,
    },
}

/// A generated datapath netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Datapath {
    /// All components, deterministically ordered.
    pub components: Vec<Component>,
    /// The interconnect estimate the multiplexers were derived from.
    pub muxes: MuxEstimate,
}

impl Datapath {
    /// Number of functional-unit instances.
    pub fn num_fus(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::FunctionalUnit { .. }))
            .count()
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::Register { .. }))
            .count()
    }

    /// Number of multiplexers (n-to-1 with n >= 2).
    pub fn num_muxes(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::Multiplexer { .. }))
            .count()
    }

    /// Renders the netlist as indented text.
    pub fn render(&self, system: &System) -> String {
        let mut out = String::from("datapath {\n");
        for c in &self.components {
            match c {
                Component::FunctionalUnit { instance } => {
                    let pool = match instance.process {
                        None => "shared".to_owned(),
                        Some(p) => system.process(p).name().to_owned(),
                    };
                    let _ = writeln!(
                        out,
                        "  fu {}[{}] pool={}",
                        system.library().get(instance.rtype).name(),
                        instance.index,
                        pool
                    );
                }
                Component::Register { process, index } => {
                    let _ = writeln!(out, "  reg {}.r{}", system.process(*process).name(), index);
                }
                Component::Multiplexer { at, inputs } => {
                    let _ = writeln!(out, "  mux {at} inputs={inputs}");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the datapath for a bound, register-allocated schedule.
pub fn build_datapath(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    binding: &Binding,
    registers: &RegisterAllocation,
) -> Datapath {
    let muxes = estimate_muxes(system, spec, schedule, binding, registers);
    let mut components = Vec::new();
    // Functional units: derive the set from the mux estimate's keys plus
    // instances without inputs.
    let mut fus: BTreeMap<FuInstance, ()> = BTreeMap::new();
    for inst in muxes.fu_port_sources.keys() {
        fus.insert(*inst, ());
    }
    for inst in fus.keys() {
        components.push(Component::FunctionalUnit { instance: *inst });
    }
    for p in system.process_ids() {
        for r in 0..registers.process_registers(p) {
            components.push(Component::Register {
                process: p,
                index: r,
            });
        }
    }
    let mut mux_components = Vec::new();
    for (inst, sizes) in &muxes.fu_port_sources {
        for (port, &n) in sizes.iter().enumerate() {
            if n >= 2 {
                mux_components.push(Component::Multiplexer {
                    at: format!(
                        "{}[{}].port{}",
                        system.library().get(inst.rtype).name(),
                        inst.index,
                        port
                    ),
                    inputs: n,
                });
            }
        }
    }
    for ((p, r), &n) in &muxes.register_sources {
        if n >= 2 {
            mux_components.push(Component::Multiplexer {
                at: format!("{}.r{}", system.process(*p).name(), r),
                inputs: n,
            });
        }
    }
    mux_components.sort();
    components.extend(mux_components);
    Datapath { components, muxes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind_system;
    use crate::regalloc::allocate_registers;
    use tcms_core::{ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;

    fn datapath() -> (tcms_ir::System, Datapath) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, &spec, &out.schedule).unwrap();
        let regs = allocate_registers(&sys, &out.schedule);
        let dp = build_datapath(&sys, &spec, &out.schedule, &binding, &regs);
        (sys, dp)
    }

    #[test]
    fn datapath_has_all_component_kinds() {
        let (_, dp) = datapath();
        assert!(dp.num_fus() > 0);
        assert!(dp.num_registers() > 0);
        assert!(dp.num_muxes() > 0, "shared units need multiplexers");
    }

    #[test]
    fn fu_count_matches_binding_totals() {
        let (sys, dp) = datapath();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, &spec, &out.schedule).unwrap();
        let expected: u32 = sys
            .library()
            .ids()
            .map(|k| binding.total_instances(k))
            .sum();
        assert_eq!(dp.num_fus() as u32, expected);
    }

    #[test]
    fn render_is_parseable_text() {
        let (sys, dp) = datapath();
        let text = dp.render(&sys);
        assert!(text.starts_with("datapath {"));
        assert!(text.contains("fu mul[0] pool=shared"));
        assert!(text.contains("reg P1.r0"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn deterministic_component_order() {
        let (_, a) = datapath();
        let (_, b) = datapath();
        assert_eq!(a.components, b.components);
    }
}
