//! Functional-unit binding.
//!
//! Every operation is assigned a concrete instance of its resource type.
//! Two operations conflict — must use different instances — when they can
//! be active on the unit at the same absolute time:
//!
//! * same block: their occupancy intervals overlap,
//! * different blocks of one process: never (condition C2),
//! * blocks of different processes sharing the type globally: their
//!   occupied period slots intersect — with grid-aligned but otherwise
//!   arbitrary start offsets, intersecting slot sets *can* collide, so
//!   they must be assumed to.
//!
//! Local pools are per process: instances of different processes are
//! distinct units, so binding runs per process there. Greedy
//! smallest-free-index colouring in (process, block, start) order achieves
//! the pool bound whenever occupancies do not straddle period slots
//! (always true for unit-delay and pipelined units, i.e. the whole paper
//! library); for straddling multi-cycle units the binding may need extra
//! instances, which is reported honestly via [`Binding::instances_used`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use tcms_core::SharingSpec;
use tcms_fds::Schedule;
use tcms_ir::{OpId, ProcessId, ResourceTypeId, System};
use tcms_obs::{span, NoopRecorder, Recorder};

/// Binding failure (currently only incomplete schedules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingError {
    /// An operation had no start time.
    Unscheduled {
        /// The unscheduled operation's name.
        op: String,
    },
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::Unscheduled { op } => {
                write!(f, "operation `{op}` is unscheduled")
            }
        }
    }
}

impl Error for BindingError {}

/// A complete operation-to-instance assignment.
///
/// Instances are numbered per *pool*: globally shared types number their
/// shared pool `0..n`, local types number each process's pool separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    instance: Vec<u32>,
    used: Vec<HashMap<Option<ProcessId>, u32>>,
}

impl Binding {
    /// The instance executing `op` (within its pool).
    pub fn instance(&self, op: OpId) -> u32 {
        self.instance[op.index()]
    }

    /// Instances used by the shared pool of `rtype` (0 for local types).
    pub fn instances_used(&self, rtype: ResourceTypeId) -> u32 {
        self.used[rtype.index()].get(&None).copied().unwrap_or(0)
    }

    /// Instances used by the local pool of `(process, rtype)`.
    pub fn local_instances_used(&self, process: ProcessId, rtype: ResourceTypeId) -> u32 {
        self.used[rtype.index()]
            .get(&Some(process))
            .copied()
            .unwrap_or(0)
    }

    /// Total instances over all pools of `rtype`.
    pub fn total_instances(&self, rtype: ResourceTypeId) -> u32 {
        self.used[rtype.index()].values().sum()
    }
}

/// Occupied period slots of an op (for global conflict tests).
fn slot_set(start: u32, occ: u32, period: u32) -> Vec<u32> {
    let mut slots: Vec<u32> = (start..start + occ).map(|t| t % period).collect();
    slots.sort_unstable();
    slots.dedup();
    slots
}

/// Binds every operation of the system to an instance.
///
/// # Errors
///
/// Returns [`BindingError::Unscheduled`] if the schedule is incomplete.
pub fn bind_system(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
) -> Result<Binding, BindingError> {
    bind_system_recorded(system, spec, schedule, &NoopRecorder)
}

/// [`bind_system`] with observability: an `"alloc.bind"` span plus one
/// `"alloc.pool"` event per resource type with the shared/total instance
/// counts of the produced binding. The binding itself is unchanged.
///
/// # Errors
///
/// Same as [`bind_system`].
pub fn bind_system_recorded(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    rec: &dyn Recorder,
) -> Result<Binding, BindingError> {
    let _bind = span!(rec, "alloc.bind", ops = system.num_ops());
    let binding = bind_impl(system, spec, schedule)?;
    if rec.enabled() {
        for k in system.library().ids() {
            rec.event(
                "alloc.pool",
                &[
                    ("type", system.library().get(k).name().into()),
                    ("shared", binding.instances_used(k).into()),
                    ("total", binding.total_instances(k).into()),
                ],
            );
        }
        rec.counter_add("alloc.bound_ops", system.num_ops() as u64);
    }
    Ok(binding)
}

fn bind_impl(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
) -> Result<Binding, BindingError> {
    let mut instance = vec![0u32; system.num_ops()];
    let mut used: Vec<HashMap<Option<ProcessId>, u32>> =
        vec![HashMap::new(); system.library().len()];

    for k in system.library().ids() {
        // Partition the users into the shared pool and local pools.
        let group: Vec<ProcessId> = spec.group(k).map(<[_]>::to_vec).unwrap_or_default();
        let users = system.users_of_type(k);
        // --- shared pool ---
        if group.len() >= 2 {
            let period = spec.period(k).expect("global types have periods");
            // Collect all ops of the group with (process, block, start).
            let mut ops: Vec<(ProcessId, usize, u32, OpId)> = Vec::new();
            for &p in &group {
                for &b in system.process(p).blocks() {
                    for o in system.ops_of_type(b, k) {
                        let start = schedule.start(o).ok_or_else(|| BindingError::Unscheduled {
                            op: system.op(o).name().to_owned(),
                        })?;
                        ops.push((p, b.index(), start, o));
                    }
                }
            }
            ops.sort_unstable_by_key(|&(p, b, s, o)| (p, b, s, o));
            // Greedy colouring.
            let mut colors: Vec<(OpId, u32)> = Vec::new();
            let mut max_color = 0u32;
            for &(p, b, s, o) in &ops {
                let occ = system.occupancy(o);
                let my_slots = slot_set(s, occ, period);
                let mut taken: Vec<u32> = Vec::new();
                for &(q, qc) in &colors {
                    let (qp, qb, qs) = {
                        let qop = system.op(q);
                        (
                            system.block(qop.block()).process(),
                            qop.block().index(),
                            schedule.start(q).expect("colored ops are scheduled"),
                        )
                    };
                    let conflict = if qp == p {
                        // Same process: only same-block time overlap counts.
                        qb == b && intervals_overlap(s, occ, qs, system.occupancy(q))
                    } else {
                        // Different processes: period-slot intersection.
                        let q_slots = slot_set(qs, system.occupancy(q), period);
                        my_slots.iter().any(|sl| q_slots.contains(sl))
                    };
                    if conflict {
                        taken.push(qc);
                    }
                }
                let mut c = 0u32;
                while taken.contains(&c) {
                    c += 1;
                }
                instance[o.index()] = c;
                colors.push((o, c));
                max_color = max_color.max(c + 1);
            }
            if !ops.is_empty() {
                used[k.index()].insert(None, max_color);
            }
        }
        // --- local pools ---
        for p in users {
            if group.contains(&p) {
                continue;
            }
            // Instances are reused across blocks of the process (blocks
            // never overlap), so colour each block independently with the
            // left-edge scheme and share the index space.
            let mut pool_size = 0u32;
            for &b in system.process(p).blocks() {
                let mut ops = system.ops_of_type(b, k);
                ops.sort_unstable_by_key(|&o| (schedule.start(o), o));
                // free[i] = time the instance i becomes free.
                let mut free: Vec<u32> = Vec::new();
                for o in ops {
                    let start = schedule.start(o).ok_or_else(|| BindingError::Unscheduled {
                        op: system.op(o).name().to_owned(),
                    })?;
                    let end = start + system.occupancy(o);
                    let slot = free.iter().position(|&f| f <= start);
                    match slot {
                        Some(i) => {
                            free[i] = end;
                            instance[o.index()] = i as u32;
                        }
                        None => {
                            instance[o.index()] = free.len() as u32;
                            free.push(end);
                        }
                    }
                }
                pool_size = pool_size.max(free.len() as u32);
            }
            if pool_size > 0 {
                used[k.index()].insert(Some(p), pool_size);
            }
        }
    }
    Ok(Binding { instance, used })
}

fn intervals_overlap(s1: u32, d1: u32, s2: u32, d2: u32) -> bool {
    s1 < s2 + d2 && s2 < s1 + d1
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_core::{compute_report, ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;

    fn global_setup() -> (
        tcms_ir::System,
        tcms_ir::generators::PaperTypes,
        SharingSpec,
        Schedule,
    ) {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let schedule = out.schedule.clone();
        (sys, t, spec, schedule)
    }

    #[test]
    fn binding_respects_conflicts() {
        let (sys, _, spec, schedule) = global_setup();
        let binding = bind_system(&sys, &spec, &schedule).unwrap();
        // Same block, overlapping occupancy, same type -> distinct units.
        for (bid, block) in sys.blocks() {
            let _ = bid;
            for (i, &a) in block.ops().iter().enumerate() {
                for &b in &block.ops()[i + 1..] {
                    if sys.op(a).resource_type() != sys.op(b).resource_type() {
                        continue;
                    }
                    let (sa, sb) = (schedule.expect_start(a), schedule.expect_start(b));
                    if intervals_overlap(sa, sys.occupancy(a), sb, sys.occupancy(b)) {
                        assert_ne!(
                            binding.instance(a),
                            binding.instance(b),
                            "{} and {} overlap on one unit",
                            sys.op(a).name(),
                            sys.op(b).name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cross_process_slot_conflicts_separated() {
        let (sys, t, spec, schedule) = global_setup();
        let binding = bind_system(&sys, &spec, &schedule).unwrap();
        let period = 5;
        let mut all: Vec<(ProcessId, OpId)> = Vec::new();
        for (pid, proc) in sys.processes() {
            for &b in proc.blocks() {
                for o in sys.ops_of_type(b, t.mul) {
                    all.push((pid, o));
                }
            }
        }
        for (i, &(pa, a)) in all.iter().enumerate() {
            for &(pb, b) in &all[i + 1..] {
                if pa == pb {
                    continue;
                }
                let sa = slot_set(schedule.expect_start(a), sys.occupancy(a), period);
                let sb = slot_set(schedule.expect_start(b), sys.occupancy(b), period);
                if sa.iter().any(|s| sb.contains(s)) {
                    assert_ne!(binding.instance(a), binding.instance(b));
                }
            }
        }
    }

    #[test]
    fn shared_binding_matches_pool_counts() {
        // For unit/pipelined occupancies the greedy colouring must achieve
        // exactly the authorization pool of the report.
        let (sys, _, spec, schedule) = global_setup();
        let binding = bind_system(&sys, &spec, &schedule).unwrap();
        let report = compute_report(&sys, &spec, &schedule);
        for k in spec.global_types(&sys) {
            assert_eq!(binding.instances_used(k), report.instances(k), "type {k}");
        }
    }

    #[test]
    fn local_binding_matches_local_counts() {
        let (sys, _, _, _) = global_setup();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, &spec, &out.schedule).unwrap();
        let report = compute_report(&sys, &spec, &out.schedule);
        for k in sys.library().ids() {
            assert_eq!(binding.total_instances(k), report.instances(k));
            assert_eq!(binding.instances_used(k), 0, "no shared pool");
        }
    }

    #[test]
    fn unscheduled_op_rejected() {
        let (sys, _, spec, _) = global_setup();
        let empty = Schedule::new(sys.num_ops());
        assert!(matches!(
            bind_system(&sys, &spec, &empty),
            Err(BindingError::Unscheduled { .. })
        ));
    }

    #[test]
    fn slot_set_wraps() {
        assert_eq!(slot_set(4, 3, 5), vec![0, 1, 4]);
        assert_eq!(slot_set(0, 1, 5), vec![0]);
        assert_eq!(slot_set(7, 2, 5), vec![2, 3]);
    }

    #[test]
    fn interval_overlap_cases() {
        assert!(intervals_overlap(0, 2, 1, 2));
        assert!(!intervals_overlap(0, 2, 2, 2));
        assert!(intervals_overlap(3, 1, 3, 1));
        assert!(!intervals_overlap(0, 1, 1, 1));
    }
}
