//! Structural VHDL emission.
//!
//! Renders a bound, register-allocated schedule as one synthesizable-style
//! VHDL entity:
//!
//! * one signal per allocated register (`pX_rY`),
//! * one behavioral functional unit per bound instance (pipelined units
//!   get `delay-1` pipeline registers),
//! * combinational operand selection implementing the multiplexers of the
//!   estimate in [`crate::mux`] (one condition per issuing operation),
//! * one FSM per process that **waits for its grid slot** — a free-running
//!   slot counter over the lcm of all global periods gates the block
//!   start, which is exactly the paper's static access control: once every
//!   process starts on its grid, the shared units can never collide, so no
//!   arbiter is emitted.
//!
//! Limitations (documented, checked): one block per process; multi-cycle
//! *non-pipelined* units are emitted as combinational with a comment.
//! Operator inference is by type name (`mul` → `*`, `sub` → `-`,
//! otherwise `+`). The IR does not record operand *order* — predecessor
//! lists are insertion-ordered and primary inputs are not edges — so for
//! non-commutative operations with a mix of register and primary-input
//! operands the emitted port assignment (`a op b` with registers first)
//! may not match the source expression's operand order. Timing, sharing
//! and the authorization structure are exact; the dataflow is a faithful
//! skeleton to be refined by an operand-aware IR extension.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use tcms_core::SharingSpec;
use tcms_fds::Schedule;
use tcms_ir::{OpId, ProcessId, System};

use crate::binding::Binding;
use crate::mux::FuInstance;
use crate::regalloc::RegisterAllocation;

/// Options of the VHDL emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlOptions {
    /// Data-path width in bits.
    pub width: u32,
    /// Entity name.
    pub entity: String,
}

impl Default for RtlOptions {
    fn default() -> Self {
        RtlOptions {
            width: 16,
            entity: "tcms_top".to_owned(),
        }
    }
}

/// Emission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// The emitter supports one block per process.
    MultiBlockProcess {
        /// Offending process name.
        process: String,
    },
    /// An operation was unscheduled.
    Unscheduled {
        /// Offending operation name.
        op: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::MultiBlockProcess { process } => {
                write!(f, "process `{process}` has more than one block")
            }
            RtlError::Unscheduled { op } => write!(f, "operation `{op}` is unscheduled"),
        }
    }
}

impl Error for RtlError {}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn instance_signal(system: &System, inst: &FuInstance) -> String {
    let pool = match inst.process {
        None => "shared".to_owned(),
        Some(p) => sanitize(system.process(p).name()),
    };
    format!(
        "{}_{}_{}",
        sanitize(system.library().get(inst.rtype).name()),
        pool,
        inst.index
    )
}

fn op_instance(system: &System, spec: &SharingSpec, binding: &Binding, op: OpId) -> FuInstance {
    let o = system.op(op);
    let p = system.block(o.block()).process();
    FuInstance {
        rtype: o.resource_type(),
        process: if spec.is_global_for(o.resource_type(), p) {
            None
        } else {
            Some(p)
        },
        index: binding.instance(op),
    }
}

fn operator_for(system: &System, inst: &FuInstance) -> &'static str {
    let name = system.library().get(inst.rtype).name();
    if name.contains("mul") {
        "*"
    } else if name.contains("sub") {
        "-"
    } else {
        "+"
    }
}

fn operand_expr(
    system: &System,
    registers: &RegisterAllocation,
    process: ProcessId,
    op: OpId,
    port: usize,
) -> String {
    let preds = system.preds(op);
    match preds.get(port) {
        Some(&pred) => format!(
            "{}_r{}",
            sanitize(system.process(process).name()),
            registers.register(pred)
        ),
        None => format!("{}_data_in", sanitize(system.process(process).name())),
    }
}

/// Emits the whole system as one VHDL entity.
///
/// # Errors
///
/// Returns [`RtlError::MultiBlockProcess`] for processes with more than
/// one block and [`RtlError::Unscheduled`] for incomplete schedules.
pub fn emit_vhdl(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    binding: &Binding,
    registers: &RegisterAllocation,
    opts: &RtlOptions,
) -> Result<String, RtlError> {
    for (_, proc) in system.processes() {
        if proc.blocks().len() != 1 {
            return Err(RtlError::MultiBlockProcess {
                process: proc.name().to_owned(),
            });
        }
    }
    for (o, op) in system.ops() {
        if schedule.start(o).is_none() {
            return Err(RtlError::Unscheduled {
                op: op.name().to_owned(),
            });
        }
    }

    // Collect FU instances and the ops bound to each.
    let mut instances: Vec<(FuInstance, Vec<OpId>)> = Vec::new();
    for (o, _) in system.ops() {
        let inst = op_instance(system, spec, binding, o);
        match instances.iter_mut().find(|(i, _)| *i == inst) {
            Some((_, ops)) => ops.push(o),
            None => instances.push((inst, vec![o])),
        }
    }
    instances.sort_by_key(|(a, _)| *a);

    // Global slot counter modulus: lcm of every process grid spacing.
    let slot_modulus = system
        .process_ids()
        .map(|p| spec.grid_spacing(system, p))
        .fold(1u32, tcms_core::modulo::lcm);

    let w = opts.width;
    let mut v = String::new();
    let _ = writeln!(v, "-- generated by tcms-alloc::rtl — do not edit");
    let _ = writeln!(v, "library ieee;");
    let _ = writeln!(v, "use ieee.std_logic_1164.all;");
    let _ = writeln!(v, "use ieee.numeric_std.all;");
    let _ = writeln!(v);
    let _ = writeln!(v, "entity {} is", opts.entity);
    let _ = writeln!(v, "  port (");
    let _ = writeln!(v, "    clk : in std_logic;");
    let _ = writeln!(v, "    rst : in std_logic;");
    for (i, (_, proc)) in system.processes().enumerate() {
        let p = sanitize(proc.name());
        let last = i + 1 == system.num_processes();
        let _ = writeln!(v, "    {p}_start : in std_logic;");
        let _ = writeln!(v, "    {p}_data_in : in unsigned({} downto 0);", w - 1);
        let _ = writeln!(
            v,
            "    {p}_busy : out std_logic{}",
            if last { ");" } else { ";" }
        );
    }
    let _ = writeln!(v, "end entity {};", opts.entity);
    let _ = writeln!(v);
    let _ = writeln!(v, "architecture rtl of {} is", opts.entity);

    // Register signals.
    for (pid, proc) in system.processes() {
        let p = sanitize(proc.name());
        for r in 0..registers.process_registers(pid) {
            let _ = writeln!(
                v,
                "  signal {p}_r{r} : unsigned({} downto 0) := (others => '0');",
                w - 1
            );
        }
    }
    // FU signals.
    for (inst, _) in &instances {
        let s = instance_signal(system, inst);
        let _ = writeln!(v, "  signal {s}_a, {s}_b : unsigned({} downto 0);", w - 1);
        let _ = writeln!(v, "  signal {s}_q : unsigned({} downto 0);", w - 1);
        let rt = system.library().get(inst.rtype);
        if rt.is_pipelined() && rt.delay() > 1 {
            for stage in 1..rt.delay() {
                let _ = writeln!(v, "  signal {s}_p{stage} : unsigned({} downto 0);", w - 1);
            }
        }
    }
    // Control signals.
    let _ = writeln!(
        v,
        "  signal slot_cnt : integer range 0 to {} := 0;",
        slot_modulus.saturating_sub(1)
    );
    for (pid, proc) in system.processes() {
        let p = sanitize(proc.name());
        let block = proc.blocks()[0];
        let makespan = schedule.block_makespan(system, block).max(1);
        let _ = writeln!(v, "  signal {p}_active, {p}_pending : std_logic := '0';");
        let _ = writeln!(
            v,
            "  signal {p}_step : integer range 0 to {};",
            makespan - 1
        );
        let _ = pid;
    }
    let _ = writeln!(v, "begin");

    // Functional units.
    for (inst, _) in &instances {
        let s = instance_signal(system, inst);
        let rt = system.library().get(inst.rtype);
        let op = operator_for(system, inst);
        let expr = format!("resize({s}_a {op} {s}_b, {w})");
        if rt.is_pipelined() && rt.delay() > 1 {
            let _ = writeln!(v, "  -- {}: pipelined, delay {}", rt.name(), rt.delay());
            let _ = writeln!(v, "  {s}_pipe : process(clk)");
            let _ = writeln!(v, "  begin");
            let _ = writeln!(v, "    if rising_edge(clk) then");
            let _ = writeln!(v, "      {s}_p1 <= {expr};");
            for stage in 2..rt.delay() {
                let _ = writeln!(v, "      {s}_p{stage} <= {s}_p{};", stage - 1);
            }
            let _ = writeln!(v, "    end if;");
            let _ = writeln!(v, "  end process;");
            let _ = writeln!(v, "  {s}_q <= {s}_p{};", rt.delay() - 1);
        } else {
            if rt.delay() > 1 {
                let _ = writeln!(
                    v,
                    "  -- {}: multi-cycle non-pipelined, modelled combinational",
                    rt.name()
                );
            }
            let _ = writeln!(v, "  {s}_q <= {expr};");
        }
    }
    let _ = writeln!(v);

    // Operand multiplexers: one conditional assignment per instance port.
    for (inst, ops) in &instances {
        let s = instance_signal(system, inst);
        for (port, suffix) in [(0usize, "a"), (1usize, "b")] {
            let mut arms = Vec::new();
            for &o in ops {
                let process = system.block(system.op(o).block()).process();
                let p = sanitize(system.process(process).name());
                let start = schedule.start(o).expect("checked above");
                let src = operand_expr(system, registers, process, o, port);
                arms.push(format!(
                    "{src} when ({p}_active = '1' and {p}_step = {start}) else"
                ));
            }
            let _ = writeln!(v, "  {s}_{suffix} <=");
            for arm in arms {
                let _ = writeln!(v, "    {arm}");
            }
            let _ = writeln!(v, "    (others => '0');");
        }
    }
    let _ = writeln!(v);

    // Slot counter: the static time base of the access authorization.
    let _ = writeln!(
        v,
        "  -- free-running period-slot counter (lcm of all grids)"
    );
    let _ = writeln!(v, "  slots : process(clk)");
    let _ = writeln!(v, "  begin");
    let _ = writeln!(v, "    if rising_edge(clk) then");
    let _ = writeln!(v, "      if rst = '1' then");
    let _ = writeln!(v, "        slot_cnt <= 0;");
    let _ = writeln!(v, "      elsif slot_cnt = {} then", slot_modulus - 1);
    let _ = writeln!(v, "        slot_cnt <= 0;");
    let _ = writeln!(v, "      else");
    let _ = writeln!(v, "        slot_cnt <= slot_cnt + 1;");
    let _ = writeln!(v, "      end if;");
    let _ = writeln!(v, "    end if;");
    let _ = writeln!(v, "  end process;");
    let _ = writeln!(v);

    // Per-process controllers.
    for (pid, proc) in system.processes() {
        let p = sanitize(proc.name());
        let block = proc.blocks()[0];
        let makespan = schedule.block_makespan(system, block).max(1);
        let spacing = spec.grid_spacing(system, pid);
        // Register loads grouped by the step the result is captured.
        let mut loads: Vec<(u32, String)> = Vec::new();
        for &o in system.block(block).ops() {
            let start = schedule.start(o).expect("checked above");
            let capture = start + system.delay(o) - 1;
            let inst = op_instance(system, spec, binding, o);
            loads.push((
                capture,
                format!(
                    "{p}_r{} <= {}_q;",
                    registers.register(o),
                    instance_signal(system, &inst)
                ),
            ));
        }
        loads.sort();
        let _ = writeln!(
            v,
            "  -- controller of {} (grid spacing {spacing})",
            proc.name()
        );
        let _ = writeln!(v, "  ctrl_{p} : process(clk)");
        let _ = writeln!(v, "  begin");
        let _ = writeln!(v, "    if rising_edge(clk) then");
        let _ = writeln!(v, "      if rst = '1' then");
        let _ = writeln!(v, "        {p}_active <= '0';");
        let _ = writeln!(v, "        {p}_pending <= '0';");
        let _ = writeln!(v, "        {p}_step <= 0;");
        let _ = writeln!(v, "      else");
        let _ = writeln!(v, "        if {p}_start = '1' then");
        let _ = writeln!(v, "          {p}_pending <= '1';");
        let _ = writeln!(v, "        end if;");
        let _ = writeln!(
            v,
            "        if {p}_active = '0' and ({p}_pending = '1' or {p}_start = '1')"
        );
        let _ = writeln!(
            v,
            "            and (slot_cnt mod {spacing}) = {} then",
            spacing - 1
        );
        let _ = writeln!(v, "          -- start on the next grid point");
        let _ = writeln!(v, "          {p}_active <= '1';");
        let _ = writeln!(v, "          {p}_pending <= '0';");
        let _ = writeln!(v, "          {p}_step <= 0;");
        let _ = writeln!(v, "        elsif {p}_active = '1' then");
        let _ = writeln!(v, "          case {p}_step is");
        let mut i = 0usize;
        while i < loads.len() {
            let step = loads[i].0;
            let _ = writeln!(v, "            when {step} =>");
            while i < loads.len() && loads[i].0 == step {
                let _ = writeln!(v, "              {}", loads[i].1);
                i += 1;
            }
        }
        let _ = writeln!(v, "            when others => null;");
        let _ = writeln!(v, "          end case;");
        let _ = writeln!(v, "          if {p}_step = {} then", makespan - 1);
        let _ = writeln!(v, "            {p}_active <= '0';");
        let _ = writeln!(v, "          else");
        let _ = writeln!(v, "            {p}_step <= {p}_step + 1;");
        let _ = writeln!(v, "          end if;");
        let _ = writeln!(v, "        end if;");
        let _ = writeln!(v, "      end if;");
        let _ = writeln!(v, "    end if;");
        let _ = writeln!(v, "  end process;");
        let _ = writeln!(v, "  {p}_busy <= {p}_active or {p}_pending;");
        let _ = writeln!(v);
    }
    let _ = writeln!(v, "end architecture rtl;");
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind_system;
    use crate::regalloc::allocate_registers;
    use tcms_core::ModuloScheduler;
    use tcms_ir::generators::paper_system;

    fn emit() -> (tcms_ir::System, String) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, &spec, &out.schedule).unwrap();
        let regs = allocate_registers(&sys, &out.schedule);
        let vhdl = emit_vhdl(
            &sys,
            &spec,
            &out.schedule,
            &binding,
            &regs,
            &RtlOptions::default(),
        )
        .unwrap();
        (sys, vhdl)
    }

    #[test]
    fn entity_and_architecture_present() {
        let (_, vhdl) = emit();
        assert!(vhdl.contains("entity tcms_top is"));
        assert!(vhdl.contains("architecture rtl of tcms_top is"));
        assert!(vhdl.trim_end().ends_with("end architecture rtl;"));
    }

    #[test]
    fn one_controller_per_process_and_ports() {
        let (sys, vhdl) = emit();
        for (_, proc) in sys.processes() {
            let p = proc.name();
            assert!(vhdl.contains(&format!("ctrl_{p} : process(clk)")), "{p}");
            assert!(vhdl.contains(&format!("{p}_start : in std_logic;")));
            assert!(vhdl.contains(&format!("{p}_busy : out std_logic")));
        }
    }

    #[test]
    fn shared_units_exist_with_pipelines() {
        let (_, vhdl) = emit();
        // The shared multipliers are pipelined (delay 2 -> one stage reg).
        assert!(vhdl.contains("mul_shared_0_pipe : process(clk)"));
        assert!(vhdl.contains("mul_shared_0_q <= mul_shared_0_p1;"));
        // Adders are combinational.
        assert!(vhdl.contains("add_shared_0_q <= resize(add_shared_0_a + add_shared_0_b, 16);"));
    }

    #[test]
    fn grid_alignment_gate_emitted() {
        let (_, vhdl) = emit();
        // Every process has grid spacing 5 on the paper system.
        assert!(vhdl.contains("(slot_cnt mod 5) = 4"));
        assert!(vhdl.contains("signal slot_cnt : integer range 0 to 4"));
    }

    #[test]
    fn structure_is_balanced() {
        let (_, vhdl) = emit();
        let opens = vhdl.matches(" : process(clk)").count();
        let closes = vhdl.matches("end process;").count();
        assert_eq!(opens, closes);
        let cases = vhdl.matches("case ").count();
        let end_cases = vhdl.matches("end case;").count();
        assert_eq!(cases, end_cases);
    }

    #[test]
    fn every_register_is_declared_and_loaded() {
        let (sys, vhdl) = emit();
        let regs = {
            let spec = SharingSpec::all_global(&sys, 5);
            let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
            allocate_registers(&sys, &out.schedule)
        };
        for (pid, proc) in sys.processes() {
            for r in 0..regs.process_registers(pid) {
                let sig = format!("{}_r{r}", proc.name());
                assert!(vhdl.contains(&format!("signal {sig} :")), "{sig} declared");
                assert!(vhdl.contains(&format!("{sig} <= ")), "{sig} loaded");
            }
        }
    }

    #[test]
    fn multiblock_process_rejected() {
        use tcms_ir::generators::paper_library;
        use tcms_ir::SystemBuilder;
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("P");
        let b1 = b.add_block(p, "b1", 4).unwrap();
        b.add_op(b1, "x", types.add).unwrap();
        let b2 = b.add_block(p, "b2", 4).unwrap();
        b.add_op(b2, "y", types.add).unwrap();
        let p2 = b.add_process("Q");
        let b3 = b.add_block(p2, "b", 4).unwrap();
        b.add_op(b3, "z", types.add).unwrap();
        let sys = b.build().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let binding = bind_system(&sys, &spec, &out.schedule).unwrap();
        let regs = allocate_registers(&sys, &out.schedule);
        let err = emit_vhdl(
            &sys,
            &spec,
            &out.schedule,
            &binding,
            &regs,
            &RtlOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RtlError::MultiBlockProcess { .. }));
    }
}
