//! Controller generation: one control word per block and control step.
//!
//! Each control word lists the operations issued in that step with their
//! bound instance and destination register — enough to drive the datapath
//! of [`crate::datapath`] and to cross-check the schedule.

use std::fmt::Write as _;

use tcms_core::SharingSpec;
use tcms_fds::Schedule;
use tcms_ir::{BlockId, OpId, System};

use crate::binding::Binding;
use crate::regalloc::RegisterAllocation;

/// One issued operation inside a [`ControlWord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    /// The issued operation.
    pub op: OpId,
    /// Instance index within the op's pool.
    pub instance: u32,
    /// Destination register (in the owning process's file).
    pub dest_register: u32,
}

/// All operations issued at one control step of a block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlWord {
    /// Issues of this step, ordered by operation id.
    pub issues: Vec<Issue>,
}

/// The controller of one block: a linear sequence of control words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Controller {
    /// The controlled block.
    pub block: BlockId,
    /// One word per control step, `0..makespan`.
    pub words: Vec<ControlWord>,
}

impl Controller {
    /// Number of control steps (the block's makespan).
    pub fn steps(&self) -> usize {
        self.words.len()
    }

    /// Renders the controller as text.
    pub fn render(&self, system: &System) -> String {
        let mut out = format!(
            "controller {} ({} steps) {{\n",
            system.block(self.block).name(),
            self.steps()
        );
        for (t, w) in self.words.iter().enumerate() {
            if w.issues.is_empty() {
                continue;
            }
            let _ = write!(out, "  step {t}:");
            for issue in &w.issues {
                let op = system.op(issue.op);
                let _ = write!(
                    out,
                    " {}@{}[{}]->r{}",
                    op.name(),
                    system.library().get(op.resource_type()).name(),
                    issue.instance,
                    issue.dest_register
                );
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the controller of `block` from a bound schedule.
///
/// # Panics
///
/// Panics if an operation of the block is unscheduled.
pub fn build_controller(
    system: &System,
    block: BlockId,
    schedule: &Schedule,
    binding: &Binding,
    registers: &RegisterAllocation,
) -> Controller {
    let makespan = schedule.block_makespan(system, block) as usize;
    let mut words = vec![ControlWord::default(); makespan];
    let mut ops: Vec<OpId> = system.block(block).ops().to_vec();
    ops.sort_unstable();
    for o in ops {
        let t = schedule.expect_start(o) as usize;
        words[t].issues.push(Issue {
            op: o,
            instance: binding.instance(o),
            dest_register: registers.register(o),
        });
    }
    Controller { block, words }
}

/// Convenience: builds controllers for every block of the system.
pub fn build_controllers(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    binding: &Binding,
    registers: &RegisterAllocation,
) -> Vec<Controller> {
    let _ = spec;
    system
        .block_ids()
        .map(|b| build_controller(system, b, schedule, binding, registers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind_system;
    use crate::regalloc::allocate_registers;
    use tcms_core::{ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;

    fn setup() -> (
        tcms_ir::System,
        SharingSpec,
        tcms_fds::Schedule,
        Binding,
        RegisterAllocation,
    ) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let schedule = out.schedule.clone();
        let binding = bind_system(&sys, &spec, &schedule).unwrap();
        let regs = allocate_registers(&sys, &schedule);
        (sys, spec, schedule, binding, regs)
    }

    #[test]
    fn every_op_is_issued_exactly_once() {
        let (sys, spec, schedule, binding, regs) = setup();
        let controllers = build_controllers(&sys, &spec, &schedule, &binding, &regs);
        let mut seen = vec![false; sys.num_ops()];
        for c in &controllers {
            for w in &c.words {
                for issue in &w.issues {
                    assert!(!seen[issue.op.index()], "double issue");
                    seen[issue.op.index()] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn issues_happen_at_schedule_times() {
        let (sys, _, schedule, binding, regs) = setup();
        let block = sys.block_ids().next().unwrap();
        let c = build_controller(&sys, block, &schedule, &binding, &regs);
        for (t, w) in c.words.iter().enumerate() {
            for issue in &w.issues {
                assert_eq!(schedule.expect_start(issue.op), t as u32);
            }
        }
        assert_eq!(c.steps() as u32, schedule.block_makespan(&sys, block));
    }

    #[test]
    fn no_same_instance_double_issue_within_occupancy() {
        // Two issues on the same instance of the same type within one block
        // must respect the unit's occupancy.
        let (sys, spec, schedule, binding, regs) = setup();
        for c in build_controllers(&sys, &spec, &schedule, &binding, &regs) {
            for (t, w) in c.words.iter().enumerate() {
                for (i, a) in w.issues.iter().enumerate() {
                    for b in &w.issues[i + 1..] {
                        let (ka, kb) = (sys.op(a.op).resource_type(), sys.op(b.op).resource_type());
                        if ka == kb {
                            assert!(
                                a.instance != b.instance,
                                "step {t}: two ops on one instance"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn render_contains_issues() {
        let (sys, _, schedule, binding, regs) = setup();
        let block = sys.block_ids().next().unwrap();
        let text = build_controller(&sys, block, &schedule, &binding, &regs).render(&sys);
        assert!(text.contains("controller body"));
        assert!(text.contains("step 0:"));
    }
}
