//! Left-edge register allocation.
//!
//! Values whose live ranges overlap need distinct registers; the classical
//! left-edge algorithm (sort by birth, reuse the first register that is
//! already dead) is optimal for interval graphs.
//!
//! Registers are allocated per process — blocks of one process never
//! overlap (condition C2), so their registers are reused, while different
//! processes run concurrently and keep separate register files.

use tcms_fds::Schedule;
use tcms_ir::{BlockId, OpId, ProcessId, System};
use tcms_obs::{span, NoopRecorder, Recorder};

use crate::lifetime::value_lifetimes;

/// Register assignment for every value of a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAllocation {
    reg: Vec<u32>,
    per_process: Vec<u32>,
}

impl RegisterAllocation {
    /// The register holding `op`'s result (numbered within the owning
    /// process's register file).
    pub fn register(&self, op: OpId) -> u32 {
        self.reg[op.index()]
    }

    /// Registers needed by `process`.
    pub fn process_registers(&self, process: ProcessId) -> u32 {
        self.per_process[process.index()]
    }

    /// Total registers over all processes.
    pub fn total_registers(&self) -> u32 {
        self.per_process.iter().sum()
    }
}

/// Runs left-edge allocation over every block of the system.
///
/// # Panics
///
/// Panics if the schedule is incomplete.
pub fn allocate_registers(system: &System, schedule: &Schedule) -> RegisterAllocation {
    allocate_registers_recorded(system, schedule, &NoopRecorder)
}

/// [`allocate_registers`] with observability: an `"alloc.regalloc"` span,
/// one `"alloc.regfile"` event per process and the total register count
/// as a gauge. The allocation itself is unchanged.
///
/// # Panics
///
/// Same as [`allocate_registers`].
pub fn allocate_registers_recorded(
    system: &System,
    schedule: &Schedule,
    rec: &dyn Recorder,
) -> RegisterAllocation {
    let _regalloc = span!(rec, "alloc.regalloc", ops = system.num_ops());
    let mut reg = vec![0u32; system.num_ops()];
    let mut per_process = vec![0u32; system.num_processes()];
    for (pid, proc) in system.processes() {
        let mut file_size = 0u32;
        for &b in proc.blocks() {
            let used = allocate_block(system, b, schedule, &mut reg);
            file_size = file_size.max(used);
        }
        per_process[pid.index()] = file_size;
        if rec.enabled() {
            rec.event(
                "alloc.regfile",
                &[
                    ("process", proc.name().into()),
                    ("registers", file_size.into()),
                ],
            );
        }
    }
    let alloc = RegisterAllocation { reg, per_process };
    if rec.enabled() {
        rec.gauge_set("alloc.total_registers", f64::from(alloc.total_registers()));
    }
    alloc
}

fn allocate_block(system: &System, block: BlockId, schedule: &Schedule, reg: &mut [u32]) -> u32 {
    let mut lifetimes = value_lifetimes(system, block, schedule);
    lifetimes.sort_by_key(|l| (l.birth, l.death, l.op));
    // free_at[i] = death of the value currently in register i.
    let mut free_at: Vec<u32> = Vec::new();
    for lt in lifetimes {
        match free_at.iter().position(|&d| d <= lt.birth) {
            Some(i) => {
                free_at[i] = lt.death;
                reg[lt.op.index()] = i as u32;
            }
            None => {
                reg[lt.op.index()] = free_at.len() as u32;
                free_at.push(lt.death);
            }
        }
    }
    free_at.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_core::{ModuloScheduler, SharingSpec};
    use tcms_ir::generators::paper_system;
    use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};

    #[test]
    fn serial_chain_reuses_one_register_plus_output() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 8).unwrap();
        let mut prev = b.add_op(blk, "o0", add).unwrap();
        for i in 1..4 {
            let o = b.add_op(blk, format!("o{i}"), add).unwrap();
            b.add_dep(prev, o).unwrap();
            prev = o;
        }
        let sys = b.build().unwrap();
        let mut s = tcms_fds::Schedule::new(sys.num_ops());
        for (i, &o) in sys.block(blk).ops().iter().enumerate() {
            s.set(o, i as u32);
        }
        let alloc = allocate_registers(&sys, &s);
        // Each value dies exactly when the next is born -> ping-pong
        // between at most 2 registers (left-edge may even reach 1 when a
        // value dies the step the next one is born).
        assert!(alloc.process_registers(p) <= 2);
    }

    #[test]
    fn overlapping_values_get_distinct_registers() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 6).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        let z = b.add_op_with_preds(blk, "z", add, &[x, y]).unwrap();
        let sys = b.build().unwrap();
        let mut s = tcms_fds::Schedule::new(sys.num_ops());
        s.set(x, 0);
        s.set(y, 1);
        s.set(z, 3);
        let alloc = allocate_registers(&sys, &s);
        assert_ne!(alloc.register(x), alloc.register(y));
    }

    #[test]
    fn paper_system_register_files_are_per_process() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
        let alloc = allocate_registers(&sys, &out.schedule);
        let total: u32 = sys.process_ids().map(|p| alloc.process_registers(p)).sum();
        assert_eq!(alloc.total_registers(), total);
        for p in sys.process_ids() {
            assert!(alloc.process_registers(p) >= 1);
        }
    }

    #[test]
    fn register_indices_stay_below_file_size() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
        let alloc = allocate_registers(&sys, &out.schedule);
        for (o, op) in sys.ops() {
            let p = sys.block(op.block()).process();
            assert!(alloc.register(o) < alloc.process_registers(p));
        }
    }
}
