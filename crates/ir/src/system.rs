//! The system: arena of processes, blocks, operations and dependency edges.

use std::collections::{HashMap, HashSet};

use crate::block::{Block, BlockId};
use crate::error::IrError;
use crate::graph;
use crate::op::{OpId, Operation};
use crate::process::{Process, ProcessId};
use crate::resource::{ResourceLibrary, ResourceTypeId};

/// A complete multi-process system ready for scheduling.
///
/// Construct via [`SystemBuilder`]; a built system is structurally valid:
/// every block is a DAG whose critical path fits its time range (condition
/// (C1)), and no dependency crosses a block boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    library: ResourceLibrary,
    processes: Vec<Process>,
    blocks: Vec<Block>,
    ops: Vec<Operation>,
    succs: Vec<Vec<OpId>>,
    preds: Vec<Vec<OpId>>,
    /// Per-block topological orders, precomputed at build time (the
    /// system is immutable and schedulers request them on hot paths).
    topo: Vec<Vec<OpId>>,
}

impl System {
    /// The resource library of this system.
    pub fn library(&self) -> &ResourceLibrary {
        &self.library
    }

    /// Looks an operation up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Looks a block up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Looks a process up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Iterates over all operation ids in creation order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterates over all operations as `(id, op)` pairs.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, o)| (OpId(i as u32), o))
    }

    /// Iterates over all block ids in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterates over all blocks as `(id, block)` pairs.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates over all process ids in creation order.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.processes.len() as u32).map(ProcessId)
    }

    /// Iterates over all processes as `(id, process)` pairs.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i as u32), p))
    }

    /// Number of operations in the system.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of blocks in the system.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of processes in the system.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Direct successors (data-dependent operations) of `op`.
    pub fn succs(&self, op: OpId) -> &[OpId] {
        &self.succs[op.index()]
    }

    /// Direct predecessors of `op`.
    pub fn preds(&self, op: OpId) -> &[OpId] {
        &self.preds[op.index()]
    }

    /// Execution delay of `op` in control steps.
    pub fn delay(&self, op: OpId) -> u32 {
        self.library.get(self.ops[op.index()].rtype).delay()
    }

    /// Number of control steps `op` occupies its resource
    /// (see [`crate::ResourceType::occupancy`]).
    pub fn occupancy(&self, op: OpId) -> u32 {
        self.library.get(self.ops[op.index()].rtype).occupancy()
    }

    /// A topological order of the operations of `block`, precomputed at
    /// build time.
    pub fn topo_order(&self, block: BlockId) -> &[OpId] {
        &self.topo[block.index()]
    }

    /// Length of the longest dependency chain of `block` in control steps
    /// (the minimum feasible time range).
    pub fn critical_path(&self, block: BlockId) -> u32 {
        graph::longest_path(
            self.block(block).ops(),
            |o| self.succs(o),
            |o| self.delay(o),
        )
        .expect("built systems are acyclic")
    }

    fn compute_topo_orders(&mut self) -> Result<(), IrError> {
        let mut topo = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let order =
                graph::topo_order(&block.ops, |o| &self.succs[o.index()]).ok_or_else(|| {
                    IrError::Cycle {
                        block: block.name.clone(),
                    }
                })?;
            topo.push(order);
        }
        self.topo = topo;
        Ok(())
    }

    /// Resource types used anywhere in `process`.
    pub fn types_used_by_process(&self, process: ProcessId) -> Vec<ResourceTypeId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &b in self.process(process).blocks() {
            for &o in self.block(b).ops() {
                let t = self.op(o).rtype;
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out.sort();
        out
    }

    /// Resource types used inside `block`.
    pub fn types_used_by_block(&self, block: BlockId) -> Vec<ResourceTypeId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &o in self.block(block).ops() {
            let t = self.op(o).rtype;
            if seen.insert(t) {
                out.push(t);
            }
        }
        out.sort();
        out
    }

    /// Processes that use resource type `rtype` (the paper's set
    /// `uses(k)`).
    pub fn users_of_type(&self, rtype: ResourceTypeId) -> Vec<ProcessId> {
        self.process_ids()
            .filter(|&p| self.types_used_by_process(p).contains(&rtype))
            .collect()
    }

    /// Operations of `block` executing on `rtype`.
    pub fn ops_of_type(&self, block: BlockId, rtype: ResourceTypeId) -> Vec<OpId> {
        self.block(block)
            .ops()
            .iter()
            .copied()
            .filter(|&o| self.op(o).rtype == rtype)
            .collect()
    }

    /// Resolves an operation by `(block, name)`.
    pub fn op_by_name(&self, block: BlockId, name: &str) -> Option<OpId> {
        self.block(block)
            .ops()
            .iter()
            .copied()
            .find(|&o| self.op(o).name == name)
    }

    /// Resolves a block by `(process, name)`.
    pub fn block_by_name(&self, process: ProcessId, name: &str) -> Option<BlockId> {
        self.process(process)
            .blocks()
            .iter()
            .copied()
            .find(|&b| self.block(b).name == name)
    }

    /// Resolves a process by name.
    pub fn process_by_name(&self, name: &str) -> Option<ProcessId> {
        self.processes()
            .find(|(_, p)| p.name == name)
            .map(|(id, _)| id)
    }
}

/// Incremental constructor for a [`System`].
///
/// The builder checks local properties eagerly (cross-block edges, duplicate
/// edges, self-edges) and global ones — acyclicity and deadline feasibility —
/// in [`SystemBuilder::build`].
///
/// # Example
///
/// ```
/// use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};
///
/// # fn main() -> Result<(), tcms_ir::IrError> {
/// let mut lib = ResourceLibrary::new();
/// let add = lib.add(ResourceType::new("add", 1))?;
/// let mut b = SystemBuilder::new(lib);
/// let p = b.add_process("p0");
/// let blk = b.add_block(p, "body", 4)?;
/// let x = b.add_op(blk, "x", add)?;
/// let y = b.add_op(blk, "y", add)?;
/// b.add_dep(x, y)?;
/// let sys = b.build()?;
/// assert_eq!(sys.critical_path(blk), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    library: ResourceLibrary,
    processes: Vec<Process>,
    blocks: Vec<Block>,
    ops: Vec<Operation>,
    succs: Vec<Vec<OpId>>,
    preds: Vec<Vec<OpId>>,
    edge_set: HashSet<(OpId, OpId)>,
    op_names: HashMap<(BlockId, String), OpId>,
}

impl SystemBuilder {
    /// Starts building a system over the given resource library.
    pub fn new(library: ResourceLibrary) -> Self {
        SystemBuilder {
            library,
            processes: Vec::new(),
            blocks: Vec::new(),
            ops: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            edge_set: HashSet::new(),
            op_names: HashMap::new(),
        }
    }

    /// Read access to the library (e.g. to resolve type names while
    /// building).
    pub fn library(&self) -> &ResourceLibrary {
        &self.library
    }

    /// Adds a process.
    ///
    /// # Panics
    ///
    /// Panics if the process count would overflow the `u32` id space.
    pub fn add_process(&mut self, name: impl Into<String>) -> ProcessId {
        assert!(
            self.processes.len() < u32::MAX as usize,
            "process count overflows the id space"
        );
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(Process {
            name: name.into(),
            blocks: Vec::new(),
        });
        id
    }

    /// Adds a block with `time_range` control steps to `process`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroTimeRange`] if `time_range == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `process` was not created by this builder.
    pub fn add_block(
        &mut self,
        process: ProcessId,
        name: impl Into<String>,
        time_range: u32,
    ) -> Result<BlockId, IrError> {
        let name = name.into();
        if time_range == 0 {
            return Err(IrError::ZeroTimeRange { name });
        }
        assert!(
            self.blocks.len() < u32::MAX as usize,
            "block count overflows the id space"
        );
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name,
            process,
            time_range,
            ops: Vec::new(),
        });
        self.processes[process.index()].blocks.push(id);
        Ok(id)
    }

    /// Adds an operation of type `rtype` to `block`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateOpName`] if an operation of the same name
    /// already exists in the block (names double as identifiers in the text
    /// format).
    ///
    /// # Panics
    ///
    /// Panics if `block` or `rtype` was not created by this builder's
    /// library.
    pub fn add_op(
        &mut self,
        block: BlockId,
        name: impl Into<String>,
        rtype: ResourceTypeId,
    ) -> Result<OpId, IrError> {
        let name = name.into();
        assert!(rtype.index() < self.library.len(), "foreign resource type");
        if self.op_names.contains_key(&(block, name.clone())) {
            return Err(IrError::DuplicateOpName {
                op: name,
                block: self.blocks[block.index()].name.clone(),
            });
        }
        assert!(
            self.ops.len() < u32::MAX as usize,
            "operation count overflows the id space"
        );
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Operation {
            name: name.clone(),
            rtype,
            block,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.blocks[block.index()].ops.push(id);
        self.op_names.insert((block, name), id);
        Ok(id)
    }

    /// Adds a data dependency `from -> to` (the result of `from` is an input
    /// of `to`).
    ///
    /// # Errors
    ///
    /// * [`IrError::SelfEdge`] if `from == to`,
    /// * [`IrError::CrossBlockEdge`] if the operations live in different
    ///   blocks (condition (C1)),
    /// * [`IrError::DuplicateEdge`] if the edge already exists.
    pub fn add_dep(&mut self, from: OpId, to: OpId) -> Result<(), IrError> {
        if from == to {
            return Err(IrError::SelfEdge {
                op: self.ops[from.index()].name.clone(),
            });
        }
        if self.ops[from.index()].block != self.ops[to.index()].block {
            return Err(IrError::CrossBlockEdge {
                from: self.ops[from.index()].name.clone(),
                to: self.ops[to.index()].name.clone(),
            });
        }
        if !self.edge_set.insert((from, to)) {
            return Err(IrError::DuplicateEdge {
                from: self.ops[from.index()].name.clone(),
                to: self.ops[to.index()].name.clone(),
            });
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Convenience: adds an operation together with dependencies from all
    /// `preds`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`SystemBuilder::add_op`] and
    /// [`SystemBuilder::add_dep`].
    pub fn add_op_with_preds(
        &mut self,
        block: BlockId,
        name: impl Into<String>,
        rtype: ResourceTypeId,
        preds: &[OpId],
    ) -> Result<OpId, IrError> {
        let id = self.add_op(block, name, rtype)?;
        for &p in preds {
            self.add_dep(p, id)?;
        }
        Ok(id)
    }

    /// Resolves an operation under construction by `(block, name)`.
    pub fn op_in_block_by_name(&self, block: BlockId, name: &str) -> Option<OpId> {
        self.op_names.get(&(block, name.to_owned())).copied()
    }

    /// Finalises the system, checking acyclicity and deadline feasibility
    /// of every block.
    ///
    /// # Errors
    ///
    /// * [`IrError::Cycle`] if a block's dependency graph has a cycle,
    /// * [`IrError::InfeasibleDeadline`] if a block's critical path exceeds
    ///   its time range.
    pub fn build(self) -> Result<System, IrError> {
        let mut sys = System {
            library: self.library,
            processes: self.processes,
            blocks: self.blocks,
            ops: self.ops,
            succs: self.succs,
            preds: self.preds,
            topo: Vec::new(),
        };
        sys.compute_topo_orders()?;
        for (bid, block) in sys.blocks() {
            let cp = sys.critical_path(bid);
            if cp > block.time_range {
                return Err(IrError::InfeasibleDeadline {
                    block: block.name.clone(),
                    critical_path: cp,
                    time_range: block.time_range,
                });
            }
        }
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceType;

    fn lib() -> (ResourceLibrary, ResourceTypeId, ResourceTypeId) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib
            .add(ResourceType::new("mul", 2).pipelined().with_area(4))
            .unwrap();
        (lib, add, mul)
    }

    #[test]
    fn build_simple_system() {
        let (lib, add, mul) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let blk = b.add_block(p, "body", 5).unwrap();
        let a = b.add_op(blk, "a", add).unwrap();
        let m = b.add_op(blk, "m", mul).unwrap();
        b.add_dep(a, m).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.num_ops(), 2);
        assert_eq!(sys.succs(a), &[m]);
        assert_eq!(sys.preds(m), &[a]);
        assert_eq!(sys.critical_path(blk), 3);
        assert_eq!(sys.delay(m), 2);
        assert_eq!(sys.occupancy(m), 1);
        assert_eq!(sys.op(a).block(), blk);
        assert_eq!(sys.block(blk).process(), p);
    }

    #[test]
    fn cross_block_edge_rejected() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let b1 = b.add_block(p, "b1", 3).unwrap();
        let b2 = b.add_block(p, "b2", 3).unwrap();
        let x = b.add_op(b1, "x", add).unwrap();
        let y = b.add_op(b2, "y", add).unwrap();
        assert!(matches!(
            b.add_dep(x, y),
            Err(IrError::CrossBlockEdge { .. })
        ));
    }

    #[test]
    fn duplicate_and_self_edges_rejected() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let blk = b.add_block(p, "b", 3).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        b.add_dep(x, y).unwrap();
        assert!(matches!(
            b.add_dep(x, y),
            Err(IrError::DuplicateEdge { .. })
        ));
        assert!(matches!(b.add_dep(x, x), Err(IrError::SelfEdge { .. })));
    }

    #[test]
    fn cycle_detected_at_build() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let blk = b.add_block(p, "b", 9).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        b.add_dep(x, y).unwrap();
        b.add_dep(y, x).unwrap();
        assert!(matches!(b.build(), Err(IrError::Cycle { .. })));
    }

    #[test]
    fn infeasible_deadline_detected() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let blk = b.add_block(p, "b", 2).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        let z = b.add_op(blk, "z", add).unwrap();
        b.add_dep(x, y).unwrap();
        b.add_dep(y, z).unwrap();
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            IrError::InfeasibleDeadline {
                block: "b".into(),
                critical_path: 3,
                time_range: 2
            }
        );
    }

    #[test]
    fn zero_time_range_rejected() {
        let (lib, _, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        assert!(matches!(
            b.add_block(p, "b", 0),
            Err(IrError::ZeroTimeRange { .. })
        ));
    }

    #[test]
    fn duplicate_op_name_in_block_rejected() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let blk = b.add_block(p, "b", 3).unwrap();
        b.add_op(blk, "x", add).unwrap();
        assert!(b.add_op(blk, "x", add).is_err());
    }

    #[test]
    fn type_and_user_queries() {
        let (lib, add, mul) = lib();
        let mut b = SystemBuilder::new(lib);
        let p0 = b.add_process("p0");
        let p1 = b.add_process("p1");
        let b0 = b.add_block(p0, "b", 5).unwrap();
        let b1 = b.add_block(p1, "b", 5).unwrap();
        b.add_op(b0, "a", add).unwrap();
        b.add_op(b0, "m", mul).unwrap();
        b.add_op(b1, "a", add).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.types_used_by_process(p0), vec![add, mul]);
        assert_eq!(sys.types_used_by_process(p1), vec![add]);
        assert_eq!(sys.users_of_type(add), vec![p0, p1]);
        assert_eq!(sys.users_of_type(mul), vec![p0]);
        assert_eq!(sys.ops_of_type(b0, mul).len(), 1);
        assert_eq!(sys.ops_of_type(b1, mul).len(), 0);
    }

    #[test]
    fn name_lookups() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("proc");
        let blk = b.add_block(p, "body", 3).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.process_by_name("proc"), Some(p));
        assert_eq!(sys.block_by_name(p, "body"), Some(blk));
        assert_eq!(sys.op_by_name(blk, "x"), Some(x));
        assert_eq!(sys.op_by_name(blk, "nope"), None);
    }

    #[test]
    fn add_op_with_preds_convenience() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 5).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        let z = b.add_op_with_preds(blk, "z", add, &[x, y]).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.preds(z), &[x, y]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (lib, add, _) = lib();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 9).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        let z = b.add_op(blk, "z", add).unwrap();
        b.add_dep(z, y).unwrap();
        b.add_dep(y, x).unwrap();
        let sys = b.build().unwrap();
        let order = sys.topo_order(blk);
        let pos = |o: OpId| order.iter().position(|&q| q == o).unwrap();
        assert!(pos(z) < pos(y));
        assert!(pos(y) < pos(x));
    }
}
