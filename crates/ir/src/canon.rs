//! Canonicalization and content hashing of systems.
//!
//! Two `.dfg` files that declare the same design in a different order —
//! resources shuffled, processes swapped, blocks reordered inside a
//! process, operations and edges listed in any order — describe the
//! *same* scheduling problem and must be recognisable as such by a
//! content-addressed result cache. This module computes a **canonical
//! form** of a [`System`]: a deterministic, declaration-order-independent
//! serialization together with a stable renaming (canonical indices) of
//! every entity, and a 128-bit content hash over that form.
//!
//! # Canonical order
//!
//! * resource types sort by name (the library enforces name uniqueness),
//! * operations sort by name within their block (the builder enforces
//!   per-block uniqueness),
//! * blocks sort by `(name, time range, content signature)` within their
//!   process, and processes sort by `(name, content signature)` — the
//!   signatures break ties between identically named siblings, so the
//!   order is total for every valid system,
//! * edges sort by `(from, to)` in canonical operation indices.
//!
//! Names participate in the canonical form on purpose: a *rename* is an
//! observable change (reports and saved schedules are keyed by name), so
//! only *reorderings* may collide — which is exactly the isomorphism the
//! cache wants. Semantically meaningful attributes (delays, areas,
//! pipelining, time ranges, dependency structure) all feed the hash, so
//! any semantic edit changes it.
//!
//! # Schedule translation
//!
//! [`Canonicalization::op_order`] maps canonical operation positions back
//! to this system's [`OpId`]s. A schedule stored as start times in
//! canonical order can therefore be replayed onto any system with the
//! same canonical hash, independent of its declaration order — the basis
//! of the serve cache's bit-identical replay guarantee.
//!
//! # Example
//!
//! ```
//! use tcms_ir::canon::Canonicalization;
//! use tcms_ir::parse::parse_system;
//!
//! let a = parse_system("
//! resource add delay=1 area=1
//! process P
//! block b time=4
//! op x add
//! op y add
//! edge x y
//! ").unwrap();
//! let b = parse_system("
//! resource add delay=1 area=1
//! process P
//! block b time=4
//! op y add
//! op x add
//! edge x y
//! ").unwrap();
//! assert_eq!(Canonicalization::of(&a).hash(), Canonicalization::of(&b).hash());
//! ```

use std::fmt;
use std::fmt::Write as _;

use crate::op::OpId;
use crate::system::System;

/// 64-bit FNV-1a offset basis.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher (64-bit), the workspace's dependency-free
/// stable hash. Unlike `std::hash`, the digest is identical across
/// platforms, processes and releases — a requirement for on-disk cache
/// keys.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the standard offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    /// A hasher at a caller-chosen basis (used to derive independent
    /// streams for the two halves of a 128-bit digest).
    #[must_use]
    pub fn with_basis(basis: u64) -> Self {
        Fnv64(basis)
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV64_PRIME);
        }
        self.0 = h;
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable 64-bit digest of a byte string (one-shot [`Fnv64`]).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// A 128-bit content hash of a canonical form.
///
/// Built from two independent FNV-1a streams (the second seeded with the
/// finished first digest), formatted as 32 lowercase hex digits. The
/// doubled width makes accidental collisions between distinct canonical
/// texts negligible for cache-sized populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash {
    hi: u64,
    lo: u64,
}

impl SpecHash {
    /// Hashes a canonical text.
    #[must_use]
    pub fn of_text(text: &str) -> Self {
        let lo = fnv64(text.as_bytes());
        // Seed the second stream with the first digest so the halves
        // never degenerate to the same function of the input.
        let mut second = Fnv64::with_basis(FNV64_OFFSET ^ lo.rotate_left(32));
        second.update(text.as_bytes());
        SpecHash {
            hi: second.finish(),
            lo,
        }
    }

    /// Reconstructs a hash from its 32-digit hex rendering.
    ///
    /// # Errors
    ///
    /// Returns a message when `s` is not exactly 32 hex digits.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("spec hash must be 32 hex digits, got `{s}`"));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        Ok(SpecHash { hi, lo })
    }

    /// The upper 64 bits (used for shard selection).
    #[must_use]
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The lower 64 bits.
    #[must_use]
    pub fn lo(&self) -> u64 {
        self.lo
    }
}

impl fmt::Display for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// The canonical form of a [`System`]: stable renaming, sorted canonical
/// text and content hash, plus the order maps needed to translate
/// schedules between declaration order and canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonicalization {
    hash: SpecHash,
    text: String,
    /// Canonical position → declared [`OpId`].
    op_order: Vec<OpId>,
    /// Declared op index → canonical position.
    op_rank: Vec<usize>,
    /// Canonical resource-type position → declared library index.
    type_order: Vec<usize>,
    /// Declared library index → canonical resource-type position.
    type_rank: Vec<usize>,
    /// Canonical process position → declared process index.
    process_order: Vec<usize>,
    /// Declared process index → canonical process position.
    process_rank: Vec<usize>,
}

impl Canonicalization {
    /// Computes the canonical form of `system`.
    #[must_use]
    pub fn of(system: &System) -> Self {
        // --- resource types: sort by (unique) name -------------------
        let mut type_order: Vec<usize> = (0..system.library().len()).collect();
        type_order.sort_by_key(|&i| {
            system
                .library()
                .get(crate::resource::ResourceTypeId::from_index(i))
                .name()
                .to_owned()
        });
        let mut type_rank = vec![0usize; type_order.len()];
        for (rank, &i) in type_order.iter().enumerate() {
            type_rank[i] = rank;
        }

        // --- per-block canonical op order and signature --------------
        // Ops sort by name (unique within a block). The block signature
        // serializes time range, typed ops and edges in that order, so
        // it is declaration-order independent.
        let nblocks = system.num_blocks();
        let mut block_op_order: Vec<Vec<OpId>> = Vec::with_capacity(nblocks);
        let mut block_sig: Vec<String> = Vec::with_capacity(nblocks);
        for (bid, block) in system.blocks() {
            let mut ops: Vec<OpId> = block.ops().to_vec();
            ops.sort_by(|&a, &b| system.op(a).name().cmp(system.op(b).name()));
            let rank_of = |op: OpId| {
                ops.binary_search_by(|&o| system.op(o).name().cmp(system.op(op).name()))
                    .expect("op is in its own block")
            };
            let mut sig = String::new();
            let _ = write!(
                sig,
                "block name={} time={}",
                block.name(),
                block.time_range()
            );
            for &o in &ops {
                let _ = write!(
                    sig,
                    "\nop name={} type={}",
                    system.op(o).name(),
                    type_rank[system.op(o).rtype.index()]
                );
            }
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for &o in &ops {
                let from = rank_of(o);
                for &s in system.succs(o) {
                    edges.push((from, rank_of(s)));
                }
            }
            edges.sort_unstable();
            for (f, t) in edges {
                let _ = write!(sig, "\nedge {f} {t}");
            }
            debug_assert_eq!(bid.index(), block_sig.len());
            block_op_order.push(ops);
            block_sig.push(sig);
        }

        // --- blocks within a process: sort by (name, signature) ------
        // The signature tie-breaks identically named siblings; two blocks
        // with equal name *and* equal signature are interchangeable, so
        // either order yields the same canonical text.
        let mut proc_block_order: Vec<Vec<usize>> = Vec::with_capacity(system.num_processes());
        let mut proc_sig: Vec<String> = Vec::with_capacity(system.num_processes());
        for (_, proc) in system.processes() {
            let mut blocks: Vec<usize> = proc.blocks().iter().map(|b| b.index()).collect();
            blocks.sort_by(|&a, &b| block_sig[a].cmp(&block_sig[b]));
            let mut sig = format!("process name={}", proc.name());
            for &b in &blocks {
                sig.push('\n');
                sig.push_str(&block_sig[b]);
            }
            proc_block_order.push(blocks);
            proc_sig.push(sig);
        }

        // --- processes: sort by (name, signature) --------------------
        let mut process_order: Vec<usize> = (0..system.num_processes()).collect();
        process_order.sort_by(|&a, &b| proc_sig[a].cmp(&proc_sig[b]));
        let mut process_rank = vec![0usize; process_order.len()];
        for (rank, &i) in process_order.iter().enumerate() {
            process_rank[i] = rank;
        }

        // --- canonical text and op order -----------------------------
        let mut text = String::from("tcms-canonical v1\n");
        for &ti in &type_order {
            let rt = system
                .library()
                .get(crate::resource::ResourceTypeId::from_index(ti));
            let _ = writeln!(
                text,
                "resource name={} delay={} area={} pipelined={}",
                rt.name(),
                rt.delay(),
                rt.area(),
                u8::from(rt.is_pipelined())
            );
        }
        let mut op_order: Vec<OpId> = Vec::with_capacity(system.num_ops());
        for &pi in &process_order {
            text.push_str(&proc_sig[pi]);
            text.push('\n');
            for &bi in &proc_block_order[pi] {
                op_order.extend(block_op_order[bi].iter().copied());
            }
        }
        let mut op_rank = vec![0usize; system.num_ops()];
        for (rank, &o) in op_order.iter().enumerate() {
            op_rank[o.index()] = rank;
        }

        Canonicalization {
            hash: SpecHash::of_text(&text),
            text,
            op_order,
            op_rank,
            type_order,
            type_rank,
            process_order,
            process_rank,
        }
    }

    /// The 128-bit content hash of the canonical form.
    #[must_use]
    pub fn hash(&self) -> SpecHash {
        self.hash
    }

    /// The canonical serialization the hash covers.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Canonical position → declared [`OpId`] of this system.
    #[must_use]
    pub fn op_order(&self) -> &[OpId] {
        &self.op_order
    }

    /// Canonical position of a declared operation.
    #[must_use]
    pub fn op_rank(&self, op: OpId) -> usize {
        self.op_rank[op.index()]
    }

    /// Canonical position of a declared resource-type index.
    #[must_use]
    pub fn type_rank(&self, type_index: usize) -> usize {
        self.type_rank[type_index]
    }

    /// Canonical resource-type position → declared library index.
    #[must_use]
    pub fn type_order(&self) -> &[usize] {
        &self.type_order
    }

    /// Canonical position of a declared process index.
    #[must_use]
    pub fn process_rank(&self, process_index: usize) -> usize {
        self.process_rank[process_index]
    }

    /// Canonical process position → declared process index.
    #[must_use]
    pub fn process_order(&self) -> &[usize] {
        &self.process_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_system;

    const BASE: &str = "
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined
process A
block body time=8
op m0 mul
op a0 add
edge m0 a0
process B
block body time=8
op a0 add
op m0 mul
edge m0 a0
";

    /// Same design with every declaration order permuted: resources,
    /// processes, ops and edges.
    const SHUFFLED: &str = "
resource mul delay=2 area=4 pipelined
resource add delay=1 area=1
process B
block body time=8
op m0 mul
op a0 add
edge m0 a0
process A
block body time=8
op a0 add
op m0 mul
edge m0 a0
";

    #[test]
    fn permuted_declarations_hash_equal() {
        let a = Canonicalization::of(&parse_system(BASE).unwrap());
        let b = Canonicalization::of(&parse_system(SHUFFLED).unwrap());
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.text(), b.text());
    }

    #[test]
    fn semantic_change_changes_hash() {
        let a = Canonicalization::of(&parse_system(BASE).unwrap());
        let bumped = BASE.replace("delay=1", "delay=2");
        let b = Canonicalization::of(&parse_system(&bumped).unwrap());
        assert_ne!(a.hash(), b.hash());
        let widened = BASE.replace("time=8", "time=9");
        let c = Canonicalization::of(&parse_system(&widened).unwrap());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn rename_changes_hash() {
        let a = Canonicalization::of(&parse_system(BASE).unwrap());
        let renamed = BASE.replace("process A", "process C");
        let b = Canonicalization::of(&parse_system(&renamed).unwrap());
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn op_order_translates_between_permutations() {
        let sys_a = parse_system(BASE).unwrap();
        let sys_b = parse_system(SHUFFLED).unwrap();
        let ca = Canonicalization::of(&sys_a);
        let cb = Canonicalization::of(&sys_b);
        assert_eq!(ca.op_order().len(), cb.op_order().len());
        for rank in 0..ca.op_order().len() {
            let oa = ca.op_order()[rank];
            let ob = cb.op_order()[rank];
            // The canonically aligned ops agree on name, type and the
            // owning process/block names.
            assert_eq!(sys_a.op(oa).name(), sys_b.op(ob).name());
            let (ba, bb) = (sys_a.op(oa).block(), sys_b.op(ob).block());
            assert_eq!(sys_a.block(ba).name(), sys_b.block(bb).name());
            assert_eq!(
                sys_a.process(sys_a.block(ba).process()).name(),
                sys_b.process(sys_b.block(bb).process()).name()
            );
        }
    }

    #[test]
    fn ranks_invert_orders() {
        let sys = parse_system(BASE).unwrap();
        let c = Canonicalization::of(&sys);
        for (rank, &op) in c.op_order().iter().enumerate() {
            assert_eq!(c.op_rank(op), rank);
        }
        for (rank, &ti) in c.type_order().iter().enumerate() {
            assert_eq!(c.type_rank(ti), rank);
        }
        for (rank, &pi) in c.process_order().iter().enumerate() {
            assert_eq!(c.process_rank(pi), rank);
        }
    }

    #[test]
    fn spec_hash_round_trips_through_hex() {
        let h = SpecHash::of_text("hello");
        let parsed = SpecHash::parse(&h.to_string()).unwrap();
        assert_eq!(h, parsed);
        assert!(SpecHash::parse("xyz").is_err());
        assert!(SpecHash::parse(&"0".repeat(31)).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned digest: the on-disk cache format depends on it.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
