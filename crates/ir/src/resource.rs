//! Resource (operation) types and the resource library.
//!
//! A *resource type* models a class of functional units — adders,
//! subtracters, multipliers, memories, buses — characterised by an execution
//! delay in control steps, an optional initiation-interval-1 pipeline flag
//! and an area cost. The paper's experiment uses a unit-delay adder and
//! subtracter of area 1 and a two-cycle pipelined multiplier of area 4.

use std::collections::HashMap;
use std::fmt;

use crate::error::IrError;

/// Opaque identifier of a [`ResourceType`] inside a [`ResourceLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceTypeId(pub(crate) u32);

impl ResourceTypeId {
    /// Dense index of this type, usable for indexing per-type vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index produced by [`ResourceTypeId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ResourceTypeId(index as u32)
    }
}

impl fmt::Display for ResourceTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Description of one class of functional units.
///
/// # Example
///
/// ```
/// use tcms_ir::ResourceType;
///
/// let mul = ResourceType::new("mul", 2).pipelined().with_area(4);
/// assert_eq!(mul.delay(), 2);
/// assert_eq!(mul.occupancy(), 1); // pipelined: busy only in the issue cycle
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResourceType {
    name: String,
    delay: u32,
    pipelined: bool,
    area: u64,
}

impl ResourceType {
    /// Creates a type with the given name and execution delay in control
    /// steps. Area defaults to 1 and the unit is not pipelined.
    ///
    /// A zero delay is accepted here but rejected by
    /// [`ResourceLibrary::add`], so the error surfaces with the type name.
    pub fn new(name: impl Into<String>, delay: u32) -> Self {
        ResourceType {
            name: name.into(),
            delay,
            pipelined: false,
            area: 1,
        }
    }

    /// Marks the unit as pipelined with an initiation interval of one: it
    /// accepts a new operation every control step even though results take
    /// [`delay`](Self::delay) steps.
    #[must_use]
    pub fn pipelined(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Sets the area cost used by spring constants and area reports.
    #[must_use]
    pub fn with_area(mut self, area: u64) -> Self {
        self.area = area;
        self
    }

    /// Type name, unique within a library.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution delay in control steps (result available after this many
    /// steps).
    pub fn delay(&self) -> u32 {
        self.delay
    }

    /// Whether the unit is pipelined with initiation interval 1.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Area cost of one instance.
    pub fn area(&self) -> u64 {
        self.area
    }

    /// Number of control steps one operation occupies the unit: the full
    /// delay for a non-pipelined unit, a single issue cycle for a pipelined
    /// one.
    pub fn occupancy(&self) -> u32 {
        if self.pipelined {
            1
        } else {
            self.delay
        }
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (delay {}", self.name, self.delay)?;
        if self.pipelined {
            write!(f, ", pipelined")?;
        }
        write!(f, ", area {})", self.area)
    }
}

/// Registry of all resource types of a system.
///
/// Types are referenced by [`ResourceTypeId`] everywhere else; names are
/// unique.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceLibrary {
    types: Vec<ResourceType>,
    by_name: HashMap<String, ResourceTypeId>,
}

impl ResourceLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a type and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateResource`] if a type of the same name is
    /// already present and [`IrError::ZeroDelay`] for a zero delay.
    pub fn add(&mut self, rt: ResourceType) -> Result<ResourceTypeId, IrError> {
        if rt.delay == 0 {
            return Err(IrError::ZeroDelay { name: rt.name });
        }
        if self.by_name.contains_key(&rt.name) {
            return Err(IrError::DuplicateResource { name: rt.name });
        }
        let id = ResourceTypeId(self.types.len() as u32);
        self.by_name.insert(rt.name.clone(), id);
        self.types.push(rt);
        Ok(id)
    }

    /// Looks a type up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    pub fn get(&self, id: ResourceTypeId) -> &ResourceType {
        &self.types[id.index()]
    }

    /// Resolves a type by name.
    pub fn by_name(&self, name: &str) -> Option<ResourceTypeId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// `true` if no type is registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over `(id, type)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceTypeId, &ResourceType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (ResourceTypeId(i as u32), t))
    }

    /// Iterates over all ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ResourceTypeId> {
        (0..self.types.len() as u32).map(ResourceTypeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib
            .add(ResourceType::new("mul", 2).pipelined().with_area(4))
            .unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.by_name("add"), Some(add));
        assert_eq!(lib.by_name("mul"), Some(mul));
        assert_eq!(lib.by_name("div"), None);
        assert_eq!(lib.get(mul).area(), 4);
        assert_eq!(lib.get(add).area(), 1);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut lib = ResourceLibrary::new();
        lib.add(ResourceType::new("add", 1)).unwrap();
        let err = lib.add(ResourceType::new("add", 3)).unwrap_err();
        assert_eq!(err, IrError::DuplicateResource { name: "add".into() });
    }

    #[test]
    fn zero_delay_rejected() {
        let mut lib = ResourceLibrary::new();
        let err = lib.add(ResourceType::new("nop", 0)).unwrap_err();
        assert_eq!(err, IrError::ZeroDelay { name: "nop".into() });
    }

    #[test]
    fn occupancy_pipelined_vs_multicycle() {
        let pipelined = ResourceType::new("mul", 2).pipelined();
        let multicycle = ResourceType::new("mul2", 2);
        let unit = ResourceType::new("add", 1);
        assert_eq!(pipelined.occupancy(), 1);
        assert_eq!(multicycle.occupancy(), 2);
        assert_eq!(unit.occupancy(), 1);
    }

    #[test]
    fn iteration_order_matches_ids() {
        let mut lib = ResourceLibrary::new();
        lib.add(ResourceType::new("a", 1)).unwrap();
        lib.add(ResourceType::new("b", 1)).unwrap();
        let names: Vec<_> = lib.iter().map(|(id, t)| (id.index(), t.name())).collect();
        assert_eq!(names, vec![(0, "a"), (1, "b")]);
        let ids: Vec<_> = lib.ids().collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[1].index(), 1);
    }

    #[test]
    fn display_formats() {
        let mul = ResourceType::new("mul", 2).pipelined().with_area(4);
        assert_eq!(mul.to_string(), "mul (delay 2, pipelined, area 4)");
        assert_eq!(ResourceTypeId(3).to_string(), "r3");
    }

    #[test]
    fn from_index_round_trip() {
        let id = ResourceTypeId::from_index(7);
        assert_eq!(id.index(), 7);
    }
}
