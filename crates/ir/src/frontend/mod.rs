//! Behavioral frontend: compile arithmetic assignments into data-flow
//! blocks.
//!
//! A miniature HLS input language, enough to write the paper's workloads
//! as equations instead of hand-built graphs:
//!
//! ```text
//! process diffeq time=15 {
//!     u1 := u - 3*x*u*dx - 3*y*dx;
//!     x1 := x + dx;
//!     y1 := y + u*dx;
//!     c  := x1 - a;
//! }
//! ```
//!
//! * every binary operator becomes one operation: `+` → `add`, `-` →
//!   `sub`, `*` → `mul` (resolved by name in the supplied
//!   [`ResourceLibrary`](crate::ResourceLibrary)),
//! * identifiers defined by an earlier assignment feed their consumers
//!   through dependency edges; undefined identifiers and numeric literals
//!   are primary inputs,
//! * structurally identical subexpressions are shared (common
//!   subexpression elimination) within a block,
//! * each `process` contributes one process with one block; several
//!   `process` declarations build a multi-process system ready for
//!   modulo scheduling.
//!
//! The pipeline is [`lexer`] → [`parser`] → [`lower`]; [`compile`] runs
//! all three.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Expr, Program, Stmt};
pub use lexer::{tokenize, Token, TokenKind};
pub use lower::lower_program;
pub use parser::parse_program;

use crate::error::IrError;
use crate::resource::ResourceLibrary;
use crate::system::System;

/// Compiles behavioral source into a ready-to-schedule [`System`].
///
/// `library` must provide the types named `add`, `sub` and `mul` (e.g.
/// [`crate::generators::paper_library`]).
///
/// # Errors
///
/// Returns [`IrError::Parse`] with line information for lexical/syntactic
/// problems, [`IrError::Unknown`] for missing operator types, and the
/// usual builder errors (e.g. infeasible deadlines) from lowering.
///
/// # Example
///
/// ```
/// use tcms_ir::frontend::compile;
/// use tcms_ir::generators::paper_library;
///
/// let (lib, _) = paper_library();
/// let sys = compile("process p time=9 { y := a * b + c; }", lib)?;
/// assert_eq!(sys.num_ops(), 2); // one mul, one add
/// # Ok::<(), tcms_ir::IrError>(())
/// ```
pub fn compile(source: &str, library: ResourceLibrary) -> Result<System, IrError> {
    let tokens = tokenize(source)?;
    let program = parse_program(&tokens)?;
    lower_program(&program, library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_library;

    #[test]
    fn compile_diffeq_matches_generator_counts() {
        // The canonical HAL loop written as equations produces the same
        // operation mix as the hand-built generator (modulo CSE: the
        // generator duplicates u*dx on purpose, so we write it twice via
        // distinct parenthesisation-independent forms and disable sharing
        // by using different operand orders).
        let src = "
process diffeq time=15 {
    u1 := u - 3*x*u*dx - 3*y*dx;
    x1 := x + dx;
    y1 := y + dx*u;
    c  := x1 - a;
}
";
        let (lib, types) = paper_library();
        let sys = compile(src, lib).unwrap();
        assert_eq!(sys.num_processes(), 1);
        let blk = sys.block_ids().next().unwrap();
        // 3*x*u*dx = 3 muls, 3*y*dx = 2 muls, dx*u = 1 mul -> 6 muls.
        assert_eq!(sys.ops_of_type(blk, types.mul).len(), 6);
        assert_eq!(sys.ops_of_type(blk, types.sub).len(), 3);
        assert_eq!(sys.ops_of_type(blk, types.add).len(), 2);
        // Left-assoc chain ((3*x)*u)*dx then two subtractions: 3*2 + 2 = 8.
        assert_eq!(sys.critical_path(blk), 8);
    }

    #[test]
    fn multi_process_program() {
        let src = "
process a time=6 { y := p * q; }
process b time=6 { z := p + q; }
";
        let (lib, _) = paper_library();
        let sys = compile(src, lib).unwrap();
        assert_eq!(sys.num_processes(), 2);
        assert_eq!(sys.num_ops(), 2);
    }

    #[test]
    fn cse_shares_identical_subexpressions() {
        let (lib, types) = paper_library();
        let sys = compile("process p time=9 { y := a*b + a*b; }", lib).unwrap();
        let blk = sys.block_ids().next().unwrap();
        // a*b appears twice but is computed once.
        assert_eq!(sys.ops_of_type(blk, types.mul).len(), 1);
        assert_eq!(sys.ops_of_type(blk, types.add).len(), 1);
    }

    #[test]
    fn infeasible_deadline_reported() {
        let (lib, _) = paper_library();
        let err = compile("process p time=1 { y := a*b + c; }", lib).unwrap_err();
        assert!(matches!(err, IrError::InfeasibleDeadline { .. }));
    }
}
