//! Abstract syntax of the behavioral input language.

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A variable reference — either a value defined by an earlier
    /// statement or a primary input.
    Var(String),
    /// An integer constant (a primary input from the scheduler's point of
    /// view; constant folding is out of scope).
    Const(u64),
    /// `lhs + rhs`
    Add(Box<Expr>, Box<Expr>),
    /// `lhs - rhs`
    Sub(Box<Expr>, Box<Expr>),
    /// `lhs * rhs`
    Mul(Box<Expr>, Box<Expr>),
}

/// One assignment statement `name := expr;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The defined value name.
    pub name: String,
    /// The computed expression.
    pub expr: Expr,
    /// 1-based source line (for error reporting).
    pub line: usize,
}

/// One `process <name> time=<n> { ... }` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessDecl {
    /// Process name.
    pub name: String,
    /// Time range of the process's single block.
    pub time_range: u32,
    /// The statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A whole compilation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// All declared processes, in source order.
    pub processes: Vec<ProcessDecl>,
}

impl Expr {
    /// Number of operations this expression lowers to (before common
    /// subexpression elimination).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Const(_) => 0,
            Expr::Add(l, r) | Expr::Sub(l, r) | Expr::Mul(l, r) => 1 + l.op_count() + r.op_count(),
        }
    }

    /// All variable names referenced by this expression.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) => out.push(v),
            Expr::Const(_) => {}
            Expr::Add(l, r) | Expr::Sub(l, r) | Expr::Mul(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_counts_nodes() {
        let e = Expr::Add(
            Box::new(Expr::Mul(
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Var("b".into())),
            )),
            Box::new(Expr::Const(3)),
        );
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.vars(), vec!["a", "b"]);
    }

    #[test]
    fn leaf_counts() {
        assert_eq!(Expr::Var("x".into()).op_count(), 0);
        assert_eq!(Expr::Const(7).op_count(), 0);
        assert!(Expr::Const(7).vars().is_empty());
    }
}
