//! Lowering the AST into data-flow blocks with common subexpression
//! elimination.

use std::collections::HashMap;

use crate::block::BlockId;
use crate::error::IrError;
use crate::op::OpId;
use crate::resource::{ResourceLibrary, ResourceTypeId};
use crate::system::{System, SystemBuilder};

use super::ast::{Expr, Program};

/// A value during lowering: produced by an operation or a primary input.
/// Inputs are interned per name (and constants per literal value), so CSE
/// keys distinguish `a*b` from `c*d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Value {
    Op(OpId),
    Input(u32),
}

/// Structural key for CSE: operator plus operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CseKey(ResourceTypeId, Value, Value);

struct Lowering<'a> {
    builder: &'a mut SystemBuilder,
    block: BlockId,
    add: ResourceTypeId,
    sub: ResourceTypeId,
    mul: ResourceTypeId,
    /// Known named values (assignment results and seen inputs).
    env: HashMap<String, Value>,
    /// Interned primary inputs (variables and constants).
    inputs: HashMap<String, u32>,
    /// CSE table for this block.
    cse: HashMap<CseKey, OpId>,
    /// Fresh-name counter for generated operation names.
    counter: usize,
}

impl Lowering<'_> {
    fn intern_input(&mut self, key: String) -> Value {
        let next = self.inputs.len() as u32;
        Value::Input(*self.inputs.entry(key).or_insert(next))
    }

    fn value_of_var(&mut self, name: &str) -> Value {
        if let Some(&v) = self.env.get(name) {
            return v;
        }
        let v = self.intern_input(format!("var:{name}"));
        self.env.insert(name.to_owned(), v);
        v
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<Value, IrError> {
        match expr {
            Expr::Var(name) => Ok(self.value_of_var(name)),
            Expr::Const(n) => Ok(self.intern_input(format!("const:{n}"))),
            Expr::Add(l, r) => self.lower_binop(self.add, l, r),
            Expr::Sub(l, r) => self.lower_binop(self.sub, l, r),
            Expr::Mul(l, r) => self.lower_binop(self.mul, l, r),
        }
    }

    fn lower_binop(&mut self, rtype: ResourceTypeId, l: &Expr, r: &Expr) -> Result<Value, IrError> {
        let lv = self.lower_expr(l)?;
        let rv = self.lower_expr(r)?;
        // Commutative operators share across operand order; subtraction
        // does not.
        let key = if rtype == self.sub {
            CseKey(rtype, lv, rv)
        } else {
            let (a, b) = if cse_ord(lv) <= cse_ord(rv) {
                (lv, rv)
            } else {
                (rv, lv)
            };
            CseKey(rtype, a, b)
        };
        if let Some(&op) = self.cse.get(&key) {
            return Ok(Value::Op(op));
        }
        self.counter += 1;
        let name = format!(
            "{}{}",
            self.builder.library().get(rtype).name(),
            self.counter
        );
        let op = self.builder.add_op(self.block, name, rtype)?;
        for v in [lv, rv] {
            if let Value::Op(src) = v {
                // Duplicate edges between the same producer/consumer are
                // legal data flow (e.g. x*x); the IR stores one edge.
                let _ = self.builder.add_dep(src, op);
            }
        }
        self.cse.insert(key, op);
        Ok(Value::Op(op))
    }
}

fn cse_ord(v: Value) -> u64 {
    match v {
        // Inputs order after all op results, by interned id.
        Value::Input(i) => (1 << 32) + u64::from(i),
        Value::Op(o) => o.index() as u64,
    }
}

/// Lowers a parsed [`Program`] into a [`System`].
///
/// # Errors
///
/// Returns [`IrError::Unknown`] if `library` lacks `add`, `sub` or `mul`,
/// plus any builder error (duplicate names, infeasible deadlines, ...).
pub fn lower_program(program: &Program, library: ResourceLibrary) -> Result<System, IrError> {
    let need = |lib: &ResourceLibrary, name: &str| {
        lib.by_name(name).ok_or_else(|| IrError::Unknown {
            kind: "resource",
            name: name.to_owned(),
        })
    };
    let add = need(&library, "add")?;
    let sub = need(&library, "sub")?;
    let mul = need(&library, "mul")?;
    let mut builder = SystemBuilder::new(library);
    for decl in &program.processes {
        let p = builder.add_process(decl.name.clone());
        let block = builder.add_block(p, "body", decl.time_range)?;
        let mut lowering = Lowering {
            builder: &mut builder,
            block,
            add,
            sub,
            mul,
            env: HashMap::new(),
            inputs: HashMap::new(),
            cse: HashMap::new(),
            counter: 0,
        };
        for stmt in &decl.stmts {
            if matches!(lowering.env.get(&stmt.name), Some(Value::Op(_))) {
                return Err(IrError::Parse {
                    line: stmt.line,
                    message: format!("`{}` assigned twice", stmt.name),
                });
            }
            let value = lowering.lower_expr(&stmt.expr)?;
            lowering.env.insert(stmt.name.clone(), value);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{parse_program, tokenize};
    use crate::generators::paper_library;

    fn lower(src: &str) -> Result<System, IrError> {
        let (lib, _) = paper_library();
        lower_program(&parse_program(&tokenize(src).unwrap()).unwrap(), lib)
    }

    #[test]
    fn chain_dependencies_wired() {
        let sys = lower("process p time=9 { t := a * b; y := t + c; z := y - t; }").unwrap();
        let blk = sys.block_ids().next().unwrap();
        assert_eq!(sys.block(blk).len(), 3);
        // mul feeds add feeds sub; mul also feeds sub.
        let mul_op = sys.ops_of_type(blk, sys.library().by_name("mul").unwrap())[0];
        let add_op = sys.ops_of_type(blk, sys.library().by_name("add").unwrap())[0];
        let sub_op = sys.ops_of_type(blk, sys.library().by_name("sub").unwrap())[0];
        assert!(sys.succs(mul_op).contains(&add_op));
        assert!(sys.succs(add_op).contains(&sub_op));
        assert!(sys.succs(mul_op).contains(&sub_op));
        assert_eq!(sys.critical_path(blk), 4);
    }

    #[test]
    fn commutative_cse_shares_reversed_operands() {
        let sys = lower("process p time=9 { t := x * y; u := t + t; }").unwrap();
        // x*y computed once, t+t computed once (same op twice as operand).
        assert_eq!(sys.num_ops(), 2);
    }

    #[test]
    fn square_uses_one_op() {
        let sys = lower("process p time=9 { s := x; y := s * s; }").unwrap();
        assert_eq!(sys.num_ops(), 1);
    }

    #[test]
    fn double_assignment_rejected() {
        let err = lower("process p time=9 { y := a + b; y := a - b; }").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn alias_statement_allows_reuse() {
        // `s := x;` defines an alias of an input, not an operation.
        let sys = lower("process p time=9 { s := x; y := s + z; }").unwrap();
        assert_eq!(sys.num_ops(), 1);
    }

    #[test]
    fn missing_operator_type_reported() {
        let mut lib = ResourceLibrary::new();
        lib.add(crate::ResourceType::new("add", 1)).unwrap();
        let program =
            parse_program(&tokenize("process p time=3 { y := a + b; }").unwrap()).unwrap();
        let err = lower_program(&program, lib).unwrap_err();
        assert!(matches!(
            err,
            IrError::Unknown {
                kind: "resource",
                ..
            }
        ));
    }
}
