//! Recursive-descent parser of the behavioral input language.
//!
//! Grammar:
//!
//! ```text
//! program  := process*
//! process  := "process" IDENT "time" "=" NUMBER "{" stmt* "}"
//! stmt     := IDENT ":=" expr ";"
//! expr     := term (("+" | "-") term)*
//! term     := factor ("*" factor)*
//! factor   := IDENT | NUMBER | "(" expr ")"
//! ```
//!
//! `+`/`-` are left-associative and bind weaker than `*`.

use crate::error::IrError;

use super::ast::{Expr, ProcessDecl, Program, Stmt};
use super::lexer::{Token, TokenKind};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), IrError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, IrError> {
        match self.peek() {
            Some(TokenKind::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn number(&mut self, what: &str) -> Result<u64, IrError> {
        match self.peek() {
            Some(TokenKind::Number(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn program(&mut self) -> Result<Program, IrError> {
        let mut processes = Vec::new();
        while self.peek().is_some() {
            processes.push(self.process()?);
        }
        Ok(Program { processes })
    }

    fn process(&mut self) -> Result<ProcessDecl, IrError> {
        self.expect(&TokenKind::Process, "`process`")?;
        let name = self.ident("process name")?;
        let time_kw = self.ident("`time`")?;
        if time_kw != "time" {
            return Err(self.err("expected `time=<n>`"));
        }
        self.expect(&TokenKind::Equals, "`=`")?;
        let time_raw = self.number("time range")?;
        let time_range = u32::try_from(time_raw)
            .map_err(|_| self.err(format!("time range {time_raw} exceeds the u32 limit")))?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated process body"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(ProcessDecl {
            name,
            time_range,
            stmts,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, IrError> {
        let line = self.line();
        let name = self.ident("value name")?;
        self.expect(&TokenKind::Assign, "`:=`")?;
        let expr = self.expr()?;
        self.expect(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt { name, expr, line })
    }

    fn expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(TokenKind::Plus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Minus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.factor()?;
        while self.peek() == Some(&TokenKind::Star) {
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, IrError> {
        match self.bump() {
            Some(TokenKind::Ident(name)) => Ok(Expr::Var(name.clone())),
            Some(TokenKind::Number(n)) => Ok(Expr::Const(*n)),
            Some(TokenKind::LParen) => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier, number or `(`"))
            }
        }
    }
}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns [`IrError::Parse`] with the line of the offending token.
pub fn parse_program(tokens: &[Token]) -> Result<Program, IrError> {
    Parser { tokens, pos: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::lexer::tokenize;

    fn parse(src: &str) -> Result<Program, IrError> {
        parse_program(&tokenize(src).unwrap())
    }

    #[test]
    fn parses_process_with_statements() {
        let p = parse("process p time=9 { y := a*b + c; z := y - 1; }").unwrap();
        assert_eq!(p.processes.len(), 1);
        let d = &p.processes[0];
        assert_eq!(d.name, "p");
        assert_eq!(d.time_range, 9);
        assert_eq!(d.stmts.len(), 2);
        assert_eq!(d.stmts[0].expr.op_count(), 2);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("process p time=9 { y := a + b*c; }").unwrap();
        match &p.processes[0].stmts[0].expr {
            Expr::Add(l, r) => {
                assert_eq!(**l, Expr::Var("a".into()));
                assert!(matches!(**r, Expr::Mul(_, _)));
            }
            other => panic!("wrong tree {other:?}"),
        }
    }

    #[test]
    fn parentheses_override() {
        let p = parse("process p time=9 { y := (a + b)*c; }").unwrap();
        assert!(matches!(p.processes[0].stmts[0].expr, Expr::Mul(_, _)));
    }

    #[test]
    fn subtraction_is_left_associative() {
        let p = parse("process p time=9 { y := a - b - c; }").unwrap();
        match &p.processes[0].stmts[0].expr {
            Expr::Sub(l, r) => {
                assert!(matches!(**l, Expr::Sub(_, _)));
                assert_eq!(**r, Expr::Var("c".into()));
            }
            other => panic!("wrong tree {other:?}"),
        }
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse("process p time=9 {\n y := ;\n}").unwrap_err();
        assert!(matches!(e, IrError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn missing_brace_rejected() {
        assert!(parse("process p time=9 { y := a;").is_err());
        assert!(parse("process p { y := a; }").is_err());
        assert!(parse("y := a;").is_err());
    }

    #[test]
    fn empty_program_ok() {
        assert_eq!(parse("").unwrap(), Program::default());
    }
}
