//! Tokenizer of the behavioral input language.

use crate::error::IrError;

/// The kinds of token the language knows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// The `process` keyword.
    Process,
    /// An identifier (`[A-Za-z_][A-Za-z0-9_]*`).
    Ident(String),
    /// An unsigned integer literal.
    Number(u64),
    /// `:=`
    Assign,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semicolon,
}

/// A token with its 1-based source line (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

/// Splits `source` into tokens. `#` starts a comment until end of line.
///
/// # Errors
///
/// Returns [`IrError::Parse`] for unexpected characters and malformed
/// numbers.
pub fn tokenize(source: &str) -> Result<Vec<Token>, IrError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("");
        let mut chars = text.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                '+' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::Plus,
                        line,
                    });
                }
                '-' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::Minus,
                        line,
                    });
                }
                '*' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::Star,
                        line,
                    });
                }
                '(' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::LParen,
                        line,
                    });
                }
                ')' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::RParen,
                        line,
                    });
                }
                '{' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::LBrace,
                        line,
                    });
                }
                '}' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::RBrace,
                        line,
                    });
                }
                ';' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::Semicolon,
                        line,
                    });
                }
                '=' => {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::Equals,
                        line,
                    });
                }
                ':' => {
                    chars.next();
                    match chars.peek() {
                        Some(&(_, '=')) => {
                            chars.next();
                            out.push(Token {
                                kind: TokenKind::Assign,
                                line,
                            });
                        }
                        _ => {
                            return Err(IrError::Parse {
                                line,
                                message: "expected `=` after `:`".into(),
                            })
                        }
                    }
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_digit() {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let lit = &text[start..end];
                    let value = lit.parse().map_err(|_| IrError::Parse {
                        line,
                        message: format!("invalid number `{lit}`"),
                    })?;
                    out.push(Token {
                        kind: TokenKind::Number(value),
                        line,
                    });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let word = &text[start..end];
                    let kind = if word == "process" {
                        TokenKind::Process
                    } else {
                        TokenKind::Ident(word.to_owned())
                    };
                    out.push(Token { kind, line });
                }
                other => {
                    return Err(IrError::Parse {
                        line,
                        message: format!("unexpected character `{other}`"),
                    })
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_statement() {
        assert_eq!(
            kinds("y := a*b + 3;"),
            vec![
                TokenKind::Ident("y".into()),
                TokenKind::Assign,
                TokenKind::Ident("a".into()),
                TokenKind::Star,
                TokenKind::Ident("b".into()),
                TokenKind::Plus,
                TokenKind::Number(3),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn keyword_and_braces() {
        assert_eq!(
            kinds("process p time=5 { }"),
            vec![
                TokenKind::Process,
                TokenKind::Ident("p".into()),
                TokenKind::Ident("time".into()),
                TokenKind::Equals,
                TokenKind::Number(5),
                TokenKind::LBrace,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            kinds("a # everything := after\n;"),
            vec![TokenKind::Ident("a".into()), TokenKind::Semicolon]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn bad_colon_rejected() {
        let e = tokenize("a : b").unwrap_err();
        assert!(matches!(e, IrError::Parse { line: 1, .. }));
    }

    #[test]
    fn stray_character_rejected() {
        let e = tokenize("a := b / c;").unwrap_err();
        assert!(matches!(e, IrError::Parse { .. }));
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(kinds("_tmp1"), vec![TokenKind::Ident("_tmp1".into())]);
    }
}
