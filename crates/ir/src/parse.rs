//! Parser for the `.dfg` text format (see [`crate::display::to_dfg`]).

use crate::block::BlockId;
use crate::error::IrError;
use crate::process::ProcessId;
use crate::resource::{ResourceLibrary, ResourceType};
use crate::system::{System, SystemBuilder};

/// Parses a system from the `.dfg` text format.
///
/// Blank lines and `#` comments are ignored. `op` and `edge` lines apply to
/// the most recent `block`, `block` lines to the most recent `process`, and
/// all `resource` lines must precede the first `process`.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a 1-based line number for malformed
/// input, and the underlying builder errors (cycles, infeasible deadlines,
/// duplicates) otherwise.
///
/// # Example
///
/// ```
/// let text = "
/// resource add delay=1 area=1
/// process P1
/// block body time=4
/// op x add
/// op y add
/// edge x y
/// ";
/// let sys = tcms_ir::parse::parse_system(text)?;
/// assert_eq!(sys.num_ops(), 2);
/// # Ok::<(), tcms_ir::IrError>(())
/// ```
pub fn parse_system(text: &str) -> Result<System, IrError> {
    let mut library = Some(ResourceLibrary::new());
    let mut builder: Option<SystemBuilder> = None;
    let mut cur_process: Option<ProcessId> = None;
    let mut cur_block: Option<BlockId> = None;

    let err = |line: usize, message: String| IrError::Parse { line, message };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "resource" => {
                let lib = library
                    .as_mut()
                    .ok_or_else(|| err(lineno, "resource after first process".into()))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "resource needs a name".into()))?;
                let mut delay: Option<u32> = None;
                let mut area: u64 = 1;
                let mut pipelined = false;
                for tok in tokens {
                    if let Some(v) = tok.strip_prefix("delay=") {
                        delay = Some(
                            v.parse()
                                .map_err(|_| err(lineno, format!("invalid delay `{v}`")))?,
                        );
                    } else if let Some(v) = tok.strip_prefix("area=") {
                        area = v
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid area `{v}`")))?;
                    } else if tok == "pipelined" {
                        pipelined = true;
                    } else {
                        return Err(err(lineno, format!("unknown attribute `{tok}`")));
                    }
                }
                let delay = delay.ok_or_else(|| err(lineno, "resource needs delay=<n>".into()))?;
                let mut rt = ResourceType::new(name, delay).with_area(area);
                if pipelined {
                    rt = rt.pipelined();
                }
                lib.add(rt)?;
            }
            "process" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "process needs a name".into()))?;
                let b = builder.get_or_insert_with(|| {
                    SystemBuilder::new(library.take().expect("library unmoved before builder"))
                });
                cur_process = Some(b.add_process(name));
                cur_block = None;
            }
            "block" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "block before any process".into()))?;
                let p =
                    cur_process.ok_or_else(|| err(lineno, "block before any process".into()))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "block needs a name".into()))?;
                let time_tok = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "block needs time=<n>".into()))?;
                let time = time_tok
                    .strip_prefix("time=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(lineno, format!("invalid time `{time_tok}`")))?;
                cur_block = Some(b.add_block(p, name, time)?);
            }
            "op" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "op before any block".into()))?;
                let blk = cur_block.ok_or_else(|| err(lineno, "op before any block".into()))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "op needs a name".into()))?;
                let tname = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "op needs a resource type".into()))?;
                let rtype = b.library().by_name(tname).ok_or_else(|| IrError::Unknown {
                    kind: "resource",
                    name: tname.into(),
                })?;
                b.add_op(blk, name, rtype)?;
            }
            "edge" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge before any block".into()))?;
                let blk = cur_block.ok_or_else(|| err(lineno, "edge before any block".into()))?;
                let from = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "edge needs two op names".into()))?;
                let to = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "edge needs two op names".into()))?;
                let from_id = lookup_op(b, blk, from).ok_or_else(|| IrError::Unknown {
                    kind: "op",
                    name: from.into(),
                })?;
                let to_id = lookup_op(b, blk, to).ok_or_else(|| IrError::Unknown {
                    kind: "op",
                    name: to.into(),
                })?;
                b.add_dep(from_id, to_id)?;
            }
            other => return Err(err(lineno, format!("unknown keyword `{other}`"))),
        }
    }

    match builder {
        Some(b) => b.build(),
        None => SystemBuilder::new(library.take().expect("library present")).build(),
    }
}

fn lookup_op(builder: &SystemBuilder, block: BlockId, name: &str) -> Option<crate::op::OpId> {
    builder.op_in_block_by_name(block, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::to_dfg;

    const SAMPLE: &str = "
# a tiny two-process system
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined

process P1
block body time=6
op a1 add
op m1 mul
edge a1 m1

process P2
block body time=4
op a1 add
";

    #[test]
    fn parse_sample() {
        let sys = parse_system(SAMPLE).unwrap();
        assert_eq!(sys.num_processes(), 2);
        assert_eq!(sys.num_blocks(), 2);
        assert_eq!(sys.num_ops(), 3);
        let mul = sys.library().by_name("mul").unwrap();
        assert!(sys.library().get(mul).is_pipelined());
        assert_eq!(sys.library().get(mul).area(), 4);
    }

    #[test]
    fn round_trip() {
        let sys = parse_system(SAMPLE).unwrap();
        let text = to_dfg(&sys);
        let back = parse_system(&text).unwrap();
        assert_eq!(back.num_ops(), sys.num_ops());
        assert_eq!(back.num_blocks(), sys.num_blocks());
        assert_eq!(to_dfg(&back), text);
    }

    #[test]
    fn unknown_keyword_rejected() {
        let e = parse_system("frobnicate x").unwrap_err();
        assert!(matches!(e, IrError::Parse { line: 1, .. }));
    }

    #[test]
    fn op_outside_block_rejected() {
        let e = parse_system("resource add delay=1\nop x add").unwrap_err();
        assert!(matches!(e, IrError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_resource_rejected() {
        let text = "resource add delay=1\nprocess P\nblock b time=3\nop x div";
        let e = parse_system(text).unwrap_err();
        assert!(matches!(
            e,
            IrError::Unknown {
                kind: "resource",
                ..
            }
        ));
    }

    #[test]
    fn unknown_edge_target_rejected() {
        let text = "resource add delay=1\nprocess P\nblock b time=3\nop x add\nedge x y";
        let e = parse_system(text).unwrap_err();
        assert!(matches!(e, IrError::Unknown { kind: "op", .. }));
    }

    #[test]
    fn bad_delay_rejected() {
        let e = parse_system("resource add delay=zap").unwrap_err();
        assert!(matches!(e, IrError::Parse { line: 1, .. }));
    }

    #[test]
    fn resource_after_process_rejected() {
        let text = "process P\nresource add delay=1";
        let e = parse_system(text).unwrap_err();
        assert!(matches!(e, IrError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# only comments\n\n   \n# more";
        let sys = parse_system(text).unwrap();
        assert_eq!(sys.num_ops(), 0);
    }

    #[test]
    fn infeasible_deadline_propagates() {
        let text = "resource add delay=1\nprocess P\nblock b time=1\nop x add\nop y add\nedge x y";
        let e = parse_system(text).unwrap_err();
        assert!(matches!(e, IrError::InfeasibleDeadline { .. }));
    }
}
