//! Operations: the atomic schedulable units of a data-flow graph.

use std::fmt;

use crate::block::BlockId;
use crate::resource::ResourceTypeId;

/// Identifier of an [`Operation`] inside a [`crate::System`].
///
/// Ids are dense across the whole system (not per block), which allows
/// schedulers to use flat `Vec`s indexed by [`OpId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Dense index of this operation within the system.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index produced by [`OpId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        OpId(index as u32)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One operation of a block's data-flow graph.
///
/// An operation executes on exactly one resource type and belongs to exactly
/// one block; precedence edges are stored on the [`crate::System`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub(crate) name: String,
    pub(crate) rtype: ResourceTypeId,
    pub(crate) block: BlockId,
}

impl Operation {
    /// Human-readable name, unique within its block.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resource type executing this operation.
    pub fn resource_type(&self) -> ResourceTypeId {
        self.rtype
    }

    /// The block this operation belongs to.
    pub fn block(&self) -> BlockId {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_round_trip() {
        let id = OpId::from_index(11);
        assert_eq!(id.index(), 11);
        assert_eq!(id.to_string(), "o11");
    }

    #[test]
    fn op_ids_order_by_index() {
        assert!(OpId(2) < OpId(10));
    }
}
