//! Graphviz DOT export for visual inspection of systems.

use std::fmt::Write as _;

use crate::system::System;

/// Renders `system` as a Graphviz digraph, one cluster per process and one
/// sub-cluster per block. Node labels carry the resource-type name.
///
/// # Example
///
/// ```
/// use tcms_ir::{dot, ResourceLibrary, ResourceType, SystemBuilder};
///
/// # fn main() -> Result<(), tcms_ir::IrError> {
/// let mut lib = ResourceLibrary::new();
/// let add = lib.add(ResourceType::new("add", 1))?;
/// let mut b = SystemBuilder::new(lib);
/// let p = b.add_process("p0");
/// let blk = b.add_block(p, "body", 3)?;
/// b.add_op(blk, "x", add)?;
/// let text = dot::to_dot(&b.build()?);
/// assert!(text.starts_with("digraph system {"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(system: &System) -> String {
    let mut out = String::from("digraph system {\n  rankdir=TB;\n  node [shape=box];\n");
    for (pid, proc) in system.processes() {
        let _ = writeln!(out, "  subgraph cluster_{pid} {{");
        let _ = writeln!(out, "    label=\"{}\";", proc.name());
        for &bid in proc.blocks() {
            let block = system.block(bid);
            let _ = writeln!(out, "    subgraph cluster_{pid}_{bid} {{");
            let _ = writeln!(
                out,
                "      label=\"{} (T={})\";",
                block.name(),
                block.time_range()
            );
            for &o in block.ops() {
                let op = system.op(o);
                let _ = writeln!(
                    out,
                    "      {o} [label=\"{}\\n{}\"];",
                    op.name(),
                    system.library().get(op.resource_type()).name()
                );
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "  }}");
    }
    for (o, _) in system.ops() {
        for &s in system.succs(o) {
            let _ = writeln!(out, "  {o} -> {s};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ResourceLibrary, ResourceType};
    use crate::system::SystemBuilder;

    #[test]
    fn dot_structure() {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p0");
        let blk = b.add_block(p, "body", 4).unwrap();
        let x = b.add_op(blk, "x", add).unwrap();
        let y = b.add_op(blk, "y", add).unwrap();
        b.add_dep(x, y).unwrap();
        let text = to_dot(&b.build().unwrap());
        assert!(text.contains("subgraph cluster_p0"));
        assert!(text.contains("label=\"body (T=4)\""));
        assert!(text.contains("o0 -> o1;"));
        assert!(text.ends_with("}\n"));
    }
}
