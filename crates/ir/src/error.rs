//! Error types reported while building, validating or parsing IR.

use std::error::Error;
use std::fmt;

/// Error raised while constructing or validating a [`crate::System`].
///
/// The `Display` messages are lowercase and concise, suitable for wrapping in
/// higher-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A resource type with the same name was already registered.
    DuplicateResource {
        /// Conflicting type name.
        name: String,
    },
    /// A resource type delay of zero was requested.
    ZeroDelay {
        /// Offending type name.
        name: String,
    },
    /// A block time range of zero was requested.
    ZeroTimeRange {
        /// Offending block name.
        name: String,
    },
    /// A dependency edge connects operations of two different blocks,
    /// violating condition (C1): blocks must be independently schedulable.
    CrossBlockEdge {
        /// Source operation name.
        from: String,
        /// Destination operation name.
        to: String,
    },
    /// A dependency edge would create a cycle inside a block.
    Cycle {
        /// Block containing the cycle.
        block: String,
    },
    /// An edge was inserted twice between the same operations.
    DuplicateEdge {
        /// Source operation name.
        from: String,
        /// Destination operation name.
        to: String,
    },
    /// A self-dependency was requested.
    SelfEdge {
        /// Offending operation name.
        op: String,
    },
    /// The critical path of a block exceeds its time range, so no schedule
    /// can meet the timing constraint.
    InfeasibleDeadline {
        /// Offending block name.
        block: String,
        /// Length of the longest dependency chain in control steps.
        critical_path: u32,
        /// Available control steps.
        time_range: u32,
    },
    /// An operation name was used twice within one block (names double as
    /// identifiers in the text formats).
    DuplicateOpName {
        /// The duplicated operation name.
        op: String,
        /// The block it was added to.
        block: String,
    },
    /// An identifier did not resolve (unknown resource/op/block/process).
    Unknown {
        /// What kind of entity was looked up (e.g. `"resource"`).
        kind: &'static str,
        /// The identifier that failed to resolve.
        name: String,
    },
    /// A parse error in the `.dfg` text format.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateResource { name } => {
                write!(f, "resource type `{name}` registered twice")
            }
            IrError::ZeroDelay { name } => {
                write!(f, "resource type `{name}` must have a delay of at least 1")
            }
            IrError::ZeroTimeRange { name } => {
                write!(f, "block `{name}` must have a time range of at least 1")
            }
            IrError::CrossBlockEdge { from, to } => {
                write!(f, "edge `{from}` -> `{to}` crosses a block boundary")
            }
            IrError::Cycle { block } => {
                write!(f, "block `{block}` contains a dependency cycle")
            }
            IrError::DuplicateEdge { from, to } => {
                write!(f, "edge `{from}` -> `{to}` inserted twice")
            }
            IrError::SelfEdge { op } => write!(f, "operation `{op}` depends on itself"),
            IrError::InfeasibleDeadline {
                block,
                critical_path,
                time_range,
            } => write!(
                f,
                "block `{block}` has critical path {critical_path} but only {time_range} steps"
            ),
            IrError::DuplicateOpName { op, block } => {
                write!(f, "operation `{op}` already exists in block `{block}`")
            }
            IrError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            IrError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            IrError::DuplicateResource { name: "add".into() },
            IrError::ZeroDelay { name: "add".into() },
            IrError::ZeroTimeRange { name: "b".into() },
            IrError::CrossBlockEdge {
                from: "a".into(),
                to: "b".into(),
            },
            IrError::Cycle { block: "b".into() },
            IrError::DuplicateEdge {
                from: "a".into(),
                to: "b".into(),
            },
            IrError::SelfEdge { op: "a".into() },
            IrError::InfeasibleDeadline {
                block: "b".into(),
                critical_path: 9,
                time_range: 5,
            },
            IrError::Unknown {
                kind: "resource",
                name: "div".into(),
            },
            IrError::DuplicateOpName {
                op: "a1".into(),
                block: "body".into(),
            },
            IrError::Parse {
                line: 3,
                message: "bad token".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(char::is_numeric));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(IrError::SelfEdge { op: "x".into() });
        assert!(e.source().is_none());
    }
}
