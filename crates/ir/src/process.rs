//! Processes: independent, reactive tasks composed of blocks.
//!
//! Processes model the paper's unit of concurrency: mutually independent
//! tasks with no synchronisation points, possibly triggered by spontaneous
//! events at run time. Scheduling keeps their independence — only the
//! periodic resource-access authorizations couple them.

use std::fmt;

use crate::block::BlockId;

/// Identifier of a [`Process`] inside a [`crate::System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// Dense index of this process within the system.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index produced by [`ProcessId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ProcessId(index as u32)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An independently running process, composed of non-overlapping blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    pub(crate) name: String,
    pub(crate) blocks: Vec<BlockId>,
}

impl Process {
    /// Human-readable name, unique within the system.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks of this process in insertion order.
    ///
    /// By condition (C2) these never overlap in execution; they behave like
    /// branches of an alternation for resource counting.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the process has no block.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_round_trip() {
        let id = ProcessId::from_index(2);
        assert_eq!(id.index(), 2);
        assert_eq!(id.to_string(), "p2");
    }
}
