//! System transformations: the process-merging baseline.
//!
//! Process merging is the classical way to share resources across
//! processes (paper §1.1): when all block starting times are known —
//! e.g. everything is triggered together — the processes can be fused
//! into one and scheduled by a plain single-process scheduler. The paper's
//! method exists because merging is *impossible* for reactive systems
//! (unpredictable triggers, unbounded loops); this transformation provides
//! the baseline for the cases where merging does work.

use crate::error::IrError;
use crate::system::{System, SystemBuilder};

/// Fuses every process of `system` into a single process with one block.
///
/// All blocks are assumed to start simultaneously at time 0; the merged
/// block's time range is the *maximum* of the original ranges, which
/// **relaxes** the deadlines of shorter blocks. The merging baseline is
/// therefore favoured in comparisons — any win of modulo sharing over it
/// is conservative.
///
/// Operation order (and thus [`crate::OpId`] indices) is preserved, so
/// schedules of the merged system can be compared op-by-op with the
/// original. Operation names are prefixed with their original process
/// name to stay unique.
///
/// # Errors
///
/// Propagates builder errors; merging a valid system never fails.
pub fn merge_processes(system: &System) -> Result<System, IrError> {
    let time_range = system
        .blocks()
        .map(|(_, b)| b.time_range())
        .max()
        .unwrap_or(1);
    let mut builder = SystemBuilder::new(system.library().clone());
    let p = builder.add_process("merged");
    let block = builder.add_block(p, "body", time_range)?;
    let mut new_ids = Vec::with_capacity(system.num_ops());
    for (o, op) in system.ops() {
        let process = system.block(op.block()).process();
        let name = format!("{}_{}", system.process(process).name(), op.name());
        new_ids.push(builder.add_op(block, name, op.resource_type())?);
        debug_assert_eq!(new_ids[o.index()].index(), o.index());
    }
    for (o, _) in system.ops() {
        for &s in system.succs(o) {
            builder.add_dep(new_ids[o.index()], new_ids[s.index()])?;
        }
    }
    builder.build()
}

/// Rebuilds `system` with every block's time range scaled by
/// `numer / denom` (rounded up), leaving processes, blocks, operations and
/// dependencies — including all ids — untouched.
///
/// This is the relaxation used by the scheduling degradation ladder: when
/// a specification is infeasible under the given deadlines, widening the
/// time constraint by a bounded factor trades latency for feasibility.
/// Scaling factors below 1 are allowed but may fail the deadline check.
///
/// # Errors
///
/// Propagates builder errors ([`IrError::InfeasibleDeadline`] if a scaled
/// range falls below a block's critical path — impossible for
/// `numer >= denom`).
///
/// # Panics
///
/// Panics if `denom` is zero.
pub fn widen_time_ranges(system: &System, numer: u32, denom: u32) -> Result<System, IrError> {
    assert!(denom > 0, "scaling denominator must be positive");
    let mut builder = SystemBuilder::new(system.library().clone());
    for pid in system.process_ids() {
        let p = builder.add_process(system.process(pid).name());
        debug_assert_eq!(p.index(), pid.index());
    }
    for (bid, block) in system.blocks() {
        let widened = ((u64::from(block.time_range()) * u64::from(numer))
            .div_ceil(u64::from(denom)))
        .min(u64::from(u32::MAX)) as u32;
        let nb = builder.add_block(block.process(), block.name(), widened)?;
        debug_assert_eq!(nb.index(), bid.index());
    }
    for (o, op) in system.ops() {
        let no = builder.add_op(op.block(), op.name(), op.resource_type())?;
        debug_assert_eq!(no.index(), o.index());
    }
    for (o, _) in system.ops() {
        for &s in system.succs(o) {
            builder.add_dep(o, s)?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_system;

    #[test]
    fn merge_preserves_ops_and_edges() {
        let (sys, t) = paper_system().unwrap();
        let merged = merge_processes(&sys).unwrap();
        assert_eq!(merged.num_processes(), 1);
        assert_eq!(merged.num_blocks(), 1);
        assert_eq!(merged.num_ops(), sys.num_ops());
        let edge_count = |s: &System| -> usize { s.op_ids().map(|o| s.succs(o).len()).sum() };
        assert_eq!(edge_count(&merged), edge_count(&sys));
        // Type mix unchanged.
        let blk = merged.block_ids().next().unwrap();
        assert_eq!(merged.ops_of_type(blk, t.mul).len(), 3 * 8 + 2 * 6);
    }

    #[test]
    fn merged_time_range_is_maximum() {
        let (sys, _) = paper_system().unwrap();
        let merged = merge_processes(&sys).unwrap();
        let blk = merged.block_ids().next().unwrap();
        assert_eq!(merged.block(blk).time_range(), 50);
        // Critical path is the max over the original blocks (17 for EWF).
        assert_eq!(merged.critical_path(blk), 17);
    }

    #[test]
    fn op_indices_preserved() {
        let (sys, _) = paper_system().unwrap();
        let merged = merge_processes(&sys).unwrap();
        for (o, op) in sys.ops() {
            let m = merged.op(o);
            assert_eq!(m.resource_type(), op.resource_type());
            assert!(m.name().ends_with(op.name()));
        }
    }

    #[test]
    fn widen_scales_ranges_and_preserves_structure() {
        let (sys, _) = paper_system().unwrap();
        let wide = widen_time_ranges(&sys, 3, 2).unwrap();
        assert_eq!(wide.num_processes(), sys.num_processes());
        assert_eq!(wide.num_blocks(), sys.num_blocks());
        assert_eq!(wide.num_ops(), sys.num_ops());
        for (bid, block) in sys.blocks() {
            let scaled = (block.time_range() * 3).div_ceil(2);
            assert_eq!(wide.block(bid).time_range(), scaled);
            assert_eq!(wide.block(bid).name(), block.name());
            assert_eq!(wide.block(bid).process(), block.process());
        }
        for (o, op) in sys.ops() {
            assert_eq!(wide.op(o).name(), op.name());
            assert_eq!(wide.op(o).resource_type(), op.resource_type());
            assert_eq!(wide.succs(o), sys.succs(o));
        }
    }

    #[test]
    fn widen_identity_factor_is_noop_on_ranges() {
        let (sys, _) = paper_system().unwrap();
        let same = widen_time_ranges(&sys, 1, 1).unwrap();
        for (bid, block) in sys.blocks() {
            assert_eq!(same.block(bid).time_range(), block.time_range());
        }
    }

    #[test]
    fn widen_below_critical_path_fails() {
        let (sys, _) = paper_system().unwrap();
        // EWF critical path is 17 over a 30-step range; 1/4 scaling gives
        // 8 < 17, which the deadline check must reject.
        assert!(matches!(
            widen_time_ranges(&sys, 1, 4),
            Err(IrError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn names_are_prefixed_and_unique() {
        let (sys, _) = paper_system().unwrap();
        let merged = merge_processes(&sys).unwrap();
        let blk = merged.block_ids().next().unwrap();
        let mut names: Vec<&str> = merged
            .block(blk)
            .ops()
            .iter()
            .map(|&o| merged.op(o).name())
            .collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
        assert!(names.iter().any(|n| n.starts_with("P1_")));
    }
}
