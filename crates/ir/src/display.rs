//! Textual rendering of systems in the `.dfg` format.
//!
//! The format is line based and round-trips through [`crate::parse`]:
//!
//! ```text
//! # comment
//! resource add delay=1 area=1
//! resource mul delay=2 area=4 pipelined
//! process P1
//! block body time=30
//! op a1 add
//! op m1 mul
//! edge a1 m1
//! ```

use std::fmt::Write as _;

use crate::system::System;

/// Renders `system` in the `.dfg` text format.
///
/// The output parses back into an equivalent system via
/// [`crate::parse::parse_system`].
///
/// # Example
///
/// ```
/// use tcms_ir::{display, parse, ResourceLibrary, ResourceType, SystemBuilder};
///
/// # fn main() -> Result<(), tcms_ir::IrError> {
/// let mut lib = ResourceLibrary::new();
/// let add = lib.add(ResourceType::new("add", 1))?;
/// let mut b = SystemBuilder::new(lib);
/// let p = b.add_process("p0");
/// let blk = b.add_block(p, "body", 4)?;
/// b.add_op(blk, "x", add)?;
/// let sys = b.build()?;
/// let text = display::to_dfg(&sys);
/// let back = parse::parse_system(&text)?;
/// assert_eq!(back.num_ops(), 1);
/// # Ok(())
/// # }
/// ```
pub fn to_dfg(system: &System) -> String {
    let mut out = String::new();
    for (_, rt) in system.library().iter() {
        let _ = write!(
            out,
            "resource {} delay={} area={}",
            rt.name(),
            rt.delay(),
            rt.area()
        );
        if rt.is_pipelined() {
            out.push_str(" pipelined");
        }
        out.push('\n');
    }
    for (_, proc) in system.processes() {
        let _ = writeln!(out, "process {}", proc.name());
        for &bid in proc.blocks() {
            let block = system.block(bid);
            let _ = writeln!(out, "block {} time={}", block.name(), block.time_range());
            for &o in block.ops() {
                let op = system.op(o);
                let _ = writeln!(
                    out,
                    "op {} {}",
                    op.name(),
                    system.library().get(op.resource_type()).name()
                );
            }
            for &o in block.ops() {
                for &s in system.succs(o) {
                    let _ = writeln!(out, "edge {} {}", system.op(o).name(), system.op(s).name());
                }
            }
        }
    }
    out
}

/// One-line summary of a system: process/block/op counts per type.
pub fn summary(system: &System) -> String {
    let mut per_type = vec![0usize; system.library().len()];
    for (_, op) in system.ops() {
        per_type[op.resource_type().index()] += 1;
    }
    let types: Vec<String> = system
        .library()
        .iter()
        .map(|(id, rt)| format!("{}x{}", per_type[id.index()], rt.name()))
        .collect();
    format!(
        "{} processes, {} blocks, {} ops ({})",
        system.num_processes(),
        system.num_blocks(),
        system.num_ops(),
        types.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ResourceLibrary, ResourceType};
    use crate::system::SystemBuilder;

    fn sample() -> System {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib
            .add(ResourceType::new("mul", 2).pipelined().with_area(4))
            .unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("P1");
        let blk = b.add_block(p, "body", 6).unwrap();
        let a = b.add_op(blk, "a1", add).unwrap();
        let m = b.add_op(blk, "m1", mul).unwrap();
        b.add_dep(a, m).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dfg_contains_all_sections() {
        let text = to_dfg(&sample());
        assert!(text.contains("resource add delay=1 area=1"));
        assert!(text.contains("resource mul delay=2 area=4 pipelined"));
        assert!(text.contains("process P1"));
        assert!(text.contains("block body time=6"));
        assert!(text.contains("op a1 add"));
        assert!(text.contains("edge a1 m1"));
    }

    #[test]
    fn summary_counts() {
        let s = summary(&sample());
        assert_eq!(s, "1 processes, 1 blocks, 2 ops (1xadd, 1xmul)");
    }
}
