//! Generic DAG utilities used on block data-flow graphs.
//!
//! The functions work on any node set with a successor function, so the
//! schedulers can reuse them on tentative sub-graphs.

use std::collections::HashMap;

use crate::op::OpId;

/// Kahn topological sort over `nodes`.
///
/// Returns `None` if the sub-graph induced by `nodes` contains a cycle.
/// Successors outside `nodes` are ignored.
pub fn topo_order<'a, S>(nodes: &[OpId], mut succs: S) -> Option<Vec<OpId>>
where
    S: FnMut(OpId) -> &'a [OpId],
{
    let in_set: HashMap<OpId, usize> = nodes.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut indeg = vec![0usize; nodes.len()];
    for &n in nodes {
        for &s in succs(n) {
            if let Some(&j) = in_set.get(&s) {
                indeg[j] += 1;
            }
        }
    }
    let mut stack: Vec<OpId> = nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| indeg[i] == 0)
        .map(|(_, &o)| o)
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(n) = stack.pop() {
        order.push(n);
        for &s in succs(n) {
            if let Some(&j) = in_set.get(&s) {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(s);
                }
            }
        }
    }
    (order.len() == nodes.len()).then_some(order)
}

/// Length of the longest weighted path through `nodes`, where each node
/// contributes `weight(node)` steps.
///
/// Returns `None` on a cycle. An empty node set has length 0.
pub fn longest_path<'a, S, W>(nodes: &[OpId], mut succs: S, mut weight: W) -> Option<u32>
where
    S: FnMut(OpId) -> &'a [OpId],
    W: FnMut(OpId) -> u32,
{
    let order = topo_order(nodes, &mut succs)?;
    let mut finish: HashMap<OpId, u32> = HashMap::with_capacity(nodes.len());
    let mut best = 0;
    for &n in &order {
        let start = finish.get(&n).copied().unwrap_or(0);
        let end = start + weight(n);
        best = best.max(end);
        for &s in succs(n) {
            let e = finish.entry(s).or_insert(0);
            *e = (*e).max(end);
        }
    }
    Some(best)
}

/// All nodes reachable from `from` (excluding `from` itself) inside `nodes`.
pub fn descendants<'a, S>(nodes: &[OpId], from: OpId, mut succs: S) -> Vec<OpId>
where
    S: FnMut(OpId) -> &'a [OpId],
{
    let in_set: std::collections::HashSet<OpId> = nodes.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![from];
    let mut out = Vec::new();
    while let Some(n) = stack.pop() {
        for &s in succs(n) {
            if in_set.contains(&s) && seen.insert(s) {
                out.push(s);
                stack.push(s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<OpId> {
        v.iter().map(|&i| OpId(i)).collect()
    }

    struct Adj(Vec<Vec<OpId>>);
    impl Adj {
        fn succs(&self, o: OpId) -> &[OpId] {
            &self.0[o.index()]
        }
    }

    #[test]
    fn topo_chain() {
        let adj = Adj(vec![ids(&[1]), ids(&[2]), vec![]]);
        let order = topo_order(&ids(&[0, 1, 2]), |o| adj.succs(o)).unwrap();
        assert_eq!(order, ids(&[0, 1, 2]));
    }

    #[test]
    fn topo_detects_cycle() {
        let adj = Adj(vec![ids(&[1]), ids(&[0])]);
        assert!(topo_order(&ids(&[0, 1]), |o| adj.succs(o)).is_none());
    }

    #[test]
    fn topo_ignores_external_successors() {
        // Node 0 points at node 5, which is not part of the node set.
        let adj = Adj(vec![ids(&[5]), vec![], vec![], vec![], vec![], vec![]]);
        let order = topo_order(&ids(&[0, 1]), |o| adj.succs(o)).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn longest_path_weighted() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3; weights 1,2,1,1 => longest 0,1,3 = 4.
        let adj = Adj(vec![ids(&[1, 2]), ids(&[3]), ids(&[3]), vec![]]);
        let w = [1, 2, 1, 1];
        let lp = longest_path(&ids(&[0, 1, 2, 3]), |o| adj.succs(o), |o| w[o.index()]).unwrap();
        assert_eq!(lp, 4);
    }

    #[test]
    fn longest_path_empty() {
        let adj = Adj(vec![]);
        assert_eq!(longest_path(&[], |o| adj.succs(o), |_| 1), Some(0));
    }

    #[test]
    fn longest_path_parallel_nodes() {
        let adj = Adj(vec![vec![], vec![]]);
        let lp = longest_path(&ids(&[0, 1]), |o| adj.succs(o), |_| 3).unwrap();
        assert_eq!(lp, 3);
    }

    #[test]
    fn descendants_diamond() {
        let adj = Adj(vec![ids(&[1, 2]), ids(&[3]), ids(&[3]), vec![]]);
        let mut d = descendants(&ids(&[0, 1, 2, 3]), OpId(0), |o| adj.succs(o));
        d.sort();
        assert_eq!(d, ids(&[1, 2, 3]));
        assert!(descendants(&ids(&[0, 1, 2, 3]), OpId(3), |o| adj.succs(o)).is_empty());
    }
}
