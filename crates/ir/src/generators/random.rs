//! Seeded random multi-process systems for scaling benchmarks.
//!
//! Blocks are layered DAGs: operations in layer `l` may depend on
//! operations of layer `l-1`. The block time range is derived from the
//! generated critical path via a slack factor, so every generated system is
//! feasible by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::IrError;
use crate::resource::ResourceTypeId;
use crate::system::{System, SystemBuilder};

use super::{paper_library, PaperTypes};

/// Parameters for [`random_system`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSystemConfig {
    /// Number of independent processes.
    pub processes: usize,
    /// Number of blocks per process.
    pub blocks_per_process: usize,
    /// Number of DAG layers per block.
    pub layers: usize,
    /// Inclusive range of operations per layer.
    pub ops_per_layer: (usize, usize),
    /// Probability of an edge from a layer-`l-1` op to a layer-`l` op.
    pub edge_prob: f64,
    /// Time range = ceil(critical path × slack); must be ≥ 1.0.
    pub slack: f64,
    /// Relative weights of add/sub/mul operations.
    pub type_weights: [u32; 3],
}

impl Default for RandomSystemConfig {
    fn default() -> Self {
        RandomSystemConfig {
            processes: 4,
            blocks_per_process: 1,
            layers: 5,
            ops_per_layer: (2, 4),
            edge_prob: 0.5,
            slack: 2.0,
            type_weights: [4, 1, 2],
        }
    }
}

/// Generates a feasible random system with the paper's operator set.
///
/// The same `seed` and config always produce the same system.
///
/// # Errors
///
/// Propagates builder errors; the default configuration never fails.
///
/// # Panics
///
/// Panics if `slack < 1.0`, `layers == 0`, an empty `ops_per_layer` range
/// or all-zero `type_weights` are supplied.
pub fn random_system(
    config: &RandomSystemConfig,
    seed: u64,
) -> Result<(System, PaperTypes), IrError> {
    assert!(config.slack >= 1.0, "slack must be at least 1.0");
    assert!(config.layers > 0, "need at least one layer");
    assert!(
        config.ops_per_layer.0 >= 1 && config.ops_per_layer.0 <= config.ops_per_layer.1,
        "invalid ops_per_layer range"
    );
    let total_weight: u32 = config.type_weights.iter().sum();
    assert!(total_weight > 0, "type weights must not all be zero");

    let (lib, types) = paper_library();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = SystemBuilder::new(lib);

    for pi in 0..config.processes {
        let p = builder.add_process(format!("R{pi}"));
        for bi in 0..config.blocks_per_process {
            // Generate the shape first so the feasible time range is known
            // before the block is created.
            let mut layer_types: Vec<Vec<ResourceTypeId>> = Vec::with_capacity(config.layers);
            let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (layer, from, to)
            for l in 0..config.layers {
                let count = rng.random_range(config.ops_per_layer.0..=config.ops_per_layer.1);
                let mut row = Vec::with_capacity(count);
                for _ in 0..count {
                    let mut pick = rng.random_range(0..total_weight);
                    let mut idx = 0;
                    for (i, &w) in config.type_weights.iter().enumerate() {
                        if pick < w {
                            idx = i;
                            break;
                        }
                        pick -= w;
                    }
                    row.push([types.add, types.sub, types.mul][idx]);
                }
                if l > 0 {
                    for from in 0..layer_types[l - 1].len() {
                        let mut attached = false;
                        for to in 0..row.len() {
                            if rng.random_bool(config.edge_prob) {
                                edges.push((l, from, to));
                                attached = true;
                            }
                        }
                        // Keep the DAG connected between layers so the
                        // critical path grows with the layer count.
                        if !attached {
                            edges.push((l, from, rng.random_range(0..row.len())));
                        }
                    }
                }
                layer_types.push(row);
            }
            // Longest path over the generated shape.
            let delay = |t: ResourceTypeId| if t == types.mul { 2u32 } else { 1 };
            let mut finish: Vec<Vec<u32>> = Vec::with_capacity(config.layers);
            for (l, row) in layer_types.iter().enumerate() {
                let mut f: Vec<u32> = row.iter().map(|&t| delay(t)).collect();
                if l > 0 {
                    for &(el, from, to) in edges.iter().filter(|e| e.0 == l) {
                        debug_assert_eq!(el, l);
                        let start = finish[l - 1][from];
                        f[to] = f[to].max(start + delay(row[to]));
                    }
                }
                finish.push(f);
            }
            let cp = finish
                .iter()
                .flat_map(|f| f.iter().copied())
                .max()
                .unwrap_or(1);
            let time_range = ((cp as f64) * config.slack).ceil() as u32;

            let b = builder.add_block(p, format!("blk{bi}"), time_range.max(1))?;
            let mut ids: Vec<Vec<crate::op::OpId>> = Vec::with_capacity(config.layers);
            for (l, row) in layer_types.iter().enumerate() {
                let mut id_row = Vec::with_capacity(row.len());
                for (i, &t) in row.iter().enumerate() {
                    id_row.push(builder.add_op(b, format!("l{l}_o{i}"), t)?);
                }
                ids.push(id_row);
            }
            for &(l, from, to) in &edges {
                builder.add_dep(ids[l - 1][from], ids[l][to])?;
            }
        }
    }
    Ok((builder.build()?, types))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RandomSystemConfig::default();
        let (a, _) = random_system(&cfg, 7).unwrap();
        let (b, _) = random_system(&cfg, 7).unwrap();
        assert_eq!(crate::display::to_dfg(&a), crate::display::to_dfg(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomSystemConfig::default();
        let (a, _) = random_system(&cfg, 1).unwrap();
        let (b, _) = random_system(&cfg, 2).unwrap();
        assert_ne!(crate::display::to_dfg(&a), crate::display::to_dfg(&b));
    }

    #[test]
    fn generated_systems_are_feasible() {
        for seed in 0..20 {
            let cfg = RandomSystemConfig {
                processes: 3,
                blocks_per_process: 2,
                layers: 4,
                ops_per_layer: (1, 5),
                edge_prob: 0.4,
                slack: 1.5,
                type_weights: [3, 1, 2],
            };
            let (sys, _) = random_system(&cfg, seed).unwrap();
            assert_eq!(sys.num_processes(), 3);
            assert_eq!(sys.num_blocks(), 6);
            for (bid, blk) in sys.blocks() {
                assert!(sys.critical_path(bid) <= blk.time_range());
            }
        }
    }

    #[test]
    fn tight_slack_still_feasible() {
        let cfg = RandomSystemConfig {
            slack: 1.0,
            ..RandomSystemConfig::default()
        };
        let (sys, _) = random_system(&cfg, 99).unwrap();
        assert!(sys.num_ops() > 0);
    }

    #[test]
    #[should_panic(expected = "slack must be at least")]
    fn slack_below_one_panics() {
        let cfg = RandomSystemConfig {
            slack: 0.5,
            ..RandomSystemConfig::default()
        };
        let _ = random_system(&cfg, 0);
    }
}
