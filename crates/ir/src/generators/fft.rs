//! Radix-2 FFT data-flow generator.
//!
//! Generates the butterfly network of an `n`-point decimation-in-time FFT.
//! Each butterfly is modelled with one (twiddle) multiplication, one
//! addition and one subtraction; the network has `n/2 · log2(n)`
//! butterflies.

use crate::block::BlockId;
use crate::error::IrError;
use crate::op::OpId;
use crate::process::ProcessId;
use crate::system::SystemBuilder;

use super::PaperTypes;

/// Appends an `n`-point FFT process to `builder`.
///
/// # Errors
///
/// Returns a builder error for `time_range == 0`; an infeasible deadline
/// surfaces at [`SystemBuilder::build`].
///
/// # Panics
///
/// Panics unless `n` is a power of two with `n >= 2`.
pub fn add_fft_process(
    builder: &mut SystemBuilder,
    name: &str,
    n: usize,
    time_range: u32,
    types: PaperTypes,
) -> Result<(ProcessId, BlockId), IrError> {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "n must be a power of two >= 2"
    );
    let p = builder.add_process(name);
    let b = builder.add_block(p, "body", time_range)?;
    // lanes[i] holds the op currently producing lane i (None = primary input).
    let mut lanes: Vec<Option<OpId>> = vec![None; n];
    let stages = n.trailing_zeros() as usize;
    for s in 0..stages {
        let half = 1usize << s;
        let mut bf = 0usize;
        let mut base = 0usize;
        while base < n {
            for k in 0..half {
                let i = base + k;
                let j = i + half;
                let mut preds = Vec::new();
                if let Some(src) = lanes[j] {
                    preds.push(src);
                }
                let tw =
                    builder.add_op_with_preds(b, format!("s{s}_b{bf}_tw"), types.mul, &preds)?;
                let mut preds_sum = vec![tw];
                if let Some(src) = lanes[i] {
                    preds_sum.push(src);
                }
                let sum = builder.add_op_with_preds(
                    b,
                    format!("s{s}_b{bf}_add"),
                    types.add,
                    &preds_sum,
                )?;
                let diff = builder.add_op_with_preds(
                    b,
                    format!("s{s}_b{bf}_sub"),
                    types.sub,
                    &preds_sum,
                )?;
                lanes[i] = Some(sum);
                lanes[j] = Some(diff);
                bf += 1;
            }
            base += 2 * half;
        }
    }
    Ok((p, b))
}

/// Critical path of an `n`-point FFT for the paper's operator set
/// (per stage: twiddle multiply then add/sub).
pub fn fft_critical_path(n: usize, mul_delay: u32, add_delay: u32) -> u32 {
    (n.trailing_zeros()) * (mul_delay + add_delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_library;

    #[test]
    fn fft8_counts() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_fft_process(&mut b, "fft", 8, 20, types).unwrap();
        let sys = b.build().unwrap();
        // 8-point: 3 stages x 4 butterflies x 3 ops.
        assert_eq!(sys.block(blk).len(), 36);
        assert_eq!(sys.ops_of_type(blk, types.mul).len(), 12);
        assert_eq!(sys.ops_of_type(blk, types.add).len(), 12);
        assert_eq!(sys.ops_of_type(blk, types.sub).len(), 12);
        assert_eq!(sys.critical_path(blk), fft_critical_path(8, 2, 1));
    }

    #[test]
    fn fft2_is_single_butterfly() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_fft_process(&mut b, "fft", 2, 5, types).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.block(blk).len(), 3);
        assert_eq!(sys.critical_path(blk), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let _ = add_fft_process(&mut b, "fft", 6, 20, types);
    }
}
