//! Auto-regressive (AR) lattice filter generator.
//!
//! A four-stage lattice with the published operation mix of the classic AR
//! filter HLS benchmark: 16 multiplications and 12 additions (28
//! operations). Each stage multiplies its two inputs by reflection
//! coefficients, combines them, and produces two outputs for the next
//! stage.

use crate::block::BlockId;
use crate::error::IrError;
use crate::process::ProcessId;
use crate::system::SystemBuilder;

use super::PaperTypes;

/// Number of lattice stages.
pub const AR_STAGES: usize = 4;

/// Operation count of the AR lattice block.
pub const AR_OPS: usize = AR_STAGES * 7;

/// Appends a four-stage AR-lattice process to `builder`.
///
/// # Errors
///
/// Returns a builder error for `time_range == 0`; an infeasible deadline
/// surfaces at [`SystemBuilder::build`].
pub fn add_ar_lattice_process(
    builder: &mut SystemBuilder,
    name: &str,
    time_range: u32,
    types: PaperTypes,
) -> Result<(ProcessId, BlockId), IrError> {
    let p = builder.add_process(name);
    let b = builder.add_block(p, "body", time_range)?;
    let mut carry: Option<(crate::op::OpId, crate::op::OpId)> = None;
    for s in 0..AR_STAGES {
        let prev: Vec<crate::op::OpId> = match carry {
            Some((x, y)) => vec![x, y],
            None => vec![],
        };
        let m1 = builder.add_op_with_preds(b, format!("s{s}_m1"), types.mul, &prev)?;
        let m2 = builder.add_op_with_preds(b, format!("s{s}_m2"), types.mul, &prev)?;
        let a1 = builder.add_op_with_preds(b, format!("s{s}_a1"), types.add, &[m1, m2])?;
        let m3 = builder.add_op_with_preds(b, format!("s{s}_m3"), types.mul, &[a1])?;
        let m4 = builder.add_op_with_preds(b, format!("s{s}_m4"), types.mul, &[a1])?;
        let a2 = builder.add_op_with_preds(b, format!("s{s}_a2"), types.add, &[m3])?;
        let a3 = builder.add_op_with_preds(b, format!("s{s}_a3"), types.add, &[m4])?;
        carry = Some((a2, a3));
    }
    Ok((p, b))
}

/// Critical path of the AR lattice for the paper's operator set
/// (per stage: mul, add, mul, add).
pub fn ar_critical_path(mul_delay: u32, add_delay: u32) -> u32 {
    AR_STAGES as u32 * (2 * mul_delay + 2 * add_delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_library;

    #[test]
    fn ar_counts_and_critical_path() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ar_lattice_process(&mut b, "ar", 40, types).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.block(blk).len(), AR_OPS);
        assert_eq!(sys.ops_of_type(blk, types.mul).len(), 16);
        assert_eq!(sys.ops_of_type(blk, types.add).len(), 12);
        assert_eq!(sys.critical_path(blk), ar_critical_path(2, 1));
    }

    #[test]
    fn tight_deadline_feasible() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_ar_lattice_process(&mut b, "ar", ar_critical_path(2, 1), types).unwrap();
        assert!(b.build().is_ok());
    }
}
