//! Fifth-order elliptical wave filter (EWF) benchmark.
//!
//! The EWF from the 1992 HLS workshop benchmark set is the paper's main
//! workload. The original netlist is not reproduced digit-for-digit in the
//! available paper text, so this generator emits a deterministic graph
//! pinned to the benchmark's published invariants, which are all a
//! time-constrained scheduler observes:
//!
//! * 34 operations: 26 additions and 8 multiplications,
//! * critical path of exactly 17 control steps with a unit-delay adder and
//!   a two-cycle (pipelined) multiplier,
//! * a long additive spine with multiplications embedded in it and several
//!   shorter side chains of varying slack feeding the spine.
//!
//! These invariants are asserted by unit tests below.

use crate::block::BlockId;
use crate::error::IrError;
use crate::process::ProcessId;
use crate::system::SystemBuilder;

use super::PaperTypes;

/// Appends one elliptical-wave-filter process to `builder`.
///
/// The process has a single block `body` with `time_range` control steps.
///
/// # Errors
///
/// Returns [`IrError::ZeroTimeRange`] for `time_range == 0`; a
/// `time_range < 17` only surfaces at [`SystemBuilder::build`] as
/// [`IrError::InfeasibleDeadline`].
pub fn add_ewf_process(
    builder: &mut SystemBuilder,
    name: &str,
    time_range: u32,
    types: PaperTypes,
) -> Result<(ProcessId, BlockId), IrError> {
    let p = builder.add_process(name);
    let b = builder.add_block(p, "body", time_range)?;
    let add = |bld: &mut SystemBuilder, n: &str| bld.add_op(b, n, types.add);
    let mul = |bld: &mut SystemBuilder, n: &str| bld.add_op(b, n, types.mul);

    // Additive spine with two embedded multiplications:
    // a1..a3 -> m1 -> a4..a7 -> m2 -> a8..a13  (13 adds + 2 muls = 17 steps).
    let a1 = add(builder, "a1")?;
    let a2 = add(builder, "a2")?;
    let a3 = add(builder, "a3")?;
    let m1 = mul(builder, "m1")?;
    let a4 = add(builder, "a4")?;
    let a5 = add(builder, "a5")?;
    let a6 = add(builder, "a6")?;
    let a7 = add(builder, "a7")?;
    let m2 = mul(builder, "m2")?;
    let a8 = add(builder, "a8")?;
    let a9 = add(builder, "a9")?;
    let a10 = add(builder, "a10")?;
    let a11 = add(builder, "a11")?;
    let a12 = add(builder, "a12")?;
    let a13 = add(builder, "a13")?;
    let spine = [
        a1, a2, a3, m1, a4, a5, a6, a7, m2, a8, a9, a10, a11, a12, a13,
    ];
    for w in spine.windows(2) {
        builder.add_dep(w[0], w[1])?;
    }

    // Side chains (adaptor sections): 13 adds s1..s13 and 6 muls n1..n6.
    let n1 = mul(builder, "n1")?;
    let s1 = add(builder, "s1")?;
    builder.add_dep(n1, s1)?;
    builder.add_dep(s1, a4)?;

    let n2 = mul(builder, "n2")?;
    let s2 = add(builder, "s2")?;
    let s3 = add(builder, "s3")?;
    builder.add_dep(n2, s2)?;
    builder.add_dep(s2, s3)?;
    builder.add_dep(s3, a7)?;

    let n3 = mul(builder, "n3")?;
    let s4 = add(builder, "s4")?;
    builder.add_dep(n3, s4)?;
    builder.add_dep(s4, a8)?;

    let s5 = add(builder, "s5")?;
    let n4 = mul(builder, "n4")?;
    let s6 = add(builder, "s6")?;
    builder.add_dep(s5, n4)?;
    builder.add_dep(n4, s6)?;
    builder.add_dep(s6, a10)?;

    let s7 = add(builder, "s7")?;
    let s8 = add(builder, "s8")?;
    let n5 = mul(builder, "n5")?;
    builder.add_dep(s7, s8)?;
    builder.add_dep(s8, n5)?;
    builder.add_dep(n5, a11)?;

    let n6 = mul(builder, "n6")?;
    let s9 = add(builder, "s9")?;
    builder.add_dep(a3, n6)?;
    builder.add_dep(n6, s9)?;
    builder.add_dep(s9, a9)?;

    let s10 = add(builder, "s10")?;
    builder.add_dep(a5, s10)?;
    builder.add_dep(s10, a8)?;

    let s11 = add(builder, "s11")?;
    let s12 = add(builder, "s12")?;
    builder.add_dep(m1, s11)?;
    builder.add_dep(s11, s12)?;
    builder.add_dep(s12, a12)?;

    let s13 = add(builder, "s13")?;
    builder.add_dep(a8, s13)?;
    builder.add_dep(s13, a13)?;

    Ok((p, b))
}

/// Minimum feasible time range of the EWF block (its critical path).
pub const EWF_CRITICAL_PATH: u32 = 17;

/// Operation count of the EWF block.
pub const EWF_OPS: usize = 34;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_library;

    fn ewf() -> (crate::System, BlockId, PaperTypes) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_ewf_process(&mut b, "P1", 30, types).unwrap();
        (b.build().unwrap(), blk, types)
    }

    #[test]
    fn published_op_counts() {
        let (sys, blk, t) = ewf();
        assert_eq!(sys.block(blk).len(), EWF_OPS);
        assert_eq!(sys.ops_of_type(blk, t.add).len(), 26);
        assert_eq!(sys.ops_of_type(blk, t.mul).len(), 8);
        assert_eq!(sys.ops_of_type(blk, t.sub).len(), 0);
    }

    #[test]
    fn published_critical_path() {
        let (sys, blk, _) = ewf();
        assert_eq!(sys.critical_path(blk), EWF_CRITICAL_PATH);
    }

    #[test]
    fn tight_deadline_is_feasible() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_ewf_process(&mut b, "P", EWF_CRITICAL_PATH, types).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn below_critical_path_is_infeasible() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_ewf_process(&mut b, "P", EWF_CRITICAL_PATH - 1, types).unwrap();
        assert!(matches!(b.build(), Err(IrError::InfeasibleDeadline { .. })));
    }

    #[test]
    fn two_instances_are_independent() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_ewf_process(&mut b, "P1", 30, types).unwrap();
        add_ewf_process(&mut b, "P2", 50, types).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.num_ops(), 2 * EWF_OPS);
        assert_eq!(sys.num_processes(), 2);
    }
}
