//! N-tap FIR filter generator.
//!
//! `y = Σ c_i · x_i` decomposed into `n` coefficient multiplications and an
//! accumulation chain of `n-1` additions. The critical path is
//! `mul_delay + (n-1) · add_delay`.

use crate::block::BlockId;
use crate::error::IrError;
use crate::process::ProcessId;
use crate::system::SystemBuilder;

use super::PaperTypes;

/// Appends an `taps`-tap FIR filter process to `builder`.
///
/// # Errors
///
/// Returns a builder error for `time_range == 0`; an infeasible deadline
/// surfaces at [`SystemBuilder::build`].
///
/// # Panics
///
/// Panics if `taps < 2`.
pub fn add_fir_process(
    builder: &mut SystemBuilder,
    name: &str,
    taps: usize,
    time_range: u32,
    types: PaperTypes,
) -> Result<(ProcessId, BlockId), IrError> {
    assert!(taps >= 2, "a FIR filter needs at least 2 taps");
    let p = builder.add_process(name);
    let b = builder.add_block(p, "body", time_range)?;
    let mut products = Vec::with_capacity(taps);
    for i in 0..taps {
        products.push(builder.add_op(b, format!("m{i}"), types.mul)?);
    }
    let mut acc = builder.add_op_with_preds(b, "acc0", types.add, &[products[0], products[1]])?;
    for (i, &m) in products.iter().enumerate().skip(2) {
        acc = builder.add_op_with_preds(b, format!("acc{}", i - 1), types.add, &[acc, m])?;
    }
    Ok((p, b))
}

/// Critical path of an `taps`-tap FIR block for the paper's operator set.
pub fn fir_critical_path(taps: usize, mul_delay: u32, add_delay: u32) -> u32 {
    mul_delay + (taps as u32 - 1) * add_delay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_library;

    #[test]
    fn fir_counts_and_critical_path() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_fir_process(&mut b, "fir", 8, 20, types).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.block(blk).len(), 8 + 7);
        assert_eq!(sys.ops_of_type(blk, types.mul).len(), 8);
        assert_eq!(sys.ops_of_type(blk, types.add).len(), 7);
        assert_eq!(sys.critical_path(blk), fir_critical_path(8, 2, 1));
    }

    #[test]
    fn minimal_fir() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_fir_process(&mut b, "fir", 2, 3, types).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.block(blk).len(), 3);
        assert_eq!(sys.critical_path(blk), 3);
    }

    #[test]
    #[should_panic(expected = "at least 2 taps")]
    fn one_tap_panics() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let _ = add_fir_process(&mut b, "fir", 1, 10, types);
    }
}
