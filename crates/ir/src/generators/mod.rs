//! Deterministic generators for the classic HLS benchmark graphs.
//!
//! The paper's experiment (Table 1) schedules three elliptical wave filters
//! ([`ewf`]) and two differential-equation solver main loops ([`diffeq`])
//! with the HLS-workshop-1992 operator set: unit-delay adder/subtracter of
//! area 1 and a two-cycle pipelined multiplier of area 4. [`paper_library`]
//! builds exactly that operator set.
//!
//! Additional generators ([`fir`], [`ar_lattice`], [`fft`], [`random`])
//! provide larger and randomised workloads for the scaling benchmarks.

pub mod ar_lattice;
pub mod diffeq;
pub mod ewf;
pub mod fft;
pub mod fir;
pub mod random;

pub use ar_lattice::add_ar_lattice_process;
pub use diffeq::add_diffeq_process;
pub use ewf::add_ewf_process;
pub use fft::add_fft_process;
pub use fir::add_fir_process;
pub use random::{random_system, RandomSystemConfig};

use crate::error::IrError;
use crate::resource::{ResourceLibrary, ResourceType, ResourceTypeId};

/// Resource-type handles of the paper's operator set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperTypes {
    /// Unit-delay adder, area 1.
    pub add: ResourceTypeId,
    /// Unit-delay subtracter, area 1 (substitutes the comparator, as in the
    /// paper).
    pub sub: ResourceTypeId,
    /// Two-cycle pipelined multiplier, area 4.
    pub mul: ResourceTypeId,
}

/// Builds the paper's operator library: `add` (delay 1, area 1), `sub`
/// (delay 1, area 1) and `mul` (delay 2, pipelined, area 4).
///
/// # Example
///
/// ```
/// let (lib, t) = tcms_ir::generators::paper_library();
/// assert_eq!(lib.get(t.mul).delay(), 2);
/// assert!(lib.get(t.mul).is_pipelined());
/// assert_eq!(lib.get(t.add).area(), 1);
/// ```
pub fn paper_library() -> (ResourceLibrary, PaperTypes) {
    let mut lib = ResourceLibrary::new();
    let add = lib
        .add(ResourceType::new("add", 1).with_area(1))
        .expect("fresh library");
    let sub = lib
        .add(ResourceType::new("sub", 1).with_area(1))
        .expect("fresh library");
    let mul = lib
        .add(ResourceType::new("mul", 2).pipelined().with_area(4))
        .expect("fresh library");
    (lib, PaperTypes { add, sub, mul })
}

/// Builds the paper's Table-1 system: processes `P1`,`P2`,`P3` are
/// elliptical wave filters and `P4`,`P5` are diffeq solver loops.
///
/// The time constraints are the DESIGN.md substitutions for the OCR-garbled
/// values: `T(P1)=T(P2)=30`, `T(P3)=50`, `T(P4)=T(P5)=15`.
///
/// # Errors
///
/// Never fails for the fixed parameters; the `Result` mirrors the builder
/// API.
pub fn paper_system() -> Result<(crate::System, PaperTypes), IrError> {
    let (lib, types) = paper_library();
    let mut b = crate::SystemBuilder::new(lib);
    add_ewf_process(&mut b, "P1", 30, types)?;
    add_ewf_process(&mut b, "P2", 30, types)?;
    add_ewf_process(&mut b, "P3", 50, types)?;
    add_diffeq_process(&mut b, "P4", 15, types)?;
    add_diffeq_process(&mut b, "P5", 15, types)?;
    Ok((b.build()?, types))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_library_matches_paper_parameters() {
        let (lib, t) = paper_library();
        assert_eq!(lib.get(t.add).delay(), 1);
        assert_eq!(lib.get(t.sub).delay(), 1);
        assert_eq!(lib.get(t.mul).delay(), 2);
        assert_eq!(lib.get(t.mul).occupancy(), 1);
        assert_eq!(lib.get(t.add).area(), 1);
        assert_eq!(lib.get(t.sub).area(), 1);
        assert_eq!(lib.get(t.mul).area(), 4);
    }

    #[test]
    fn paper_system_shape() {
        let (sys, t) = paper_system().unwrap();
        assert_eq!(sys.num_processes(), 5);
        assert_eq!(sys.num_blocks(), 5);
        // 3 EWF x 34 ops + 2 diffeq x 11 ops.
        assert_eq!(sys.num_ops(), 3 * 34 + 2 * 11);
        // Subtraction only appears in the diffeq processes.
        let sub_users = sys.users_of_type(t.sub);
        assert_eq!(sub_users.len(), 2);
        // Adder and multiplier are used by all five processes.
        assert_eq!(sys.users_of_type(t.add).len(), 5);
        assert_eq!(sys.users_of_type(t.mul).len(), 5);
    }
}
