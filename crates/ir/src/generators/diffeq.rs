//! HAL differential-equation solver main loop.
//!
//! The canonical HLS benchmark computing one Euler step of
//! `y'' + 3xy' + 3y = 0`:
//!
//! ```text
//! u' = u - 3*x*u*dx - 3*y*dx
//! x' = x + dx
//! y' = y + u*dx
//! c  = x' < a        (comparator; substituted by a subtraction, as in the
//!                     paper's experiment)
//! ```
//!
//! Decomposed into 6 multiplications, 2 additions and 3 subtractions
//! (11 operations) with a critical path of 6 control steps for a unit-delay
//! adder/subtracter and a two-cycle multiplier.

use crate::block::BlockId;
use crate::error::IrError;
use crate::process::ProcessId;
use crate::system::SystemBuilder;

use super::PaperTypes;

/// Appends one diffeq-solver-loop process to `builder`.
///
/// The process has a single block `body` with `time_range` control steps.
///
/// # Errors
///
/// Returns [`IrError::ZeroTimeRange`] for `time_range == 0`; a
/// `time_range < 6` only surfaces at [`SystemBuilder::build`] as
/// [`IrError::InfeasibleDeadline`].
pub fn add_diffeq_process(
    builder: &mut SystemBuilder,
    name: &str,
    time_range: u32,
    types: PaperTypes,
) -> Result<(ProcessId, BlockId), IrError> {
    let p = builder.add_process(name);
    let b = builder.add_block(p, "body", time_range)?;

    let m1 = builder.add_op(b, "m1", types.mul)?; // 3 * x
    let m2 = builder.add_op(b, "m2", types.mul)?; // u * dx
    let m3 = builder.add_op_with_preds(b, "m3", types.mul, &[m1, m2])?; // 3x * u dx
    let m4 = builder.add_op(b, "m4", types.mul)?; // 3 * y
    let m5 = builder.add_op_with_preds(b, "m5", types.mul, &[m4])?; // dx * 3y
    let s1 = builder.add_op_with_preds(b, "s1", types.sub, &[m3])?; // u - m3
    let _s2 = builder.add_op_with_preds(b, "s2", types.sub, &[s1, m5])?; // u'
    let a1 = builder.add_op(b, "a1", types.add)?; // x' = x + dx
    let m6 = builder.add_op(b, "m6", types.mul)?; // u * dx (second use)
    let _a2 = builder.add_op_with_preds(b, "a2", types.add, &[m6])?; // y'
    let _s3 = builder.add_op_with_preds(b, "s3", types.sub, &[a1])?; // x' < a

    Ok((p, b))
}

/// Minimum feasible time range of the diffeq block (its critical path).
pub const DIFFEQ_CRITICAL_PATH: u32 = 6;

/// Operation count of the diffeq block.
pub const DIFFEQ_OPS: usize = 11;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_library;

    fn diffeq() -> (crate::System, BlockId, PaperTypes) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let (_, blk) = add_diffeq_process(&mut b, "P4", 15, types).unwrap();
        (b.build().unwrap(), blk, types)
    }

    #[test]
    fn canonical_op_counts() {
        let (sys, blk, t) = diffeq();
        assert_eq!(sys.block(blk).len(), DIFFEQ_OPS);
        assert_eq!(sys.ops_of_type(blk, t.mul).len(), 6);
        assert_eq!(sys.ops_of_type(blk, t.add).len(), 2);
        assert_eq!(sys.ops_of_type(blk, t.sub).len(), 3);
    }

    #[test]
    fn canonical_critical_path() {
        let (sys, blk, _) = diffeq();
        assert_eq!(sys.critical_path(blk), DIFFEQ_CRITICAL_PATH);
    }

    #[test]
    fn tight_deadline_is_feasible() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_diffeq_process(&mut b, "P", DIFFEQ_CRITICAL_PATH, types).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn below_critical_path_is_infeasible() {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        add_diffeq_process(&mut b, "P", DIFFEQ_CRITICAL_PATH - 1, types).unwrap();
        assert!(matches!(b.build(), Err(IrError::InfeasibleDeadline { .. })));
    }
}
