#![warn(missing_docs)]
//! Intermediate representation for multi-process high-level-synthesis
//! scheduling.
//!
//! This crate provides the substrate shared by every scheduler in the TCMS
//! workspace:
//!
//! * a [`ResourceLibrary`] describing operation/resource types (delay,
//!   pipelining, area cost),
//! * a [`System`] of independent [`Process`]es, each composed of
//!   statically-schedulable [`Block`]s (data-flow DAGs over [`Operation`]s),
//! * ASAP/ALAP [`frames`] computation, mobility and critical paths,
//! * structural validation of the paper's conditions (C1) and (C2),
//! * a plain-text `.dfg` format ([`parse`]/[`display`]) and DOT export,
//! * deterministic [`generators`] for the classic HLS benchmarks used in the
//!   paper (elliptical wave filter, HAL differential-equation solver) plus
//!   FIR, AR-lattice, FFT and seeded random systems.
//!
//! # Example
//!
//! ```
//! use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};
//!
//! # fn main() -> Result<(), tcms_ir::IrError> {
//! let mut lib = ResourceLibrary::new();
//! let add = lib.add(ResourceType::new("add", 1).with_area(1))?;
//! let mul = lib.add(ResourceType::new("mul", 2).pipelined().with_area(4))?;
//!
//! let mut builder = SystemBuilder::new(lib);
//! let p = builder.add_process("p0");
//! let b = builder.add_block(p, "body", 6)?;
//! let a = builder.add_op(b, "a0", add)?;
//! let m = builder.add_op(b, "m0", mul)?;
//! builder.add_dep(a, m)?;
//! let system = builder.build()?;
//! assert_eq!(system.ops().count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod canon;
pub mod display;
pub mod dot;
pub mod error;
pub mod frames;
pub mod frontend;
pub mod generators;
pub mod graph;
pub mod op;
pub mod parse;
pub mod partition;
pub mod process;
pub mod resource;
pub mod system;
pub mod transform;

pub use block::{Block, BlockId};
pub use canon::{Canonicalization, SpecHash};
pub use error::IrError;
pub use frames::{FrameTable, TimeFrame};
pub use op::{OpId, Operation};
pub use partition::{
    auto_partition_count, extract_subsystem, partition_processes, Partitioning, SubsystemMap,
};
pub use process::{Process, ProcessId};
pub use resource::{ResourceLibrary, ResourceType, ResourceTypeId};
pub use system::{System, SystemBuilder};
