//! Deterministic partitioning of a multi-process [`System`] into subgraphs.
//!
//! Because dependencies never cross block (hence process) boundaries —
//! [`crate::IrError::CrossBlockEdge`] is rejected at build time — partitioning
//! the dependency graph reduces to partitioning the *process set*. Processes
//! couple only through shared global resource types, so the partitioner
//! treats "both processes use resource type `k`" as an affinity edge weighted
//! by the type's area cost: co-locating the users of an expensive type keeps
//! its sharing decisions inside one partition, while every type whose users
//! end up spread across partitions contributes *cut edges* that the feedback
//! iteration in `tcms-core` must reconcile.
//!
//! The algorithm is seeded greedy community growth:
//!
//! 1. order processes by descending op count (seed-perturbed tie-break),
//! 2. seed each of the `k` partitions with one process from the head of the
//!    order (guaranteeing non-empty partitions),
//! 3. grow communities by assigning each remaining process to the partition
//!    with the highest affinity, subject to a balance cap, breaking ties by
//!    lowest load then lowest partition index.
//!
//! Every step is a deterministic function of `(system, k, seed)` — no
//! iteration over hash maps, no thread-count dependence — so partitionings
//! are bit-stable across runs and machines.

use crate::process::ProcessId;
use crate::resource::ResourceTypeId;
use crate::system::{System, SystemBuilder};
use crate::IrError;
use crate::{BlockId, OpId};

/// A partitioning of the process set into disjoint, non-empty parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Disjoint process sets, each sorted by process index. Union = all
    /// processes. Parts are ordered by the index of their smallest member.
    pub parts: Vec<Vec<ProcessId>>,
    /// Cut cost: for every resource type shared by ≥ 2 processes, the number
    /// of partitions containing at least one user minus one. Zero means the
    /// partitions share no resource type and scheduling decomposes exactly.
    pub cut_edges: usize,
}

impl Partitioning {
    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` if the partitioning has no parts (empty system).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// Default partition size target used by [`auto_partition_count`]: one
/// partition per this many operations.
pub const AUTO_OPS_PER_PARTITION: usize = 250;

/// Picks a partition count for `system` as a pure function of the spec:
/// one partition per started [`AUTO_OPS_PER_PARTITION`] operations —
/// keeping every subproblem *at most* the target size, which is what
/// matters given the engine's superlinear cost in ops — clamped to
/// `[1, num_processes]`.
///
/// Deliberately independent of thread count or environment so that `auto`
/// partitioning stays bit-identical across machines.
pub fn auto_partition_count(system: &System) -> usize {
    system
        .num_ops()
        .div_ceil(AUTO_OPS_PER_PARTITION)
        .max(1)
        .min(system.num_processes().max(1))
}

/// Splitmix-style hash for seed-stable tie-breaking.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Affinity between a process and a partition: sum over resource types used
/// by both of `max(area, 1)`.
fn affinity(proc_types: &[Vec<ResourceTypeId>], system: &System, p: usize, part: &[usize]) -> u64 {
    let mut total = 0u64;
    for &t in &proc_types[p] {
        let weight = system.library().get(t).area().max(1);
        if part
            .iter()
            .any(|&q| proc_types[q].binary_search(&t).is_ok())
        {
            total += weight;
        }
    }
    total
}

/// Partitions the process set of `system` into at most `k` parts.
///
/// `k` is clamped to `[1, num_processes]`. The result is a deterministic
/// function of `(system, k, seed)`; the same inputs always produce the same
/// partitioning, regardless of thread count.
///
/// # Panics
///
/// Panics if the system has no processes.
pub fn partition_processes(system: &System, k: usize, seed: u64) -> Partitioning {
    let n = system.num_processes();
    assert!(n > 0, "cannot partition an empty system");
    let k = k.clamp(1, n);

    // Per-process sorted type lists (types_used_by_process returns sorted).
    let proc_types: Vec<Vec<ResourceTypeId>> = (0..n)
        .map(|p| system.types_used_by_process(ProcessId::from_index(p)))
        .collect();
    let weight: Vec<u64> = (0..n)
        .map(|p| {
            system
                .process(ProcessId::from_index(p))
                .blocks()
                .iter()
                .map(|&b| system.block(b).len() as u64)
                .sum()
        })
        .collect();
    let total_weight: u64 = weight.iter().sum();
    // Balance cap: 15% headroom over the ideal share, but never below the
    // heaviest single process (a part must be able to hold any process).
    let cap =
        (total_weight * 115 / 100 / k as u64 + 1).max(weight.iter().copied().max().unwrap_or(1));

    // Deterministic, seed-perturbed order: heavy processes first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&p| (std::cmp::Reverse(weight[p]), mix(seed, p as u64), p));

    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut load = vec![0u64; k];
    for (i, &p) in order.iter().take(k).enumerate() {
        parts[i].push(p);
        load[i] = weight[p];
    }
    for &p in order.iter().skip(k) {
        let mut best = 0usize;
        let mut best_key = (0u64, u64::MAX); // (affinity desc, load asc)
        let mut found = false;
        for i in 0..k {
            if load[i] + weight[p] > cap {
                continue;
            }
            let a = affinity(&proc_types, system, p, &parts[i]);
            if !found || a > best_key.0 || (a == best_key.0 && load[i] < best_key.1) {
                best = i;
                best_key = (a, load[i]);
                found = true;
            }
        }
        if !found {
            // Every part is at capacity; fall back to the least loaded.
            best = (0..k).min_by_key(|&i| (load[i], i)).unwrap();
        }
        parts[best].push(p);
        load[best] += weight[p];
    }

    let mut parts: Vec<Vec<ProcessId>> = parts
        .into_iter()
        .map(|mut part| {
            part.sort_unstable();
            part.into_iter().map(ProcessId::from_index).collect()
        })
        .collect();
    parts.sort_by_key(|part| part.first().map_or(u32::MAX, |p| p.index() as u32));

    let cut_edges = cut_cost(system, &parts);
    Partitioning { parts, cut_edges }
}

/// Cut cost of a partitioning: Σ over shared resource types of
/// (#partitions containing a user − 1).
pub fn cut_cost(system: &System, parts: &[Vec<ProcessId>]) -> usize {
    let mut part_of = vec![usize::MAX; system.num_processes()];
    for (i, part) in parts.iter().enumerate() {
        for &p in part {
            part_of[p.index()] = i;
        }
    }
    let mut cut = 0usize;
    for (t, _) in system.library().iter() {
        let users = system.users_of_type(t);
        if users.len() < 2 {
            continue;
        }
        let mut seen = vec![false; parts.len()];
        let mut spread = 0usize;
        for &p in &users {
            let i = part_of[p.index()];
            if i != usize::MAX && !seen[i] {
                seen[i] = true;
                spread += 1;
            }
        }
        cut += spread.saturating_sub(1);
    }
    cut
}

/// Id maps from a subsystem extracted by [`extract_subsystem`] back to the
/// full system. Indexed by the *subsystem* id's dense index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsystemMap {
    /// `ops[sub_op.index()]` is the full-system op id.
    pub ops: Vec<OpId>,
    /// `blocks[sub_block.index()]` is the full-system block id.
    pub blocks: Vec<BlockId>,
    /// `processes[sub_process.index()]` is the full-system process id.
    pub processes: Vec<ProcessId>,
}

/// Extracts the subsystem induced by `processes` (with the full resource
/// library, so [`ResourceTypeId`]s stay aligned with the parent system).
///
/// Processes are emitted in the order given; blocks and operations keep
/// their insertion order within each process, and all intra-block edges are
/// preserved. Returns the subsystem plus id maps back to the full system.
///
/// # Errors
///
/// Propagates [`IrError`] from the builder; a subsystem of a valid system is
/// itself valid, so errors indicate ids foreign to `system`.
pub fn extract_subsystem(
    system: &System,
    processes: &[ProcessId],
) -> Result<(System, SubsystemMap), IrError> {
    let mut builder = SystemBuilder::new(system.library().clone());
    let mut map = SubsystemMap {
        ops: Vec::new(),
        blocks: Vec::new(),
        processes: Vec::new(),
    };
    let mut op_to_sub = vec![None; system.num_ops()];
    for &p in processes {
        let sub_p = builder.add_process(system.process(p).name());
        map.processes.push(p);
        debug_assert_eq!(sub_p.index(), map.processes.len() - 1);
        for &b in system.process(p).blocks() {
            let block = system.block(b);
            let sub_b = builder.add_block(sub_p, block.name(), block.time_range())?;
            map.blocks.push(b);
            debug_assert_eq!(sub_b.index(), map.blocks.len() - 1);
            for &o in block.ops() {
                let op = system.op(o);
                let sub_o = builder.add_op(sub_b, op.name(), op.resource_type())?;
                map.ops.push(o);
                op_to_sub[o.index()] = Some(sub_o);
            }
        }
    }
    // Edges second: all ops of a block exist before its edges are added.
    for (i, &full_op) in map.ops.iter().enumerate() {
        let sub_from = OpId::from_index(i);
        for &succ in system.succs(full_op) {
            let sub_to = op_to_sub[succ.index()]
                .expect("successor is in the same block, hence the same subsystem");
            builder.add_dep(sub_from, sub_to)?;
        }
    }
    Ok((builder.build()?, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::{random_system, RandomSystemConfig};
    use crate::resource::{ResourceLibrary, ResourceType};

    fn sample_system(processes: usize, seed: u64) -> System {
        let config = RandomSystemConfig {
            processes,
            ..RandomSystemConfig::default()
        };
        random_system(&config, seed).unwrap().0
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let sys = sample_system(6, 1);
        for k in 1..=7 {
            let part = partition_processes(&sys, k, 42);
            assert_eq!(part.len(), k.min(6));
            let mut seen = vec![false; sys.num_processes()];
            for part in &part.parts {
                assert!(!part.is_empty(), "no part may be empty");
                for &p in part {
                    assert!(!seen[p.index()], "process assigned twice");
                    seen[p.index()] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every process assigned");
        }
    }

    #[test]
    fn partitioning_is_seed_stable() {
        let sys = sample_system(8, 3);
        let a = partition_processes(&sys, 3, 7);
        let b = partition_processes(&sys, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_contains_everything_in_order() {
        let sys = sample_system(4, 9);
        let part = partition_processes(&sys, 1, 0);
        assert_eq!(part.len(), 1);
        let expected: Vec<ProcessId> = sys.process_ids().collect();
        assert_eq!(part.parts[0], expected);
        assert_eq!(part.cut_edges, 0);
    }

    #[test]
    fn auto_count_scales_with_ops() {
        let sys = sample_system(2, 5);
        assert_eq!(auto_partition_count(&sys), 1);
        let big = sample_system(12, 5);
        let k = auto_partition_count(&big);
        assert!(k >= 1 && k <= big.num_processes());
    }

    #[test]
    fn extract_subsystem_preserves_structure() {
        let sys = sample_system(5, 11);
        let part = partition_processes(&sys, 2, 0);
        let mut total_ops = 0;
        for processes in &part.parts {
            let (sub, map) = extract_subsystem(&sys, processes).unwrap();
            total_ops += sub.num_ops();
            assert_eq!(sub.num_processes(), processes.len());
            assert_eq!(map.ops.len(), sub.num_ops());
            // Names, types and block ranges survive extraction.
            for (sub_o, op) in sub.ops() {
                let full = sys.op(map.ops[sub_o.index()]);
                assert_eq!(op.name(), full.name());
                assert_eq!(op.resource_type(), full.resource_type());
            }
            for (sub_b, block) in sub.blocks() {
                let full = sys.block(map.blocks[sub_b.index()]);
                assert_eq!(block.time_range(), full.time_range());
                assert_eq!(block.len(), full.len());
            }
            // Edge structure survives modulo the id maps.
            for (sub_o, _) in sub.ops() {
                let full_o = map.ops[sub_o.index()];
                let mut sub_succs: Vec<OpId> = sub
                    .succs(sub_o)
                    .iter()
                    .map(|&s| map.ops[s.index()])
                    .collect();
                sub_succs.sort_unstable();
                let mut full_succs: Vec<OpId> = sys.succs(full_o).to_vec();
                full_succs.sort_unstable();
                assert_eq!(sub_succs, full_succs);
            }
        }
        assert_eq!(total_ops, sys.num_ops());
    }

    #[test]
    fn extracting_all_processes_in_order_keeps_op_count_and_names() {
        let sys = sample_system(3, 2);
        let all: Vec<ProcessId> = sys.process_ids().collect();
        let (sub, map) = extract_subsystem(&sys, &all).unwrap();
        assert_eq!(sub.num_ops(), sys.num_ops());
        assert_eq!(sub.num_blocks(), sys.num_blocks());
        assert_eq!(map.processes, all);
    }

    #[test]
    fn cut_cost_counts_spread_types() {
        // Two processes sharing one type, split across two parts => 1 cut.
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p0 = b.add_process("p0");
        let p1 = b.add_process("p1");
        let b0 = b.add_block(p0, "b", 4).unwrap();
        let b1 = b.add_block(p1, "b", 4).unwrap();
        b.add_op(b0, "x", add).unwrap();
        b.add_op(b1, "y", add).unwrap();
        let sys = b.build().unwrap();
        let split = vec![vec![p0], vec![p1]];
        assert_eq!(cut_cost(&sys, &split), 1);
        let together = vec![vec![p0, p1]];
        assert_eq!(cut_cost(&sys, &together), 0);
    }
}
