//! ASAP/ALAP time frames and constrained frame propagation.
//!
//! A *time frame* is the inclusive range of start times an operation may
//! still take. Force-directed schedulers work by gradually shrinking frames;
//! every shrink is propagated through the precedence constraints with
//! [`constrained_frames`].

use crate::block::BlockId;
use crate::op::OpId;
use crate::system::System;

/// Inclusive range of feasible start times for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeFrame {
    /// Earliest feasible start time (as soon as possible).
    pub asap: u32,
    /// Latest feasible start time (as late as possible).
    pub alap: u32,
}

impl TimeFrame {
    /// Creates a frame; `asap` must not exceed `alap`.
    ///
    /// # Panics
    ///
    /// Panics if `asap > alap`.
    pub fn new(asap: u32, alap: u32) -> Self {
        assert!(asap <= alap, "empty time frame {asap}..{alap}");
        TimeFrame { asap, alap }
    }

    /// Number of feasible start times.
    #[inline]
    pub fn width(self) -> u32 {
        self.alap - self.asap + 1
    }

    /// `true` once only a single start time remains.
    #[inline]
    pub fn is_fixed(self) -> bool {
        self.asap == self.alap
    }

    /// `true` if `t` is a feasible start time.
    #[inline]
    pub fn contains(self, t: u32) -> bool {
        self.asap <= t && t <= self.alap
    }

    /// Intersection with another frame, `None` if disjoint.
    pub fn intersect(self, other: TimeFrame) -> Option<TimeFrame> {
        let asap = self.asap.max(other.asap);
        let alap = self.alap.min(other.alap);
        (asap <= alap).then_some(TimeFrame { asap, alap })
    }
}

/// Start-time frames for every operation of a system, indexed by [`OpId`].
///
/// The table is *change-tracking*: every effective [`FrameTable::set`]
/// bumps a table-wide [generation counter](FrameTable::generation), stamps
/// the touched operation with it and records the operation in a dirty set.
/// Downstream layers (distribution graphs, force caches) key their cached
/// state on these stamps to tell exactly what moved since their last look
/// without diffing the whole table.
///
/// Equality ([`PartialEq`]) compares the frames only, not the tracking
/// state, so tables reaching the same frames along different histories
/// compare equal.
#[derive(Debug, Clone)]
pub struct FrameTable {
    frames: Vec<TimeFrame>,
    /// Total number of effective frame changes since construction.
    generation: u64,
    /// Generation at which each op's frame last changed (0 = untouched).
    op_generation: Vec<u64>,
    /// Ops changed since the last [`FrameTable::take_dirty`], deduplicated.
    dirty: Vec<OpId>,
    dirty_flags: Vec<bool>,
}

impl PartialEq for FrameTable {
    fn eq(&self, other: &Self) -> bool {
        self.frames == other.frames
    }
}

impl Eq for FrameTable {}

impl FrameTable {
    /// Computes the unconstrained ASAP/ALAP frames of every block.
    ///
    /// # Panics
    ///
    /// Panics if any block is infeasible; [`crate::SystemBuilder::build`]
    /// guarantees feasibility for built systems.
    pub fn initial(system: &System) -> Self {
        let mut frames = vec![TimeFrame { asap: 0, alap: 0 }; system.num_ops()];
        for (bid, block) in system.blocks() {
            let max = |o: OpId| block.time_range() - system.delay(o);
            let solved = constrained_frames(system, bid, |o| TimeFrame::new(0, max(o)))
                .expect("built systems have feasible deadlines");
            for (o, f) in solved {
                frames[o.index()] = f;
            }
        }
        let n = frames.len();
        FrameTable {
            frames,
            generation: 0,
            op_generation: vec![0; n],
            dirty: Vec::new(),
            dirty_flags: vec![false; n],
        }
    }

    /// The current frame of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to the originating system.
    #[inline]
    pub fn get(&self, op: OpId) -> TimeFrame {
        self.frames[op.index()]
    }

    /// Overwrites the frame of `op`, recording the change.
    ///
    /// Setting the frame an op already has is a no-op: it neither bumps the
    /// generation nor dirties the op.
    #[inline]
    pub fn set(&mut self, op: OpId, frame: TimeFrame) {
        let i = op.index();
        if self.frames[i] == frame {
            return;
        }
        self.frames[i] = frame;
        self.generation += 1;
        self.op_generation[i] = self.generation;
        if !self.dirty_flags[i] {
            self.dirty_flags[i] = true;
            self.dirty.push(op);
        }
    }

    /// Count of effective frame changes since construction. Strictly
    /// monotone: two observations with the same generation guarantee no
    /// frame moved in between.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation at which `op`'s frame last changed (0 if it still has
    /// its initial frame).
    #[inline]
    pub fn op_generation(&self, op: OpId) -> u64 {
        self.op_generation[op.index()]
    }

    /// Ops whose frames changed since the last [`FrameTable::take_dirty`]
    /// (or construction), in first-touched order.
    pub fn dirty(&self) -> &[OpId] {
        &self.dirty
    }

    /// Drains and returns the dirty set.
    pub fn take_dirty(&mut self) -> Vec<OpId> {
        for o in &self.dirty {
            self.dirty_flags[o.index()] = false;
        }
        std::mem::take(&mut self.dirty)
    }

    /// Mobility of `op` (frame width minus one).
    #[inline]
    pub fn mobility(&self, op: OpId) -> u32 {
        self.get(op).width() - 1
    }

    /// `true` once every operation of `block` is fixed to one start time.
    pub fn block_fixed(&self, system: &System, block: BlockId) -> bool {
        system
            .block(block)
            .ops()
            .iter()
            .all(|&o| self.get(o).is_fixed())
    }

    /// Sum of all frame widths minus the operation count: the remaining
    /// scheduling freedom. Zero means fully scheduled.
    pub fn total_mobility(&self) -> u64 {
        self.frames.iter().map(|f| (f.width() - 1) as u64).sum()
    }

    /// Extracts the start time of a fixed operation.
    ///
    /// # Panics
    ///
    /// Panics if the frame still has more than one feasible start time.
    pub fn fixed_start(&self, op: OpId) -> u32 {
        let f = self.get(op);
        assert!(f.is_fixed(), "operation {op} not yet fixed");
        f.asap
    }
}

/// Recomputes consistent frames for all operations of `block`, treating
/// `bounds(op)` as hard start-time bounds.
///
/// Propagation runs a forward ASAP pass and a backward ALAP pass over a
/// topological order. Returns `None` if the bounds are contradictory (some
/// frame becomes empty), which schedulers interpret as "this tentative
/// placement is impossible".
pub fn constrained_frames(
    system: &System,
    block: BlockId,
    mut bounds: impl FnMut(OpId) -> TimeFrame,
) -> Option<Vec<(OpId, TimeFrame)>> {
    let order = system.topo_order(block);
    let n = system.num_ops();
    let mut asap = vec![0u32; n];
    let mut alap = vec![0u32; n];
    // Forward: earliest starts.
    for &o in order {
        let mut lo = bounds(o).asap;
        for &p in system.preds(o) {
            lo = lo.max(asap[p.index()] + system.delay(p));
        }
        asap[o.index()] = lo;
    }
    // Backward: latest starts.
    for &o in order.iter().rev() {
        let mut hi = bounds(o).alap;
        for &s in system.succs(o) {
            let latest_pred_start = alap[s.index()].checked_sub(system.delay(o))?;
            hi = hi.min(latest_pred_start);
        }
        if asap[o.index()] > hi {
            return None;
        }
        alap[o.index()] = hi;
    }
    Some(
        order
            .iter()
            .map(|&o| {
                (
                    o,
                    TimeFrame {
                        asap: asap[o.index()],
                        alap: alap[o.index()],
                    },
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ResourceLibrary, ResourceType};
    use crate::system::SystemBuilder;

    fn chain_system() -> (System, BlockId, Vec<OpId>) {
        let mut lib = ResourceLibrary::new();
        let add = lib.add(ResourceType::new("add", 1)).unwrap();
        let mul = lib.add(ResourceType::new("mul", 2).pipelined()).unwrap();
        let mut b = SystemBuilder::new(lib);
        let p = b.add_process("p");
        let blk = b.add_block(p, "b", 8).unwrap();
        // a(1) -> m(2) -> c(1), plus independent d(1).
        let a = b.add_op(blk, "a", add).unwrap();
        let m = b.add_op(blk, "m", mul).unwrap();
        let c = b.add_op(blk, "c", add).unwrap();
        let d = b.add_op(blk, "d", add).unwrap();
        b.add_dep(a, m).unwrap();
        b.add_dep(m, c).unwrap();
        let sys = b.build().unwrap();
        (sys, blk, vec![a, m, c, d])
    }

    #[test]
    fn frame_basics() {
        let f = TimeFrame::new(2, 5);
        assert_eq!(f.width(), 4);
        assert!(!f.is_fixed());
        assert!(f.contains(2) && f.contains(5) && !f.contains(6));
        assert_eq!(
            f.intersect(TimeFrame::new(4, 9)),
            Some(TimeFrame::new(4, 5))
        );
        assert_eq!(f.intersect(TimeFrame::new(6, 9)), None);
        assert!(TimeFrame::new(3, 3).is_fixed());
    }

    #[test]
    #[should_panic(expected = "empty time frame")]
    fn inverted_frame_panics() {
        let _ = TimeFrame::new(5, 2);
    }

    #[test]
    fn initial_frames_chain() {
        let (sys, _, ops) = chain_system();
        let ft = FrameTable::initial(&sys);
        // Chain a(1) m(2) c(1) in 8 steps: slack 4.
        assert_eq!(ft.get(ops[0]), TimeFrame::new(0, 4)); // a
        assert_eq!(ft.get(ops[1]), TimeFrame::new(1, 5)); // m
        assert_eq!(ft.get(ops[2]), TimeFrame::new(3, 7)); // c
        assert_eq!(ft.get(ops[3]), TimeFrame::new(0, 7)); // d independent
        assert_eq!(ft.mobility(ops[0]), 4);
    }

    #[test]
    fn constrained_propagation_forward_and_backward() {
        let (sys, blk, ops) = chain_system();
        let ft = FrameTable::initial(&sys);
        // Pin m to start at 5 -> a must end by 5, c must start at 7.
        let solved = constrained_frames(&sys, blk, |o| {
            if o == ops[1] {
                TimeFrame::new(5, 5)
            } else {
                ft.get(o)
            }
        })
        .unwrap();
        let find = |o: OpId| solved.iter().find(|(q, _)| *q == o).unwrap().1;
        assert_eq!(find(ops[0]), TimeFrame::new(0, 4));
        assert_eq!(find(ops[1]), TimeFrame::new(5, 5));
        assert_eq!(find(ops[2]), TimeFrame::new(7, 7));
        assert_eq!(find(ops[3]), TimeFrame::new(0, 7));
    }

    #[test]
    fn contradictory_bounds_return_none() {
        let (sys, blk, ops) = chain_system();
        // a not before 5 and m not after 4 is impossible.
        let r = constrained_frames(&sys, blk, |o| {
            if o == ops[0] {
                TimeFrame::new(5, 7)
            } else if o == ops[1] {
                TimeFrame::new(1, 4)
            } else {
                TimeFrame::new(0, 7)
            }
        });
        assert!(r.is_none());
    }

    #[test]
    fn fixed_start_and_block_fixed() {
        let (sys, blk, ops) = chain_system();
        let mut ft = FrameTable::initial(&sys);
        assert!(!ft.block_fixed(&sys, blk));
        for (i, &o) in ops.iter().enumerate() {
            let t = [0u32, 1, 3, 0][i];
            ft.set(o, TimeFrame::new(t, t));
        }
        assert!(ft.block_fixed(&sys, blk));
        assert_eq!(ft.fixed_start(ops[2]), 3);
        assert_eq!(ft.total_mobility(), 0);
    }

    #[test]
    #[should_panic(expected = "not yet fixed")]
    fn fixed_start_panics_on_wide_frame() {
        let (sys, _, ops) = chain_system();
        let ft = FrameTable::initial(&sys);
        let _ = ft.fixed_start(ops[0]);
    }

    #[test]
    fn total_mobility_matches_sum() {
        let (sys, _, _) = chain_system();
        let ft = FrameTable::initial(&sys);
        assert_eq!(ft.total_mobility(), 4 + 4 + 4 + 7);
    }

    #[test]
    fn generation_counts_effective_changes_only() {
        let (sys, _, ops) = chain_system();
        let mut ft = FrameTable::initial(&sys);
        assert_eq!(ft.generation(), 0);
        assert_eq!(ft.op_generation(ops[0]), 0);

        ft.set(ops[0], ft.get(ops[0])); // identical frame: no-op
        assert_eq!(ft.generation(), 0);
        assert!(ft.dirty().is_empty());

        ft.set(ops[0], TimeFrame::new(1, 4));
        assert_eq!(ft.generation(), 1);
        assert_eq!(ft.op_generation(ops[0]), 1);
        ft.set(ops[1], TimeFrame::new(2, 5));
        assert_eq!(ft.generation(), 2);
        assert_eq!(ft.op_generation(ops[1]), 2);
        // Re-touching an op keeps it listed once but restamps it.
        ft.set(ops[0], TimeFrame::new(2, 4));
        assert_eq!(ft.generation(), 3);
        assert_eq!(ft.op_generation(ops[0]), 3);
        assert_eq!(ft.dirty(), &[ops[0], ops[1]]);
    }

    #[test]
    fn take_dirty_drains_and_rearms() {
        let (sys, _, ops) = chain_system();
        let mut ft = FrameTable::initial(&sys);
        ft.set(ops[2], TimeFrame::new(4, 7));
        assert_eq!(ft.take_dirty(), vec![ops[2]]);
        assert!(ft.dirty().is_empty());
        // The op can get dirty again after the drain.
        ft.set(ops[2], TimeFrame::new(5, 7));
        assert_eq!(ft.dirty(), &[ops[2]]);
        assert_eq!(ft.generation(), 2);
    }

    #[test]
    fn equality_ignores_tracking_state() {
        let (sys, _, ops) = chain_system();
        let a = FrameTable::initial(&sys);
        let mut b = FrameTable::initial(&sys);
        let orig = b.get(ops[0]);
        b.set(ops[0], TimeFrame::new(1, 4));
        b.set(ops[0], orig); // same frames as `a`, different history
        assert_eq!(a, b);
        assert_ne!(a.generation(), b.generation());
    }
}
