//! Blocks: statically schedulable data-flow graphs with a time budget.
//!
//! A block is the unit of static scheduling — a connected subset of a
//! process description whose operations receive a fixed time step relative
//! to the block's (run-time, possibly unknown) starting time. This is the
//! paper's condition (C1). Blocks of one process must never overlap in
//! execution (condition (C2)); loop bodies are therefore separate blocks.

use std::fmt;

use crate::op::OpId;
use crate::process::ProcessId;

/// Identifier of a [`Block`] inside a [`crate::System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Dense index of this block within the system.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index produced by [`BlockId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        BlockId(index as u32)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A statically scheduled data-flow graph with a time-constrained range.
///
/// Operations and edges live in the owning [`crate::System`]; the block
/// records membership, its name and its *time range*: the number of control
/// steps `0..time_range` available to the block (the time constraint of
/// time-constrained scheduling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pub(crate) name: String,
    pub(crate) process: ProcessId,
    pub(crate) time_range: u32,
    pub(crate) ops: Vec<OpId>,
}

impl Block {
    /// Human-readable name, unique within its process.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process this block belongs to.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Number of control steps available: operations must finish within
    /// `0..time_range` relative to the block start.
    pub fn time_range(&self) -> u32 {
        self.time_range
    }

    /// Operations of this block in insertion order.
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Number of operations in this block.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the block contains no operation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_round_trip() {
        let id = BlockId::from_index(4);
        assert_eq!(id.index(), 4);
        assert_eq!(id.to_string(), "b4");
    }
}
