//! The modified force model (paper §5, equation 10).
//!
//! The modification is two-part:
//!
//! 1. **Periodic alignment** (§5.1): for globally shared types the spring
//!    displacement is measured on the modulo-max-transformed profile, so
//!    changes hidden under the slot maximum are free and operations align
//!    to already-authorized slots.
//! 2. **Global balancing** (§5.2): the springs themselves are the
//!    group-summed profile `G_k`, so the force balances the requirement
//!    across all processes of the sharing group.
//!
//! Local types keep the classical per-block force, and precedence-implied
//! frame changes are priced exactly like in the unmodified algorithm.

use tcms_fds::{FdsConfig, ForceEvaluator};
use tcms_ir::{BlockId, FrameTable, OpId, ResourceTypeId, System, TimeFrame};
use tcms_obs::{Recorder, TimelinePoint};

use crate::assign::SharingSpec;
use crate::field::ModuloField;

/// Force evaluator implementing the two-part modification of the IFDS
/// algorithm. Plugs into [`tcms_fds::IfdsEngine`].
///
/// # Context stamps
///
/// The evaluator supports the engine's candidate-force cache through
/// [`ForceEvaluator::context_stamp`], maintained at three granularities
/// mirroring the field's layers:
///
/// * per block — the classical distribution `D_{b,k}` moved,
/// * per process — some block's modulo-max `D̂` moved, which sibling
///   blocks of the same process read through `M_p`,
/// * per type — the group profile `G_k` moved, which every process of the
///   sharing group reads.
///
/// Commits hidden under the slot maximum (the modulo-hiding effect) stop
/// at the block or process level, so cached forces of the *other*
/// processes in the group survive — the main source of incremental reuse
/// under all-global sharing.
#[derive(Debug, Clone)]
pub struct ModuloEvaluator<'a> {
    system: &'a System,
    config: FdsConfig,
    field: ModuloField<'a>,
    /// Monotone counter the stamps below are drawn from.
    counter: u64,
    /// Last mutation of a block's distribution `D_{b,·}`.
    block_epoch: Vec<u64>,
    /// Last mutation of any `D̂` profile of the process's blocks.
    proc_epoch: Vec<u64>,
    /// Last mutation of the group profile `G_k`.
    type_epoch: Vec<u64>,
    /// `proc_global_types[p]`: global types process `p` shares in.
    proc_global_types: Vec<Vec<ResourceTypeId>>,
}

impl<'a> ModuloEvaluator<'a> {
    /// Builds the evaluator; `frames` must be the engine's initial table.
    pub fn new(
        system: &'a System,
        spec: SharingSpec,
        config: FdsConfig,
        frames: &FrameTable,
    ) -> Self {
        let proc_global_types = system
            .process_ids()
            .map(|p| {
                system
                    .library()
                    .ids()
                    .filter(|&k| spec.is_global_for(k, p))
                    .collect()
            })
            .collect();
        ModuloEvaluator {
            system,
            config,
            field: ModuloField::new(system, spec, frames),
            counter: 0,
            block_epoch: vec![0; system.num_blocks()],
            proc_epoch: vec![0; system.num_processes()],
            type_epoch: vec![0; system.library().len()],
            proc_global_types,
        }
    }

    /// Read access to the maintained field (used by reports and tests).
    pub fn field(&self) -> &ModuloField<'a> {
        &self.field
    }

    /// Reference force computed against a field rebuilt from scratch out
    /// of `frames` — the oracle the incremental path is property-tested
    /// against. Slow by design; only compiled for tests and the
    /// `naive-oracle` feature.
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn force_naive(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        let rebuilt = ModuloField::new(self.system, self.field.spec().clone(), frames);
        self.force_with_field(&rebuilt, frames, changed)
    }

    fn force_with_field(
        &self,
        field: &ModuloField<'_>,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
    ) -> f64 {
        let (keys, bufs) = self.deltas(frames, changed);
        let spec = field.spec();
        let mut total = 0.0;
        for (i, &(b, k)) in keys.iter().enumerate() {
            let w = self.config.spring_weights.weight(self.system.library(), k);
            let process = self.system.block(b).process();
            if spec.is_global_for(k, process) {
                // Modified force: displacement of the balanced global
                // profile (equations 7-10).
                let g = field.group_profile(k);
                let x = field.tentative_group_delta(b, k, &bufs[i]);
                for (slot, &xv) in x.iter().enumerate() {
                    if xv != 0.0 {
                        total += w * (g[slot] + self.config.lookahead * xv) * xv;
                    }
                }
            } else {
                // Classical force on the per-block distribution.
                let d = field.distributions().get(b, k);
                for (t, &xv) in bufs[i].iter().enumerate() {
                    if xv != 0.0 {
                        total += w * (d[t] + self.config.lookahead * xv) * xv;
                    }
                }
            }
        }
        total
    }

    /// Probability deltas of `changed`, grouped per `(block, type)`.
    fn deltas(
        &self,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
    ) -> (Vec<(BlockId, ResourceTypeId)>, Vec<Vec<f64>>) {
        let mut keys: Vec<(BlockId, ResourceTypeId)> = Vec::new();
        let mut bufs: Vec<Vec<f64>> = Vec::new();
        for &(o, nf) in changed {
            let op = self.system.op(o);
            let key = (op.block(), op.resource_type());
            let i = keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                keys.push(key);
                bufs.push(vec![0.0; self.system.block(key.0).time_range() as usize]);
                keys.len() - 1
            });
            let occ = self.system.occupancy(o);
            tcms_fds::prob::accumulate(&mut bufs[i], nf, occ, 1.0);
            tcms_fds::prob::accumulate(&mut bufs[i], frames.get(o), occ, -1.0);
        }
        (keys, bufs)
    }
}

impl ForceEvaluator for ModuloEvaluator<'_> {
    fn force(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        self.force_with_field(&self.field, frames, changed)
    }

    fn commit(&mut self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) {
        let (keys, bufs) = self.deltas(frames, changed);
        self.counter += 1;
        for (i, &(b, k)) in keys.iter().enumerate() {
            let effect = self.field.apply_delta(b, k, &bufs[i]);
            self.block_epoch[b.index()] = self.counter;
            if effect.dhat_changed {
                // Sibling blocks read this block's D̂ through M_p.
                let p = self.system.block(b).process();
                self.proc_epoch[p.index()] = self.counter;
            }
            if effect.gdist_changed {
                // Every process of the sharing group reads G_k.
                self.type_epoch[k.index()] = self.counter;
            }
        }
    }

    fn invalidate(&mut self, ops: &[OpId]) {
        self.counter += 1;
        for &o in ops {
            let b = self.system.op(o).block();
            let p = self.system.block(b).process();
            self.block_epoch[b.index()] = self.counter;
            self.proc_epoch[p.index()] = self.counter;
            for &k in &self.proc_global_types[p.index()] {
                self.type_epoch[k.index()] = self.counter;
            }
        }
    }

    fn context_stamp(&self, block: BlockId) -> Option<u64> {
        let p = self.system.block(block).process();
        let mut stamp = self.block_epoch[block.index()].max(self.proc_epoch[p.index()]);
        for &k in &self.proc_global_types[p.index()] {
            stamp = stamp.max(self.type_epoch[k.index()]);
        }
        Some(stamp)
    }

    /// Samples the slot occupancy of every `M_p` and `G_k` profile — the
    /// paper's Figure-1/2 quantities — as one `"field"` timeline point.
    /// Called by the engine once per iteration, only while recording.
    fn record_iteration(&self, rec: &dyn Recorder, iteration: u64) {
        let lib = self.system.library();
        let spec = self.field.spec();
        let mut values = Vec::new();
        for k in lib.ids() {
            let Some(group) = spec.group(k) else { continue };
            let tname = lib.get(k).name();
            for (slot, &v) in self.field.group_profile(k).iter().enumerate() {
                values.push((format!("G.{tname}.slot{slot}"), v));
            }
            values.push((format!("G.{tname}.peak"), self.field.group_peak(k)));
            for &p in group {
                let pname = self.system.process(p).name();
                for (slot, &v) in self.field.process_profile(p, k).iter().enumerate() {
                    values.push((format!("M.{tname}.{pname}.slot{slot}"), v));
                }
            }
        }
        rec.timeline(TimelinePoint {
            phase: "field",
            iteration,
            values,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_fds::IfdsEngine;
    use tcms_ir::generators::{paper_library, paper_system};
    use tcms_ir::SystemBuilder;

    #[test]
    fn modified_force_prefers_periodic_alignment() {
        // The Figure-2 situation: with y fixed at time 1 and period 2, the
        // modified force must prefer placing x at time 3 (same slot as y,
        // hidden under the max) over time 0 or 2 in a fresh slot.
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p1 = b.add_process("P1");
        let blk1 = b.add_block(p1, "body", 4).unwrap();
        let x = b.add_op(blk1, "x", types.add).unwrap();
        let y = b.add_op(blk1, "y", types.add).unwrap();
        let p2 = b.add_process("P2");
        let blk2 = b.add_block(p2, "body", 4).unwrap();
        let z = b.add_op(blk2, "z", types.add).unwrap();
        let sys2 = b.build().unwrap();
        let mut spec = SharingSpec::all_local(&sys2);
        spec.set_global(types.add, vec![p1, p2], 2);
        spec.validate(&sys2).unwrap();

        let mut frames = FrameTable::initial(&sys2);
        frames.set(y, TimeFrame::new(1, 1));
        frames.set(z, TimeFrame::new(0, 0));
        let eval = ModuloEvaluator::new(&sys2, spec, FdsConfig::default(), &frames);

        let f_slot1 = eval.force(&frames, &[(x, TimeFrame::new(3, 3))]);
        let f_slot0 = eval.force(&frames, &[(x, TimeFrame::new(0, 0))]);
        let f_slot0b = eval.force(&frames, &[(x, TimeFrame::new(2, 2))]);
        assert!(
            f_slot1 < f_slot0 && f_slot1 < f_slot0b,
            "aligned placement {f_slot1} must beat {f_slot0}/{f_slot0b}"
        );
    }

    #[test]
    fn commit_keeps_field_consistent_with_rebuild() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut eval = ModuloEvaluator::new(&sys, spec.clone(), FdsConfig::default(), &frames);
        // Fix the first op of the first block to its ASAP time and commit.
        let block = sys.block_ids().next().unwrap();
        let op = sys.block(block).ops()[0];
        let nf = TimeFrame::new(frames.get(op).asap, frames.get(op).asap);
        let mut new_frames = frames.clone();
        new_frames.set(op, nf);
        eval.commit(&frames, &[(op, nf)]);
        let rebuilt = ModuloField::new(&sys, spec, &new_frames);
        for slot in 0..5 {
            assert!(
                (eval.field().group_profile(t.mul)[slot] - rebuilt.group_profile(t.mul)[slot])
                    .abs()
                    < 1e-9
            );
            assert!(
                (eval.field().group_profile(t.add)[slot] - rebuilt.group_profile(t.add)[slot])
                    .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn engine_with_modulo_evaluator_produces_valid_schedule() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let scope: Vec<_> = sys.block_ids().collect();
        let engine = IfdsEngine::new(&sys, scope);
        let mut eval = ModuloEvaluator::new(&sys, spec, FdsConfig::default(), engine.frames());
        let out = engine.run(&mut eval).unwrap();
        out.schedule.verify(&sys).unwrap();
        assert!(out.iterations > 0);
    }
}
