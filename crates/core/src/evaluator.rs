//! The modified force model (paper §5, equation 10).
//!
//! The modification is two-part:
//!
//! 1. **Periodic alignment** (§5.1): for globally shared types the spring
//!    displacement is measured on the modulo-max-transformed profile, so
//!    changes hidden under the slot maximum are free and operations align
//!    to already-authorized slots.
//! 2. **Global balancing** (§5.2): the springs themselves are the
//!    group-summed profile `G_k`, so the force balances the requirement
//!    across all processes of the sharing group.
//!
//! Local types keep the classical per-block force, and precedence-implied
//! frame changes are priced exactly like in the unmodified algorithm.

use tcms_fds::{FdsConfig, ForceEvaluator};
use tcms_ir::{BlockId, FrameTable, OpId, ResourceTypeId, System, TimeFrame};
use tcms_obs::{Recorder, TimelinePoint};

use crate::assign::SharingSpec;
use crate::field::{ExternalOccupancy, ModuloField};

/// Force evaluator implementing the two-part modification of the IFDS
/// algorithm. Plugs into [`tcms_fds::IfdsEngine`].
///
/// # Context stamps
///
/// The evaluator supports the engine's candidate-force cache through
/// [`ForceEvaluator::context_stamp`], maintained at three granularities
/// mirroring the field's layers:
///
/// * per block — the classical distribution `D_{b,k}` moved,
/// * per process — some block's modulo-max `D̂` moved, which sibling
///   blocks of the same process read through `M_p`,
/// * per type — the group profile `G_k` moved, which every process of the
///   sharing group reads.
///
/// Commits hidden under the slot maximum (the modulo-hiding effect) stop
/// at the block or process level, so cached forces of the *other*
/// processes in the group survive — the main source of incremental reuse
/// under all-global sharing.
#[derive(Debug, Clone)]
pub struct ModuloEvaluator<'a> {
    system: &'a System,
    config: FdsConfig,
    field: ModuloField<'a>,
    /// Monotone counter the stamps below are drawn from.
    counter: u64,
    /// Last mutation of a block's distribution `D_{b,·}`.
    block_epoch: Vec<u64>,
    /// Last mutation of any `D̂` profile of the process's blocks.
    proc_epoch: Vec<u64>,
    /// Last mutation of the group profile `G_k`.
    type_epoch: Vec<u64>,
    /// `proc_global_types[p]`: global types process `p` shares in.
    proc_global_types: Vec<Vec<ResourceTypeId>>,
    /// Per-op `(block, type, occupancy, block time range)` resolved once
    /// at construction — the delta path reads one flat entry per change
    /// instead of chasing the op, block and library tables per candidate.
    op_meta: Vec<(BlockId, ResourceTypeId, u32, u32)>,
}

impl<'a> ModuloEvaluator<'a> {
    /// Builds the evaluator; `frames` must be the engine's initial table.
    pub fn new(
        system: &'a System,
        spec: SharingSpec,
        config: FdsConfig,
        frames: &FrameTable,
    ) -> Self {
        let external = ExternalOccupancy::empty(system.library().len());
        Self::with_external(system, spec, config, frames, external)
    }

    /// Builds the evaluator with frozen cross-partition baselines seeding
    /// the group profiles (see [`ExternalOccupancy`]); an empty occupancy
    /// reproduces [`ModuloEvaluator::new`] bit-for-bit.
    pub fn with_external(
        system: &'a System,
        spec: SharingSpec,
        config: FdsConfig,
        frames: &FrameTable,
        external: ExternalOccupancy,
    ) -> Self {
        let proc_global_types = system
            .process_ids()
            .map(|p| {
                system
                    .library()
                    .ids()
                    .filter(|&k| spec.is_global_for(k, p))
                    .collect()
            })
            .collect();
        let op_meta = system
            .op_ids()
            .map(|o| {
                let op = system.op(o);
                let len = system.block(op.block()).time_range();
                (op.block(), op.resource_type(), system.occupancy(o), len)
            })
            .collect();
        ModuloEvaluator {
            system,
            config,
            field: ModuloField::with_external(system, spec, frames, external),
            counter: 0,
            block_epoch: vec![0; system.num_blocks()],
            proc_epoch: vec![0; system.num_processes()],
            type_epoch: vec![0; system.library().len()],
            proc_global_types,
            op_meta,
        }
    }

    /// Read access to the maintained field (used by reports and tests).
    pub fn field(&self) -> &ModuloField<'a> {
        &self.field
    }

    /// Reference force computed against a field rebuilt from scratch out
    /// of `frames` — the oracle the incremental path is property-tested
    /// against. Slow by design; only compiled for tests and the
    /// `naive-oracle` feature.
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn force_naive(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        let rebuilt = ModuloField::with_external(
            self.system,
            self.field.spec().clone(),
            frames,
            self.field.external().clone(),
        );
        self.force_with_field(&rebuilt, frames, changed)
    }

    /// The seed's incremental force path, kept verbatim (per-candidate
    /// jagged-era allocations: fresh delta buffers, a distribution copy
    /// and two fold `Vec`s per key) as the PR 1 baseline the
    /// `repro_force_kernel` bench measures the slab kernels against.
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn force_legacy(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        let (keys, bufs) = self.deltas_legacy(frames, changed);
        let field = &self.field;
        let spec = field.spec();
        let mut total = 0.0;
        for (i, &(b, k)) in keys.iter().enumerate() {
            let w = self.config.spring_weights.weight(self.system.library(), k);
            let process = self.system.block(b).process();
            if spec.is_global_for(k, process) {
                let g = field.group_profile(k);
                let x = field.tentative_group_delta_legacy(b, k, &bufs[i]);
                for (slot, &xv) in x.iter().enumerate() {
                    if xv != 0.0 {
                        total += w * (g[slot] + self.config.lookahead * xv) * xv;
                    }
                }
            } else {
                let d = field.distributions().get(b, k);
                for (t, &xv) in bufs[i].iter().enumerate() {
                    if xv != 0.0 {
                        total += w * (d[t] + self.config.lookahead * xv) * xv;
                    }
                }
            }
        }
        total
    }

    /// The seed's delta computation, kept verbatim (fresh `Vec`s and the
    /// per-step division loop of [`tcms_fds::prob::accumulate_reference`])
    /// as part of the PR 1 baseline behind [`ModuloEvaluator::force_legacy`].
    #[cfg(any(test, feature = "naive-oracle"))]
    fn deltas_legacy(
        &self,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
    ) -> (Vec<(BlockId, ResourceTypeId)>, Vec<Vec<f64>>) {
        let mut keys: Vec<(BlockId, ResourceTypeId)> = Vec::new();
        let mut bufs: Vec<Vec<f64>> = Vec::new();
        for &(o, nf) in changed {
            let op = self.system.op(o);
            let key = (op.block(), op.resource_type());
            let i = keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                keys.push(key);
                bufs.push(vec![0.0; self.system.block(key.0).time_range() as usize]);
                keys.len() - 1
            });
            let occ = self.system.occupancy(o);
            tcms_fds::prob::accumulate_reference(&mut bufs[i], nf, occ, 1.0);
            tcms_fds::prob::accumulate_reference(&mut bufs[i], frames.get(o), occ, -1.0);
        }
        (keys, bufs)
    }

    fn force_with_field(
        &self,
        field: &ModuloField<'_>,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
    ) -> f64 {
        let mut scratch = EvalScratch::default();
        let mut state = DeltaBufs::default();
        self.deltas_into(frames, changed, &mut state);
        self.force_from_deltas(field, &state, &mut scratch)
    }

    /// Force of one candidate given its per-`(block, type)` deltas,
    /// reusing (and filling) the sibling-profile cache in `scratch`.
    ///
    /// The term accumulation runs key by key, slot by slot, threading one
    /// running total — exactly the seed's summation order — so the result
    /// is bit-identical to the pre-slab implementation.
    /// Every delta term outside `spans[i]` is exactly `+0.0` (the buffer
    /// was span-zeroed and [`tcms_fds::prob::accumulate`] wrote only the
    /// span), so truncating the fused fold's delta to the span and
    /// span-limiting the local force sum are bitwise free: `d + 0.0 == d`
    /// for the never-`-0.0` distribution values, and a zero delta term
    /// contributes `±0.0`, which cannot move the running total.
    fn force_from_deltas<'f>(
        &self,
        field: &'f ModuloField<'_>,
        state: &DeltaBufs,
        scratch: &mut EvalScratch<'f>,
    ) -> f64 {
        let bufs = &state.bufs;
        let mut total = 0.0;
        for (i, &(b, k)) in state.keys.iter().enumerate() {
            let pos = scratch.plan_pos(self, field, b, k);
            let plan = &mut scratch.plans[pos];
            let (lo, hi) = state.spans[i];
            if let Some(g) = &mut plan.global {
                // Modified force: displacement of the balanced global
                // profile (equations 7-10), replayed from the plan's
                // resolved slices — the same kernel sequence as
                // `ModuloField::tentative_group_delta_into`.
                let gdelta = &mut scratch.gdelta;
                if gdelta.len() != g.rho {
                    gdelta.resize(g.rho, 0.0);
                }
                g.uses += 1;
                if g.uses > 2 && g.tables.is_none() {
                    g.tables = Some(crate::kernel::modulo_boundary_max_tables(plan.dist, g.rho));
                }
                if let Some((pre, suf)) = &g.tables {
                    crate::kernel::modulo_max_delta_span_into(
                        pre,
                        suf,
                        plan.dist,
                        &bufs[i][lo..hi],
                        lo,
                        gdelta,
                    );
                } else {
                    crate::kernel::modulo_max_delta_into(plan.dist, &bufs[i][..hi], gdelta);
                }
                if let Some(sib) = &g.siblings {
                    crate::kernel::slot_max_into(gdelta, sib);
                }
                crate::kernel::sub_into(gdelta, g.mold);
                total = tcms_fds::slab::force_sum(
                    total,
                    g.gprof,
                    gdelta,
                    plan.weight,
                    self.config.lookahead,
                );
            } else {
                // Classical force on the per-block distribution.
                total = tcms_fds::slab::force_sum(
                    total,
                    &plan.dist[lo..hi],
                    &bufs[i][lo..hi],
                    plan.weight,
                    self.config.lookahead,
                );
            }
        }
        total
    }

    /// Probability deltas of `changed`, grouped per `(block, type)`, into
    /// the reused buffers of `state` (only the first `state.keys.len()`
    /// entries of `bufs`/`spans` are meaningful after the call).
    ///
    /// `spans[i]` is the half-open dirty span of `bufs[i]` — everything
    /// outside it is exactly `+0.0`. Reusing a buffer therefore zeroes
    /// only its previous span instead of the whole block range.
    ///
    /// The removal term of an op (its occupancy over the *current* frame,
    /// subtracted) does not depend on the candidate, so it is computed
    /// once per op per batch and replayed from `state.removals` — by copy
    /// into a fresh buffer, element-wise add into a dirty one. Both are
    /// bitwise identical to re-running the accumulation: the copy swaps
    /// two addends landing on a zeroed element (IEEE addition is
    /// commutative), the add contributes the exact same terms in the
    /// exact same order.
    fn deltas_into(
        &self,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
        state: &mut DeltaBufs,
    ) {
        state.keys.clear();
        if state.cache_removals && state.removals.len() != self.op_meta.len() {
            state.removals.resize(self.op_meta.len(), None);
        }
        for &(o, nf) in changed {
            let (block, rtype, occ, range) = self.op_meta[o.index()];
            let key = (block, rtype);
            let i = state
                .keys
                .iter()
                .position(|&k| k == key)
                .unwrap_or_else(|| {
                    state.keys.push(key);
                    let i = state.keys.len() - 1;
                    let len = range as usize;
                    if state.bufs.len() <= i {
                        state.bufs.push(vec![0.0; len]);
                        state.spans.push((0, 0));
                    } else if state.bufs[i].len() == len {
                        let (lo, hi) = state.spans[i];
                        state.bufs[i][lo..hi].fill(0.0);
                        state.spans[i] = (0, 0);
                    } else {
                        state.bufs[i].clear();
                        state.bufs[i].resize(len, 0.0);
                        state.spans[i] = (0, 0);
                    }
                    i
                });
            if !state.cache_removals {
                // One-shot evaluation: the removal term is used once, so
                // accumulate both terms directly in the seed's order.
                let buf = &mut state.bufs[i];
                let a = tcms_fds::prob::accumulate(buf, nf, occ, 1.0);
                let r = tcms_fds::prob::accumulate(buf, frames.get(o), occ, -1.0);
                state.spans[i] = span_union(state.spans[i], span_union(a, r));
                continue;
            }
            let len = state.bufs[i].len();
            let (removal, rspan) = state.removals[o.index()].get_or_insert_with(|| {
                let mut r = vec![0.0; len];
                let span = tcms_fds::prob::accumulate(&mut r, frames.get(o), occ, -1.0);
                (r, span)
            });
            let buf = &mut state.bufs[i];
            let (rlo, rhi) = *rspan;
            if state.spans[i].0 >= state.spans[i].1 {
                // Fresh buffer: land the removal term by copy, then add
                // the placement term on top.
                buf[rlo..rhi].copy_from_slice(&removal[rlo..rhi]);
                state.spans[i] = *rspan;
                let a = tcms_fds::prob::accumulate(buf, nf, occ, 1.0);
                state.spans[i] = span_union(state.spans[i], a);
            } else {
                // Dirty buffer: keep the seed's exact term order —
                // placement first, then the removal terms.
                let a = tcms_fds::prob::accumulate(buf, nf, occ, 1.0);
                for (b, &r) in buf[rlo..rhi].iter_mut().zip(&removal[rlo..rhi]) {
                    *b += r;
                }
                state.spans[i] = span_union(state.spans[i], span_union(a, *rspan));
            }
        }
    }

    /// Batched fast path for the overwhelmingly common candidate shape:
    /// one op moved onto a global type. The removal term *and* the
    /// committed distribution are candidate-independent, so their sum is
    /// folded into per-op modulo boundary tables
    /// ([`crate::kernel::modulo_boundary_max_tables`] over
    /// `D_{b,k} - removal`) once per batch; each candidate then only
    /// scans its placement span — `occ` steps for the width-1 frames the
    /// engine sweeps — instead of the whole removal span.
    ///
    /// Bitwise identical to the generic path: outside the placement span
    /// the delta buffer holds exactly the removal term (`d + r` — the
    /// same two operands the tables pre-add), inside it holds
    /// `r + p` accumulated onto a zeroed element (`0.0 + p == p`
    /// bitwise for the positive placement terms), and regrouping the
    /// zero-seeded per-slot max is order-insensitive over the
    /// never-`NaN`/`-0.0` profile values.
    ///
    /// Returns `None` (caller falls back to the generic path) for local
    /// pairs and empty blocks.
    fn force_single_fast<'f>(
        &self,
        field: &'f ModuloField<'_>,
        o: OpId,
        nf: TimeFrame,
        frames: &FrameTable,
        state: &mut DeltaBufs,
        scratch: &mut EvalScratch<'f>,
    ) -> Option<f64> {
        let (block, rtype, occ, range) = self.op_meta[o.index()];
        let len = range as usize;
        if len == 0 {
            return None;
        }
        let pos = scratch.plan_pos(self, field, block, rtype);
        let plan = &scratch.plans[pos];
        let g = plan.global.as_ref()?;
        if state.removals.len() != self.op_meta.len() {
            state.removals.resize(self.op_meta.len(), None);
        }
        if state.op_tables.len() != self.op_meta.len() {
            state.op_tables.resize(self.op_meta.len(), None);
            state.op_uses.resize(self.op_meta.len(), 0);
        }
        // The tables only pay off once an op is scored against more than
        // one slot (the build walks the whole block range); the op's
        // first candidate takes the generic span fold instead.
        if state.op_uses[o.index()] == 0 && state.op_tables[o.index()].is_none() {
            state.op_uses[o.index()] = 1;
            return None;
        }
        let (rbuf, rspan) = state.removals[o.index()].get_or_insert_with(|| {
            let mut r = vec![0.0; len];
            let span = tcms_fds::prob::accumulate(&mut r, frames.get(o), occ, -1.0);
            (r, span)
        });
        let (rlo, rhi) = *rspan;
        let (pre, suf) = state.op_tables[o.index()].get_or_insert_with(|| {
            let mut combined = plan.dist.to_vec();
            for (c, &r) in combined[rlo..rhi].iter_mut().zip(&rbuf[rlo..rhi]) {
                *c += r;
            }
            crate::kernel::modulo_boundary_max_tables(&combined, g.rho)
        });
        // Placement span, clamped exactly like
        // [`tcms_fds::prob::accumulate`] clamps its writes.
        let last = (nf.alap + occ - 1).min(range - 1);
        let (plo, phi) = if nf.asap > last {
            (0, 0)
        } else {
            (nf.asap as usize, last as usize + 1)
        };
        let gdelta = &mut scratch.gdelta;
        if gdelta.len() != g.rho {
            gdelta.resize(g.rho, 0.0);
        }
        let pre_row = &pre[plo * g.rho..(plo + 1) * g.rho];
        let suf_row = &suf[phi * g.rho..(phi + 1) * g.rho];
        for ((d, &a), &b) in gdelta.iter_mut().zip(pre_row).zip(suf_row) {
            *d = a.max(b);
        }
        // The placement terms are the run-cached quotients `accumulate`
        // would write onto a zeroed buffer (`0.0 + p == p` bitwise for
        // the positive terms), folded in place of reading them back.
        let width = f64::from(nf.width());
        let mut count_cached = 0u32;
        let mut term = 0.0f64;
        let mut slot = plo % g.rho;
        for ((t, &d), &r) in (plo..).zip(&plan.dist[plo..phi]).zip(&rbuf[plo..phi]) {
            let t32 = t as u32;
            let lo = nf.asap.max(t32.saturating_sub(occ - 1));
            let hi = nf.alap.min(t32);
            let count = hi - lo + 1;
            if count != count_cached {
                count_cached = count;
                term = f64::from(count) / width;
            }
            gdelta[slot] = gdelta[slot].max(d + (r + term));
            slot += 1;
            if slot == g.rho {
                slot = 0;
            }
        }
        if let Some(sib) = &g.siblings {
            crate::kernel::slot_max_into(gdelta, sib);
        }
        Some(tcms_fds::slab::force_sum_sub(
            0.0,
            g.gprof,
            gdelta,
            g.mold,
            plan.weight,
            self.config.lookahead,
        ))
    }

    /// Probability deltas of `changed`, grouped per `(block, type)`.
    fn deltas(
        &self,
        frames: &FrameTable,
        changed: &[(OpId, TimeFrame)],
    ) -> (Vec<(BlockId, ResourceTypeId)>, Vec<Vec<f64>>) {
        let mut state = DeltaBufs::default();
        self.deltas_into(frames, changed, &mut state);
        state.bufs.truncate(state.keys.len());
        (state.keys, state.bufs)
    }
}

/// Reused delta-computation state of one batch: grouped keys, the delta
/// buffers with their dirty spans, and the per-op removal terms (valid
/// for one frame table — batches create a fresh `DeltaBufs`).
#[derive(Default)]
struct DeltaBufs {
    keys: Vec<(BlockId, ResourceTypeId)>,
    bufs: Vec<Vec<f64>>,
    spans: Vec<(usize, usize)>,
    removals: Vec<Option<Removal>>,
    /// Per-op modulo boundary tables over `D_{b,k} + removal` — the
    /// candidate-independent part of the single-op tentative fold,
    /// pre-reduced so [`ModuloEvaluator::force_single_fast`] only scans
    /// the placement span. Sized together with `removals`.
    op_tables: Vec<Option<(Vec<f64>, Vec<f64>)>>,
    /// Per-op single-op candidate counts — the lazy-build trigger for
    /// `op_tables`.
    op_uses: Vec<u32>,
    /// Whether the removal terms are cached in `removals`. Only worth the
    /// per-op table for batches, where an op's removal is replayed for
    /// many candidate frames; one-shot evaluations accumulate directly.
    cache_removals: bool,
}

/// One cached removal term: the accumulated buffer and its dirty span.
type Removal = (Vec<f64>, (usize, usize));

/// Union of two half-open spans, treating empty spans as neutral.
fn span_union(a: (usize, usize), b: (usize, usize)) -> (usize, usize) {
    if a.0 >= a.1 {
        b
    } else if b.0 >= b.1 {
        a
    } else {
        (a.0.min(b.0), a.1.max(b.1))
    }
}

/// Reused state for repeated force evaluations against one committed
/// field: the `ΔG` slot scratch plus a small cache of per-`(block, type)`
/// evaluation plans. Everything in a plan depends only on the committed
/// field, never on the candidate, so sharing it across a batch is
/// bitwise free; the cache is only valid against one committed state —
/// batched evaluation creates one scratch per batch.
#[derive(Default)]
struct EvalScratch<'f> {
    gdelta: Vec<f64>,
    plans: Vec<PairPlan<'f>>,
    /// `plan_idx[block * num_types + type]`: position in `plans` plus
    /// one, `0` for "not built yet" — a direct-indexed lookup so the hot
    /// loop never scans.
    plan_idx: Vec<u32>,
}

/// Candidate-independent inputs of one `(block, type)` force term,
/// resolved once per batch: the spring weight, the committed
/// distribution slice, and (for global pairs) the profile slices and the
/// sibling slot max of the tentative evaluation.
struct PairPlan<'f> {
    /// Spring weight `w_k`.
    weight: f64,
    /// Committed distribution `D_{b,k}`.
    dist: &'f [f64],
    /// `None` for local pairs (classical force applies).
    global: Option<GlobalPlan<'f>>,
}

/// The global-pair half of a [`PairPlan`]: inputs of equations 7-10.
struct GlobalPlan<'f> {
    /// Period `ρ` of the sharing group.
    rho: usize,
    /// Group profile `G_k` — the spring the displacement is priced on.
    gprof: &'f [f64],
    /// Committed `M_{p,k}` the tentative process max is differenced
    /// against.
    mold: &'f [f64],
    /// Slot max over the sibling blocks' `D̂` profiles. `None` when the
    /// block has no siblings: the fold's result *is* the process max
    /// then, and `max(v, 0.0)` over the zero-seeded, never-negative fold
    /// values would be the identity bitwise — skipping it is free.
    siblings: Option<Vec<f64>>,
    /// How many candidates have evaluated this pair so far — the lazy
    /// trigger for `tables`.
    uses: u32,
    /// Prefix/suffix boundary tables of the committed distribution
    /// ([`crate::kernel::modulo_boundary_max_tables`]), built once a pair
    /// proves hot (3rd use): they turn the fused fold from a full scan
    /// into a span scan, which only pays off when the build cost is
    /// amortized over many candidates. Either fold variant is bitwise
    /// identical, so the switch-over is free.
    tables: Option<(Vec<f64>, Vec<f64>)>,
}

impl<'f> EvalScratch<'f> {
    /// Position of the plan of `(block, rtype)` in `self.plans`, computed
    /// on first use and shared afterwards. Returns an index rather than a
    /// reference so callers can borrow `gdelta` alongside.
    fn plan_pos(
        &mut self,
        eval: &ModuloEvaluator<'_>,
        field: &'f ModuloField<'_>,
        block: BlockId,
        rtype: ResourceTypeId,
    ) -> usize {
        let num_types = eval.system.library().len();
        if self.plan_idx.len() != eval.system.num_blocks() * num_types {
            self.plan_idx = vec![0; eval.system.num_blocks() * num_types];
        }
        let slot = block.index() * num_types + rtype.index();
        let cached = self.plan_idx[slot];
        if cached != 0 {
            return cached as usize - 1;
        }
        let weight = eval
            .config
            .spring_weights
            .weight(eval.system.library(), rtype);
        let process = eval.system.block(block).process();
        let global = field.spec().is_global_for(rtype, process).then(|| {
            let rho = field.slot_count(rtype);
            let siblings = (eval.system.process(process).blocks().len() > 1).then(|| {
                let mut buf = vec![0.0; rho];
                field.sibling_profile_into(block, rtype, &mut buf);
                buf
            });
            GlobalPlan {
                rho,
                gprof: field.group_profile(rtype),
                mold: field.process_profile(process, rtype),
                siblings,
                uses: 0,
                tables: None,
            }
        });
        self.plans.push(PairPlan {
            weight,
            dist: field.distributions().get(block, rtype),
            global,
        });
        let pos = self.plans.len() - 1;
        self.plan_idx[slot] = u32::try_from(pos + 1).expect("plan count fits u32");
        pos
    }
}

impl ForceEvaluator for ModuloEvaluator<'_> {
    fn force(&self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) -> f64 {
        self.force_with_field(&self.field, frames, changed)
    }

    /// Scores every candidate against the current committed field,
    /// bit-identical to calling [`ForceEvaluator::force`] per candidate.
    /// The win over the default implementation: delta buffers are reused
    /// and the sibling slot-max profiles — which depend only on committed
    /// state, not on the candidate — are computed once per `(block, type)`
    /// and shared across the whole batch.
    fn force_batch(&self, frames: &FrameTable, candidates: &[&[(OpId, TimeFrame)]]) -> Vec<f64> {
        let mut scratch = EvalScratch::default();
        let mut state = DeltaBufs {
            cache_removals: true,
            ..DeltaBufs::default()
        };
        candidates
            .iter()
            .map(|changed| {
                if let [(o, nf)] = **changed {
                    if let Some(f) =
                        self.force_single_fast(&self.field, o, nf, frames, &mut state, &mut scratch)
                    {
                        return f;
                    }
                }
                self.deltas_into(frames, changed, &mut state);
                self.force_from_deltas(&self.field, &state, &mut scratch)
            })
            .collect()
    }

    fn commit(&mut self, frames: &FrameTable, changed: &[(OpId, TimeFrame)]) {
        let (keys, bufs) = self.deltas(frames, changed);
        self.counter += 1;
        for (i, &(b, k)) in keys.iter().enumerate() {
            let effect = self.field.apply_delta(b, k, &bufs[i]);
            if !effect.dist_changed {
                // The candidate's deltas cancelled out bitwise (e.g. two
                // ops of one pair swapping probability mass): nothing any
                // cached force could observe moved, so the stamps — and
                // with them the engine's candidate cache — survive.
                continue;
            }
            self.block_epoch[b.index()] = self.counter;
            if effect.dhat_changed {
                // Sibling blocks read this block's D̂ through M_p.
                let p = self.system.block(b).process();
                self.proc_epoch[p.index()] = self.counter;
            }
            if effect.gdist_changed {
                // Every process of the sharing group reads G_k.
                self.type_epoch[k.index()] = self.counter;
            }
        }
    }

    fn invalidate(&mut self, ops: &[OpId]) {
        self.counter += 1;
        for &o in ops {
            let b = self.system.op(o).block();
            let p = self.system.block(b).process();
            self.block_epoch[b.index()] = self.counter;
            self.proc_epoch[p.index()] = self.counter;
            for &k in &self.proc_global_types[p.index()] {
                self.type_epoch[k.index()] = self.counter;
            }
        }
    }

    fn context_stamp(&self, block: BlockId) -> Option<u64> {
        let p = self.system.block(block).process();
        let mut stamp = self.block_epoch[block.index()].max(self.proc_epoch[p.index()]);
        for &k in &self.proc_global_types[p.index()] {
            stamp = stamp.max(self.type_epoch[k.index()]);
        }
        Some(stamp)
    }

    /// Samples the slot occupancy of every `M_p` and `G_k` profile — the
    /// paper's Figure-1/2 quantities — as one `"field"` timeline point.
    /// Called by the engine once per iteration, only while recording.
    fn record_iteration(&self, rec: &dyn Recorder, iteration: u64) {
        let lib = self.system.library();
        let spec = self.field.spec();
        let mut values = Vec::new();
        for k in lib.ids() {
            let Some(group) = spec.group(k) else { continue };
            let tname = lib.get(k).name();
            for (slot, &v) in self.field.group_profile(k).iter().enumerate() {
                values.push((format!("G.{tname}.slot{slot}"), v));
            }
            values.push((format!("G.{tname}.peak"), self.field.group_peak(k)));
            for &p in group {
                let pname = self.system.process(p).name();
                for (slot, &v) in self.field.process_profile(p, k).iter().enumerate() {
                    values.push((format!("M.{tname}.{pname}.slot{slot}"), v));
                }
            }
        }
        rec.timeline(TimelinePoint {
            phase: "field",
            iteration,
            values,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_fds::IfdsEngine;
    use tcms_ir::generators::{paper_library, paper_system};
    use tcms_ir::SystemBuilder;

    #[test]
    fn modified_force_prefers_periodic_alignment() {
        // The Figure-2 situation: with y fixed at time 1 and period 2, the
        // modified force must prefer placing x at time 3 (same slot as y,
        // hidden under the max) over time 0 or 2 in a fresh slot.
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p1 = b.add_process("P1");
        let blk1 = b.add_block(p1, "body", 4).unwrap();
        let x = b.add_op(blk1, "x", types.add).unwrap();
        let y = b.add_op(blk1, "y", types.add).unwrap();
        let p2 = b.add_process("P2");
        let blk2 = b.add_block(p2, "body", 4).unwrap();
        let z = b.add_op(blk2, "z", types.add).unwrap();
        let sys2 = b.build().unwrap();
        let mut spec = SharingSpec::all_local(&sys2);
        spec.set_global(types.add, vec![p1, p2], 2);
        spec.validate(&sys2).unwrap();

        let mut frames = FrameTable::initial(&sys2);
        frames.set(y, TimeFrame::new(1, 1));
        frames.set(z, TimeFrame::new(0, 0));
        let eval = ModuloEvaluator::new(&sys2, spec, FdsConfig::default(), &frames);

        let f_slot1 = eval.force(&frames, &[(x, TimeFrame::new(3, 3))]);
        let f_slot0 = eval.force(&frames, &[(x, TimeFrame::new(0, 0))]);
        let f_slot0b = eval.force(&frames, &[(x, TimeFrame::new(2, 2))]);
        assert!(
            f_slot1 < f_slot0 && f_slot1 < f_slot0b,
            "aligned placement {f_slot1} must beat {f_slot0}/{f_slot0b}"
        );
    }

    #[test]
    fn commit_keeps_field_consistent_with_rebuild() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut eval = ModuloEvaluator::new(&sys, spec.clone(), FdsConfig::default(), &frames);
        // Fix the first op of the first block to its ASAP time and commit.
        let block = sys.block_ids().next().unwrap();
        let op = sys.block(block).ops()[0];
        let nf = TimeFrame::new(frames.get(op).asap, frames.get(op).asap);
        let mut new_frames = frames.clone();
        new_frames.set(op, nf);
        eval.commit(&frames, &[(op, nf)]);
        let rebuilt = ModuloField::new(&sys, spec, &new_frames);
        for slot in 0..5 {
            assert!(
                (eval.field().group_profile(t.mul)[slot] - rebuilt.group_profile(t.mul)[slot])
                    .abs()
                    < 1e-9
            );
            assert!(
                (eval.field().group_profile(t.add)[slot] - rebuilt.group_profile(t.add)[slot])
                    .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn cancelling_commit_preserves_context_stamps() {
        // Two ops of the same (block, type) swap their probability mass:
        // A collapses [0,1] -> [0,0] (delta +0.5/-0.5) while B collapses
        // [0,1] -> [1,1] (delta -0.5/+0.5). The summed pair delta is
        // bitwise zero, so the commit must leave every context stamp — and
        // with it the engine's candidate cache — untouched.
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p1 = b.add_process("P1");
        let blk = b.add_block(p1, "body", 2).unwrap();
        let a = b.add_op(blk, "a", types.add).unwrap();
        let c = b.add_op(blk, "c", types.add).unwrap();
        let p2 = b.add_process("P2");
        let blk2 = b.add_block(p2, "body", 2).unwrap();
        b.add_op(blk2, "z", types.add).unwrap();
        let sys = b.build().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(types.add, vec![p1, p2], 2);
        spec.validate(&sys).unwrap();

        let mut frames = FrameTable::initial(&sys);
        frames.set(a, TimeFrame::new(0, 1));
        frames.set(c, TimeFrame::new(0, 1));
        let mut eval = ModuloEvaluator::new(&sys, spec, FdsConfig::default(), &frames);
        let before = eval.context_stamp(blk);

        eval.commit(
            &frames,
            &[(a, TimeFrame::new(0, 0)), (c, TimeFrame::new(1, 1))],
        );
        assert_eq!(
            eval.context_stamp(blk),
            before,
            "a bitwise-cancelled delta must not dirty any stamp"
        );

        // A genuine move does bump the stamp.
        eval.commit(&frames, &[(a, TimeFrame::new(0, 0))]);
        assert_ne!(eval.context_stamp(blk), before);
    }

    #[test]
    fn batched_forces_match_scalar_forces_bitwise() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let eval = ModuloEvaluator::new(&sys, spec, FdsConfig::default(), &frames);

        let mut candidates: Vec<Vec<(tcms_ir::OpId, TimeFrame)>> = Vec::new();
        for o in sys.op_ids() {
            let f = frames.get(o);
            candidates.push(vec![(o, TimeFrame::new(f.asap, f.asap))]);
            candidates.push(vec![(o, TimeFrame::new(f.alap, f.alap))]);
        }
        let views: Vec<&[(tcms_ir::OpId, TimeFrame)]> =
            candidates.iter().map(|c| c.as_slice()).collect();
        let batched = eval.force_batch(&frames, &views);
        assert_eq!(batched.len(), views.len());
        for (i, c) in views.iter().enumerate() {
            let scalar = eval.force(&frames, c);
            assert_eq!(
                batched[i].to_bits(),
                scalar.to_bits(),
                "candidate {i} diverged: batched {} vs scalar {scalar}",
                batched[i]
            );
            // And both agree bitwise with the from-scratch oracle.
            assert_eq!(scalar.to_bits(), eval.force_naive(&frames, c).to_bits());
            assert_eq!(scalar.to_bits(), eval.force_legacy(&frames, c).to_bits());
        }
    }

    #[test]
    fn engine_with_modulo_evaluator_produces_valid_schedule() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let scope: Vec<_> = sys.block_ids().collect();
        let engine = IfdsEngine::new(&sys, scope);
        let mut eval = ModuloEvaluator::new(&sys, spec, FdsConfig::default(), engine.frames());
        let out = engine.run(&mut eval).unwrap();
        out.schedule.verify(&sys).unwrap();
        assert!(out.iterations > 0);
    }
}
