//! Step (S2): periodicities of global resource types.
//!
//! Possible periods are determined by the timing constraints of each
//! process and the assignments of step (S1). The paper derives a grid
//! spacing per process (equation 3) — the lcm of the periods of its global
//! types — and notes that period combinations whose spacing exceeds the
//! process's timing budget are filtered out before scheduling.
//!
//! This module provides candidate generation, the feasibility filter and
//! the full enumeration ("permutation") of period assignments used by the
//! paper's implementation, whose complexity is bounded by the product of
//! the candidate-set sizes.

use tcms_ir::{ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::modulo::lcm;

/// Spacing budget of a process: the largest grid spacing its blocks can
/// tolerate. The default policy is the smallest block time range — a
/// coarser grid than a block's own length would leave the block at most
/// one feasible alignment per spacing window and delay spontaneous
/// activations by more than one block length (§3.2's "invocation interval"
/// drawback).
pub fn spacing_budget(system: &System, process: ProcessId) -> u32 {
    system
        .process(process)
        .blocks()
        .iter()
        .map(|&b| system.block(b).time_range())
        .min()
        .unwrap_or(1)
}

/// Candidate periods for a global type: every period from 1 to the
/// smallest spacing budget over its sharing group.
///
/// Returns an empty vector for local types.
pub fn candidate_periods(system: &System, spec: &SharingSpec, rtype: ResourceTypeId) -> Vec<u32> {
    let Some(group) = spec.group(rtype) else {
        return Vec::new();
    };
    let max = group
        .iter()
        .map(|&p| spacing_budget(system, p))
        .min()
        .unwrap_or(1);
    (1..=max).collect()
}

/// Equation-3 filter: `true` if, for every process, the lcm of the periods
/// of its assigned global types stays within its spacing budget.
pub fn spacing_feasible(system: &System, spec: &SharingSpec) -> bool {
    system.process_ids().all(|p| {
        let spacing = spec.grid_spacing(system, p);
        spacing <= spacing_budget(system, p)
    })
}

/// Enumerates all feasible period assignments over the global types of
/// `spec` (the paper's permutation), applying the equation-3 filter.
///
/// `candidates[i]` must hold the candidate set of `global_types[i]` as
/// returned by [`SharingSpec::global_types`]. The enumeration is capped at
/// `limit` *emitted* assignments to bound runaway products; `None` means
/// unlimited.
///
/// # Example
///
/// ```
/// use tcms_core::period::{enumerate_periods, candidate_periods};
/// use tcms_core::SharingSpec;
/// use tcms_ir::generators::paper_system;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (sys, _) = paper_system()?;
/// let spec = SharingSpec::all_global(&sys, 5);
/// let globals = spec.global_types(&sys);
/// let cands: Vec<Vec<u32>> = globals
///     .iter()
///     .map(|&k| candidate_periods(&sys, &spec, k))
///     .collect();
/// let assignments = enumerate_periods(&sys, &spec, &globals, &cands, Some(1000));
/// assert!(!assignments.is_empty());
/// // Every emitted assignment passes the equation-3 filter.
/// # Ok(())
/// # }
/// ```
pub fn enumerate_periods(
    system: &System,
    spec: &SharingSpec,
    global_types: &[ResourceTypeId],
    candidates: &[Vec<u32>],
    limit: Option<usize>,
) -> Vec<SharingSpec> {
    assert_eq!(
        global_types.len(),
        candidates.len(),
        "one candidate set per global type"
    );
    let mut out = Vec::new();
    let mut choice = vec![0usize; global_types.len()];
    if global_types.is_empty() {
        if spacing_feasible(system, spec) {
            out.push(spec.clone());
        }
        return out;
    }
    'outer: loop {
        // Materialise the current combination.
        let mut s = spec.clone();
        for (i, &k) in global_types.iter().enumerate() {
            s.set_period(k, candidates[i][choice[i]]);
        }
        if spacing_feasible(system, &s) {
            out.push(s);
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
        }
        // Odometer increment.
        for i in 0..choice.len() {
            choice[i] += 1;
            if choice[i] < candidates[i].len() {
                continue 'outer;
            }
            choice[i] = 0;
        }
        break;
    }
    out
}

/// `true` if the period set is *harmonic*: sorted ascending, every period
/// divides the next. Harmonic sets minimise the grid spacing (the lcm
/// collapses to the largest period), which the paper singles out as the
/// combinations that "comply with the defined grid spacings".
pub fn is_harmonic(mut periods: Vec<u32>) -> bool {
    periods.sort_unstable();
    periods.windows(2).all(|w| w[1] % w[0] == 0)
}

/// Grid spacing implied by a period set (lcm of all periods).
pub fn combined_spacing(periods: &[u32]) -> u32 {
    periods.iter().copied().fold(1, lcm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;

    #[test]
    fn budget_is_min_block_range() {
        let (sys, _) = paper_system().unwrap();
        let p1 = sys.process_by_name("P1").unwrap();
        let p4 = sys.process_by_name("P4").unwrap();
        assert_eq!(spacing_budget(&sys, p1), 30);
        assert_eq!(spacing_budget(&sys, p4), 15);
    }

    #[test]
    fn candidates_bounded_by_group_budget() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        // Adder group includes the diffeq processes (budget 15).
        let c = candidate_periods(&sys, &spec, t.add);
        assert_eq!(c, (1..=15).collect::<Vec<_>>());
        // Local types have no candidates.
        let local = SharingSpec::all_local(&sys);
        assert!(candidate_periods(&sys, &local, t.add).is_empty());
    }

    #[test]
    fn paper_period_is_feasible() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        assert!(spacing_feasible(&sys, &spec));
    }

    #[test]
    fn oversized_spacing_filtered() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_global(&sys, 5);
        // lcm(7, 5, 5) = 35 > 15 budget of the diffeq processes.
        spec.set_period(t.add, 7);
        assert!(!spacing_feasible(&sys, &spec));
    }

    #[test]
    fn enumeration_respects_filter_and_limit() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let globals = spec.global_types(&sys);
        let cands: Vec<Vec<u32>> = globals.iter().map(|_| vec![3, 5, 8]).collect();
        let all = enumerate_periods(&sys, &spec, &globals, &cands, None);
        // All emitted combinations are feasible.
        for s in &all {
            assert!(spacing_feasible(&sys, s));
        }
        // lcm(8,3)=24 and lcm(8,5)=40 exceed 15, so 8 only combines with 8
        // ... but even lcm(8,8,8)=8 <= 15 works; infeasible are the mixed
        // ones. 3^3=27 total, feasible: uniform {3,5,8} plus {3,3,5}-style
        // mixes with lcm<=15: (3,5) lcm 15 ok, (3,8) 24 no, (5,8) 40 no.
        assert!(all.len() < 27);
        assert!(all
            .iter()
            .any(|s| { globals.iter().all(|&k| s.period(k) == Some(8)) }));
        let limited = enumerate_periods(&sys, &spec, &globals, &cands, Some(2));
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn no_global_types_yields_base_spec() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = enumerate_periods(&sys, &spec, &[], &[], None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], spec);
    }

    #[test]
    fn harmonic_detection() {
        assert!(is_harmonic(vec![2, 4, 8]));
        assert!(is_harmonic(vec![5, 5, 5]));
        assert!(is_harmonic(vec![3]));
        assert!(is_harmonic(vec![]));
        assert!(!is_harmonic(vec![2, 3]));
        assert!(is_harmonic(vec![8, 2, 4]), "order must not matter");
    }

    #[test]
    fn combined_spacing_is_lcm() {
        assert_eq!(combined_spacing(&[2, 3, 4]), 12);
        assert_eq!(combined_spacing(&[]), 1);
        assert_eq!(combined_spacing(&[5, 5]), 5);
    }
}
