//! Resource counts, authorization tables and area of a finished schedule.
//!
//! Local types are counted the traditional way — a dedicated pool per
//! process (at least one instance per used type and process). Global types
//! are counted once per sharing group via their authorization table.

use std::fmt;

use tcms_fds::Schedule;
use tcms_ir::{ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::authorize::AuthorizationTable;

/// Per-type breakdown of a [`ScheduleReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeReport {
    /// The reported resource type.
    pub rtype: ResourceTypeId,
    /// Local pools: `(process, instance count)` for every process that uses
    /// the type outside a sharing group.
    pub local_counts: Vec<(ProcessId, u32)>,
    /// Shared pool and grants if the type is global.
    pub authorization: Option<AuthorizationTable>,
}

impl TypeReport {
    /// Total instances of this type (local pools plus shared pool).
    pub fn instances(&self) -> u32 {
        let local: u32 = self.local_counts.iter().map(|&(_, c)| c).sum();
        local + self.authorization.as_ref().map_or(0, |a| a.pool())
    }
}

/// Complete resource/area accounting for one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleReport {
    types: Vec<TypeReport>,
    total_area: u64,
}

impl ScheduleReport {
    /// Per-type reports in library order.
    pub fn types(&self) -> &[TypeReport] {
        &self.types
    }

    /// The report of one type.
    pub fn of_type(&self, rtype: ResourceTypeId) -> &TypeReport {
        &self.types[rtype.index()]
    }

    /// Total instances of `rtype`.
    pub fn instances(&self, rtype: ResourceTypeId) -> u32 {
        self.types[rtype.index()].instances()
    }

    /// Summed area cost over all instances (the paper's comparison
    /// metric; multiplexers and wiring are accounted separately by
    /// `tcms-alloc`).
    pub fn total_area(&self) -> u64 {
        self.total_area
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for tr in &self.types {
            writeln!(f, "type {}: {} instances", tr.rtype, tr.instances())?;
        }
        write!(f, "total area {}", self.total_area)
    }
}

/// Computes the full report for `schedule` under `spec`.
///
/// # Panics
///
/// Panics if the schedule is incomplete; run [`Schedule::verify`] first.
pub fn compute_report(system: &System, spec: &SharingSpec, schedule: &Schedule) -> ScheduleReport {
    let mut types = Vec::with_capacity(system.library().len());
    let mut total_area = 0u64;
    for (k, rt) in system.library().iter() {
        let group = spec.group(k).unwrap_or(&[]);
        let mut local_counts = Vec::new();
        for p in system.users_of_type(k) {
            if group.contains(&p) {
                continue;
            }
            // Blocks of one process never overlap: the process pool is the
            // maximum over its blocks' peaks.
            let count = system
                .process(p)
                .blocks()
                .iter()
                .map(|&b| schedule.peak_usage(system, b, k))
                .max()
                .unwrap_or(0);
            local_counts.push((p, count));
        }
        let authorization = AuthorizationTable::from_schedule(system, spec, schedule, k);
        let tr = TypeReport {
            rtype: k,
            local_counts,
            authorization,
        };
        total_area += u64::from(tr.instances()) * rt.area();
        types.push(tr);
    }
    ScheduleReport { types, total_area }
}

#[cfg(test)]
mod tests {
    use crate::scheduler::ModuloScheduler;
    use crate::SharingSpec;
    use tcms_ir::generators::paper_system;

    #[test]
    fn local_report_has_one_pool_per_user() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
        let report = out.report();
        // Traditional scheduling: at least one instance per type and
        // process — five multipliers, two subtracters at minimum.
        assert_eq!(report.of_type(t.mul).local_counts.len(), 5);
        assert!(report.instances(t.mul) >= 5);
        assert_eq!(report.of_type(t.sub).local_counts.len(), 2);
        assert!(report.instances(t.sub) >= 2);
        assert!(report.of_type(t.mul).authorization.is_none());
        let area: u64 = sys
            .library()
            .iter()
            .map(|(k, rt)| u64::from(report.instances(k)) * rt.area())
            .sum();
        assert_eq!(report.total_area(), area);
    }

    #[test]
    fn global_report_uses_shared_pool() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
        let report = out.report();
        assert!(report.of_type(t.mul).local_counts.is_empty());
        let auth = report.of_type(t.mul).authorization.as_ref().unwrap();
        assert_eq!(report.instances(t.mul), auth.pool());
        // The headline claim: sharing needs fewer multipliers than the
        // one-per-process minimum of traditional scheduling.
        assert!(report.instances(t.mul) < 5);
    }

    #[test]
    fn mixed_scope_counts_both_pools() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        let p1 = sys.process_by_name("P1").unwrap();
        let p2 = sys.process_by_name("P2").unwrap();
        spec.set_global(t.mul, vec![p1, p2], 5);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
        let report = out.report();
        let tr = report.of_type(t.mul);
        // P3, P4, P5 keep local multipliers; P1+P2 share a pool.
        assert_eq!(tr.local_counts.len(), 3);
        assert!(tr.authorization.as_ref().unwrap().pool() >= 1);
        assert_eq!(
            tr.instances(),
            tr.local_counts.iter().map(|&(_, c)| c).sum::<u32>()
                + tr.authorization.as_ref().unwrap().pool()
        );
    }

    #[test]
    fn display_mentions_area() {
        let (sys, _) = paper_system().unwrap();
        let out = ModuloScheduler::new(&sys, SharingSpec::all_local(&sys))
            .unwrap()
            .run()
            .unwrap();
        let text = out.report().to_string();
        assert!(text.contains("total area"));
    }
}
