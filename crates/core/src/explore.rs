//! Design-space exploration: period selection and automatic scope
//! assignment.
//!
//! The paper enumerates period permutations exhaustively and assigns
//! scopes (S1) manually, naming both automation directions as current
//! work. This module provides:
//!
//! * [`sweep_uniform_periods`] — the §3.2 trade-off curve: larger periods
//!   allow more sharing but stretch the invocation grid,
//! * [`best_period_assignment`] — exhaustive enumeration with the
//!   equation-3 filter, scheduling every candidate (the paper's flow),
//! * [`pruned_best_period_assignment`] — a lower-bound-pruned search
//!   (the "without complete enumeration" future-work item),
//! * [`auto_assign`] — a greedy automatic scope selection.
//!
//! # Parallelism and determinism
//!
//! The candidate runs of [`sweep_uniform_periods`] and
//! [`best_period_assignment`] are independent, so they are evaluated in
//! parallel. Infeasible candidates (equation-3 filter) and specification
//! validation are handled *before* spawning, the parallel map preserves
//! input order, and the winner is selected by a sequential in-order fold
//! with a strict `<` comparison — the results (including tie-breaks) are
//! identical to the sequential evaluation.
//!
//! [`pruned_best_period_assignment`] is a parallel bound-ordered search
//! over a shared atomic incumbent. Candidates are stably sorted by their
//! admissible area lower bound and pruned with a **strict** `bound >
//! incumbent` test: the incumbent never drops below the optimum, so every
//! candidate whose bound does not exceed the optimum is scheduled in every
//! run, and any extra candidate a stale incumbent lets through has
//! `area >= bound > optimum` and cannot win. The sequential index-ordered
//! fold therefore returns the *same* winner as the old sequential
//! incumbent loop — the first optimal candidate in bound order — at every
//! thread count. Only the `evaluated` count is timing-dependent.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;
use tcms_fds::FdsConfig;
use tcms_ir::{ResourceTypeId, System};
use tcms_obs::{span, NoopRecorder, Recorder, TimelinePoint};

use crate::assign::SharingSpec;
use crate::error::{CoreError, ScheduleError};
use crate::period::{candidate_periods, enumerate_periods};
use crate::report::ScheduleReport;
use crate::scheduler::ModuloScheduler;

/// One point of a period sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The uniform period applied to every global type.
    pub period: u32,
    /// Grid spacing implied for each process (uniform periods collapse the
    /// lcm to the period itself).
    pub spacing: u32,
    /// Resource/area accounting of the resulting schedule.
    pub report: ScheduleReport,
    /// Iterations of the coupled scheduler run.
    pub iterations: u64,
    /// Engine instrumentation of the run (cache hits, wall time).
    pub stats: tcms_fds::IfdsStats,
}

/// Schedules the system once per uniform period in `periods`, with every
/// shareable type global over all its users. Candidate runs execute in
/// parallel; the returned points are in input order.
///
/// Infeasible periods (equation-3 filter) are skipped before spawning.
///
/// # Errors
///
/// Propagates scheduler construction errors (none for well-formed
/// systems) and run failures such as a tripped budget; the error reported
/// is the one of the earliest failing candidate in input order.
pub fn sweep_uniform_periods(
    system: &System,
    periods: impl IntoIterator<Item = u32>,
    config: &FdsConfig,
) -> Result<Vec<SweepPoint>, ScheduleError> {
    sweep_uniform_periods_recorded(system, periods, config, &NoopRecorder)
}

/// [`sweep_uniform_periods`] with observability: one `"sweep"` timeline
/// point per candidate period. Candidate runs still execute in parallel;
/// recording happens sequentially after the parallel collect, so the
/// results and the event stream are deterministic.
///
/// # Errors
///
/// Same as [`sweep_uniform_periods`].
pub fn sweep_uniform_periods_recorded(
    system: &System,
    periods: impl IntoIterator<Item = u32>,
    config: &FdsConfig,
    rec: &dyn Recorder,
) -> Result<Vec<SweepPoint>, ScheduleError> {
    // Filter and validate sequentially so the parallel region spawns only
    // real work; run failures are folded back in input order below.
    let mut candidates: Vec<(u32, ModuloScheduler<'_>)> = Vec::new();
    for period in periods {
        let spec = SharingSpec::all_global(system, period);
        if !crate::period::spacing_feasible(system, &spec) {
            continue;
        }
        let scheduler = ModuloScheduler::new(system, spec)?.with_config_ref(config);
        candidates.push((period, scheduler));
    }
    let _sweep = span!(rec, "s2.sweep", candidates = candidates.len());
    // The parallel map preserves input order, and the sequential `?` fold
    // below reports the earliest failing candidate — deterministic even
    // when several candidates fail.
    let points: Vec<SweepPoint> = candidates
        .into_par_iter()
        .map(|(period, scheduler)| {
            let outcome = scheduler.run()?;
            Ok(SweepPoint {
                period,
                spacing: period,
                report: outcome.report(),
                iterations: outcome.iterations,
                stats: outcome.stats,
            })
        })
        .collect::<Vec<Result<SweepPoint, ScheduleError>>>()
        .into_iter()
        .collect::<Result<Vec<SweepPoint>, ScheduleError>>()?;
    if rec.enabled() {
        for (i, p) in points.iter().enumerate() {
            rec.counter_add("s2.candidates_scheduled", 1);
            p.stats.publish(rec);
            rec.timeline(TimelinePoint {
                phase: "sweep",
                iteration: i as u64,
                values: vec![
                    ("period".into(), f64::from(p.period)),
                    ("spacing".into(), f64::from(p.spacing)),
                    ("area".into(), p.report.total_area() as f64),
                    ("iterations".into(), p.iterations as f64),
                ],
            });
        }
    }
    Ok(points)
}

/// Exhaustively schedules every feasible period assignment and returns the
/// area-minimal one with its report.
///
/// `limit` caps the number of evaluated assignments (`None` = all; the
/// paper notes most combinations are filtered by equation 3 before
/// scheduling).
///
/// # Errors
///
/// Propagates validation errors of `base` and returns
/// [`CoreError::MissingPeriod`]-free specs only; `None` results become an
/// empty `Ok` sweep, so the caller sees `None` only when nothing was
/// feasible.
pub fn best_period_assignment(
    system: &System,
    base: &SharingSpec,
    config: &FdsConfig,
    limit: Option<usize>,
) -> Result<Option<(SharingSpec, ScheduleReport)>, ScheduleError> {
    best_period_assignment_recorded(system, base, config, limit, &NoopRecorder)
}

/// [`best_period_assignment`] with observability: an `"s2.enumerate"` span
/// around the fan-out, a candidate counter and one `"enumerate"` timeline
/// point per evaluated assignment (recorded in input order after the
/// parallel collect).
///
/// # Errors
///
/// Same as [`best_period_assignment`].
pub fn best_period_assignment_recorded(
    system: &System,
    base: &SharingSpec,
    config: &FdsConfig,
    limit: Option<usize>,
    rec: &dyn Recorder,
) -> Result<Option<(SharingSpec, ScheduleReport)>, ScheduleError> {
    base.validate(system)?;
    let globals = base.global_types(system);
    let cands: Vec<Vec<u32>> = globals
        .iter()
        .map(|&k| candidate_periods(system, base, k))
        .collect();
    let specs = enumerate_periods(system, base, &globals, &cands, limit);
    let _enumerate = span!(rec, "s2.enumerate", candidates = specs.len());
    // Validate every candidate before the parallel fan-out.
    let schedulers = specs
        .into_iter()
        .map(|spec| {
            ModuloScheduler::new(system, spec.clone()).map(|s| (spec, s.with_config_ref(config)))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    // Ordered collect + sequential fold: the earliest failing candidate
    // (in enumeration order) decides the error deterministically.
    let reports: Vec<(SharingSpec, ScheduleReport)> = schedulers
        .into_par_iter()
        .map(|(spec, scheduler)| {
            let report = scheduler.run()?.report();
            Ok((spec, report))
        })
        .collect::<Vec<Result<_, ScheduleError>>>()
        .into_iter()
        .collect::<Result<Vec<_>, ScheduleError>>()?;
    if rec.enabled() {
        for (i, (_, report)) in reports.iter().enumerate() {
            rec.counter_add("s2.candidates_scheduled", 1);
            rec.timeline(TimelinePoint {
                phase: "enumerate",
                iteration: i as u64,
                values: vec![("area".into(), report.total_area() as f64)],
            });
        }
    }
    // In-order fold with strict `<`: the winner (and any tie-break) is the
    // same one the sequential loop would pick.
    let mut best: Option<(SharingSpec, ScheduleReport)> = None;
    for (spec, report) in reports {
        if best
            .as_ref()
            .is_none_or(|(_, b)| report.total_area() < b.total_area())
        {
            best = Some((spec, report));
        }
    }
    if rec.enabled() {
        if let Some((_, report)) = &best {
            rec.gauge_set("s2.best_area", report.total_area() as f64);
        }
    }
    Ok(best)
}

/// Admissible lower bound on the shared pool of `rtype` under `spec`:
/// every slot of a block's folded profile covers at most `ceil(T_b / ρ)`
/// time steps, so a block with `n` busy cycles needs at least
/// `n / ceil(T_b/ρ)` grant-slots in total, and the pool peak is at least
/// the summed slot mass divided by ρ.
pub fn pool_lower_bound(system: &System, spec: &SharingSpec, rtype: ResourceTypeId) -> u32 {
    let Some(group) = spec.group(rtype) else {
        return 0;
    };
    let period = f64::from(spec.period(rtype).expect("global types have periods"));
    let mut slot_mass = 0.0f64;
    for &p in group {
        let mut process_mass = 0.0f64;
        for &b in system.process(p).blocks() {
            let busy: u32 = system
                .ops_of_type(b, rtype)
                .iter()
                .map(|&o| system.occupancy(o))
                .sum();
            let t_b = f64::from(system.block(b).time_range());
            let reuse = (t_b / period).ceil();
            process_mass = process_mass.max(f64::from(busy) / reuse);
        }
        slot_mass += process_mass;
    }
    (slot_mass / period).ceil() as u32
}

/// Area lower bound for a period assignment: local pools as scheduled
/// plus [`pool_lower_bound`] per global type. Reference implementation
/// the cached [`BoundContext::area_lower_bound`] is tested against.
#[cfg(test)]
fn area_lower_bound(system: &System, spec: &SharingSpec) -> u64 {
    let mut area = 0u64;
    for (k, rt) in system.library().iter() {
        let group = spec.group(k).unwrap_or(&[]);
        let local_users = system
            .users_of_type(k)
            .into_iter()
            .filter(|p| !group.contains(p))
            .count() as u64;
        let global = u64::from(pool_lower_bound(system, spec, k));
        area += (local_users + global) * rt.area();
    }
    area
}

/// Spec-independent inputs of [`area_lower_bound`], resolved once per
/// search instead of once per candidate: busy cycles per `(block, type)`,
/// the user set per type and the per-block reuse factors only depend on
/// the system, while the enumerated specs vary periods alone.
struct BoundContext<'a> {
    system: &'a System,
    /// `busy[b * num_types + k]`: summed occupancy of type-`k` ops in `b`.
    busy: Vec<u32>,
    /// Users per type, in `process_ids` order.
    users: Vec<Vec<tcms_ir::ProcessId>>,
    num_types: usize,
}

impl<'a> BoundContext<'a> {
    fn new(system: &'a System) -> Self {
        let num_types = system.library().len();
        let mut busy = vec![0u32; system.num_blocks() * num_types];
        for (o, op) in system.ops() {
            busy[op.block().index() * num_types + op.resource_type().index()] +=
                system.occupancy(o);
        }
        let users = system
            .library()
            .ids()
            .map(|k| system.users_of_type(k))
            .collect();
        BoundContext {
            system,
            busy,
            users,
            num_types,
        }
    }

    /// Same value as [`area_lower_bound`] (the search's sort key and prune
    /// test must match the old sequential implementation exactly), without
    /// the per-call `Vec` churn of `users_of_type`/`ops_of_type`. The
    /// search itself goes through the memoized
    /// [`BoundContext::area_lower_bounds`]; this per-spec form is the
    /// reference it is tested against.
    #[cfg(test)]
    fn area_lower_bound(&self, spec: &SharingSpec) -> u64 {
        let mut area = 0u64;
        for (k, rt) in self.system.library().iter() {
            let group = spec.group(k).unwrap_or(&[]);
            let mut instances = self.users[k.index()]
                .iter()
                .filter(|p| !group.contains(p))
                .count() as u64;
            if !group.is_empty() {
                let period = spec.period(k).expect("global types have periods");
                instances += self.pool_instances(k, group, period);
            }
            area += instances * rt.area();
        }
        area
    }

    /// The pool term of one global type: a pure function of the type's
    /// group and period given the system.
    fn pool_instances(&self, k: ResourceTypeId, group: &[tcms_ir::ProcessId], period: u32) -> u64 {
        let period = f64::from(period);
        let mut slot_mass = 0.0f64;
        for &p in group {
            let mut process_mass = 0.0f64;
            for &b in self.system.process(p).blocks() {
                let busy = self.busy[b.index() * self.num_types + k.index()];
                let t_b = f64::from(self.system.block(b).time_range());
                let reuse = (t_b / period).ceil();
                process_mass = process_mass.max(f64::from(busy) / reuse);
            }
            slot_mass += process_mass;
        }
        (slot_mass / period).ceil() as u64
    }

    /// Bounds of a whole candidate batch in one call, each equal to
    /// [`BoundContext::area_lower_bound`] of that spec.
    ///
    /// The specs enumerated by one period search share their sharing
    /// groups and differ only in the periods, so the expensive pool term
    /// is a function of `(type, period)` alone and recurs across most of
    /// the batch; this entry point memoizes it per `(type, period)` pair
    /// (a linear scan — searches enumerate few distinct periods). Group
    /// constancy is debug-asserted against the first spec that filled
    /// each memo slot.
    fn area_lower_bounds(&self, specs: &[SharingSpec]) -> Vec<u64> {
        let mut memo: Vec<(usize, u32, u64)> = Vec::new();
        #[cfg(debug_assertions)]
        let mut memo_groups: Vec<Vec<tcms_ir::ProcessId>> = Vec::new();
        specs
            .iter()
            .map(|spec| {
                let mut area = 0u64;
                for (k, rt) in self.system.library().iter() {
                    let group = spec.group(k).unwrap_or(&[]);
                    let mut instances = self.users[k.index()]
                        .iter()
                        .filter(|p| !group.contains(p))
                        .count() as u64;
                    if !group.is_empty() {
                        let period = spec.period(k).expect("global types have periods");
                        let hit = memo
                            .iter()
                            .position(|&(mk, mp, _)| mk == k.index() && mp == period);
                        let pool = match hit {
                            Some(i) => {
                                #[cfg(debug_assertions)]
                                debug_assert_eq!(
                                    memo_groups[i], group,
                                    "batched bounds require constant groups across specs"
                                );
                                memo[i].2
                            }
                            None => {
                                let v = self.pool_instances(k, group, period);
                                memo.push((k.index(), period, v));
                                #[cfg(debug_assertions)]
                                memo_groups.push(group.to_vec());
                                v
                            }
                        };
                        instances += pool;
                    }
                    area += instances * rt.area();
                }
                area
            })
            .collect()
    }
}

/// Lower-bound-pruned period search (the paper's "find the optimal periods
/// ... without a complete enumeration" future-work item).
///
/// Candidates are stably sorted by area lower bound and scheduled in
/// parallel against a shared atomic incumbent; a candidate is pruned when
/// its bound strictly exceeds the incumbent. Returns the same optimum —
/// and the same winning spec — as [`best_period_assignment`] at every
/// thread count (see the module docs for why), while scheduling far fewer
/// combinations. The returned `evaluated` count is the only
/// timing-dependent output: a stale incumbent may let a few extra
/// candidates through, none of which can win.
///
/// # Errors
///
/// Propagates validation errors of `base`.
pub fn pruned_best_period_assignment(
    system: &System,
    base: &SharingSpec,
    config: &FdsConfig,
) -> Result<Option<(SharingSpec, ScheduleReport, usize)>, ScheduleError> {
    pruned_best_period_assignment_recorded(system, base, config, &NoopRecorder)
}

/// [`pruned_best_period_assignment`] with observability: counters for
/// scheduled vs bound-pruned candidates and a timeline of the incumbent
/// area as the search tightens.
///
/// # Errors
///
/// Same as [`pruned_best_period_assignment`].
pub fn pruned_best_period_assignment_recorded(
    system: &System,
    base: &SharingSpec,
    config: &FdsConfig,
    rec: &dyn Recorder,
) -> Result<Option<(SharingSpec, ScheduleReport, usize)>, ScheduleError> {
    base.validate(system)?;
    let globals = base.global_types(system);
    let cands: Vec<Vec<u32>> = globals
        .iter()
        .map(|&k| candidate_periods(system, base, k))
        .collect();
    let specs = enumerate_periods(system, base, &globals, &cands, None);
    let _pruned = span!(rec, "s2.pruned_search", candidates = specs.len());
    // Most promising (lowest bound) first, so the incumbent tightens
    // early; the stable sort keeps enumeration order among equal bounds,
    // which is what makes the winner below the same one the sequential
    // incumbent loop picked.
    let ctx = BoundContext::new(system);
    let bounds = ctx.area_lower_bounds(&specs);
    let mut bounded: Vec<(u64, SharingSpec)> = bounds.into_iter().zip(specs).collect();
    bounded.sort_by_key(|&(bound, _)| bound);
    // Shared incumbent: schedule candidates in parallel, prune with a
    // *strict* `bound > incumbent`. The incumbent only ever holds real
    // schedule areas (>= optimum), so every potentially-optimal candidate
    // is scheduled in every run; the recording and the winner fold run
    // sequentially in bound order afterwards.
    let incumbent = AtomicU64::new(u64::MAX);
    let results: Vec<Result<Option<ScheduleReport>, ScheduleError>> =
        rayon::par_map_indexed(bounded.len(), |i| {
            let (bound, spec) = &bounded[i];
            if *bound > incumbent.load(Ordering::Relaxed) {
                return Ok(None);
            }
            let outcome = ModuloScheduler::new(system, spec.clone())?
                .with_config_ref(config)
                .run()?;
            let report = outcome.report();
            incumbent.fetch_min(report.total_area(), Ordering::Relaxed);
            Ok(Some(report))
        });
    // In-order fold: the earliest error in bound order decides
    // deterministically, and the strict `<` keeps the first optimal spec.
    let mut best: Option<(usize, ScheduleReport)> = None;
    let mut evaluated = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        match result? {
            None => rec.counter_add("s2.candidates_pruned", 1),
            Some(report) => {
                evaluated += 1;
                rec.counter_add("s2.candidates_scheduled", 1);
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| report.total_area() < b.total_area())
                {
                    if rec.enabled() {
                        rec.timeline(TimelinePoint {
                            phase: "pruned_search",
                            iteration: evaluated as u64,
                            values: vec![("incumbent_area".into(), report.total_area() as f64)],
                        });
                    }
                    best = Some((i, report));
                }
            }
        }
    }
    Ok(best.map(|(i, r)| {
        let spec = bounded.swap_remove(i).1;
        (spec, r, evaluated)
    }))
}

/// Greedy automatic scope selection (the paper's other future-work item):
/// starting from the all-local spec, types are tried globally over all
/// their users in decreasing area order and kept global when the scheduled
/// total area improves.
///
/// # Errors
///
/// Propagates scheduler errors (none for well-formed systems).
pub fn auto_assign(
    system: &System,
    period: u32,
    config: &FdsConfig,
) -> Result<(SharingSpec, ScheduleReport), ScheduleError> {
    auto_assign_recorded(system, period, config, &NoopRecorder)
}

/// [`auto_assign`] with observability: an `"s1.auto_assign"` span, one
/// `"s1.globalize"` event per accepted type and the running total area as
/// an `"s1"` timeline.
///
/// # Errors
///
/// Same as [`auto_assign`].
pub fn auto_assign_recorded(
    system: &System,
    period: u32,
    config: &FdsConfig,
    rec: &dyn Recorder,
) -> Result<(SharingSpec, ScheduleReport), ScheduleError> {
    let _s1 = span!(rec, "s1.auto_assign", period = period);
    let mut spec = SharingSpec::all_local(system);
    let mut report = ModuloScheduler::new(system, spec.clone())?
        .with_config_ref(config)
        .run()?
        .report();
    let mut types: Vec<ResourceTypeId> = system.library().ids().collect();
    types.sort_by_key(|&k| std::cmp::Reverse(system.library().get(k).area()));
    for (trial_no, k) in types.into_iter().enumerate() {
        let users = system.users_of_type(k);
        if users.len() < 2 {
            continue;
        }
        let mut trial = spec.clone();
        trial.set_global(k, users, period);
        if !crate::period::spacing_feasible(system, &trial) {
            continue;
        }
        // The trial spec moves into the scheduler and is recovered from
        // the outcome only when accepted — rejected trials never clone it.
        let outcome = ModuloScheduler::new(system, trial)?
            .with_config_ref(config)
            .run()?;
        let trial_report = outcome.report();
        rec.counter_add("s1.trials", 1);
        if trial_report.total_area() < report.total_area() {
            spec = outcome.into_spec();
            report = trial_report;
            if rec.enabled() {
                rec.event(
                    "s1.globalize",
                    &[
                        ("type", system.library().get(k).name().into()),
                        ("area", report.total_area().into()),
                    ],
                );
            }
        }
        if rec.enabled() {
            rec.timeline(TimelinePoint {
                phase: "s1",
                iteration: trial_no as u64,
                values: vec![("area".into(), report.total_area() as f64)],
            });
        }
    }
    Ok((spec, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::{paper_system, random_system, RandomSystemConfig};

    #[test]
    fn sweep_skips_infeasible_periods() {
        let (sys, _) = paper_system().unwrap();
        let points =
            sweep_uniform_periods(&sys, [1, 5, 15, 16, 40], &FdsConfig::default()).unwrap();
        let periods: Vec<u32> = points.iter().map(|p| p.period).collect();
        // 16 and 40 exceed the diffeq spacing budget of 15.
        assert_eq!(periods, vec![1, 5, 15]);
    }

    #[test]
    fn larger_period_never_hurts_pool_bound() {
        let (sys, t) = paper_system().unwrap();
        let lb = |period| {
            let spec = SharingSpec::all_global(&sys, period);
            pool_lower_bound(&sys, &spec, t.mul)
        };
        // Period 1 forces the pool to cover the peak; longer periods can
        // only relax the bound.
        assert!(lb(1) >= lb(5));
        assert!(lb(5) >= 1);
    }

    #[test]
    fn pool_lower_bound_is_admissible_on_paper_system() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let report = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap()
            .report();
        for k in spec.global_types(&sys) {
            assert!(
                pool_lower_bound(&sys, &spec, k) <= report.instances(k),
                "bound must not exceed the achieved count for {k}"
            );
        }
    }

    #[test]
    fn pruned_search_matches_exhaustive_on_small_system() {
        let _guard = crate::test_support::threads_lock();
        let cfg = RandomSystemConfig {
            processes: 2,
            blocks_per_process: 1,
            layers: 3,
            ops_per_layer: (1, 2),
            edge_prob: 0.5,
            slack: 2.0,
            type_weights: [2, 1, 1],
        };
        let (sys, _) = random_system(&cfg, 11).unwrap();
        let base = SharingSpec::all_global(&sys, 2);
        if base.global_types(&sys).is_empty() {
            return; // seed produced no shareable type; nothing to compare
        }
        let fds = FdsConfig::default();
        let full = best_period_assignment(&sys, &base, &fds, None)
            .unwrap()
            .unwrap();
        // The parallel search must return the exhaustive optimum — same
        // area AND same winning spec — at every thread count.
        for threads in [1, 2, 4, 8] {
            rayon::set_num_threads(threads);
            let pruned = pruned_best_period_assignment(&sys, &base, &fds)
                .unwrap()
                .unwrap();
            assert_eq!(
                full.1.total_area(),
                pruned.1.total_area(),
                "threads = {threads}: pruned search must find the optimum"
            );
            assert_eq!(
                full.0, pruned.0,
                "threads = {threads}: winning spec must be deterministic"
            );
            assert!(
                pruned.2 > 0,
                "threads = {threads}: at least one candidate is scheduled"
            );
        }
        rayon::set_num_threads(0);
    }

    #[test]
    fn cached_area_bound_matches_reference() {
        let (sys, _) = paper_system().unwrap();
        let ctx = super::BoundContext::new(&sys);
        for period in 1..=8u32 {
            let spec = SharingSpec::all_global(&sys, period);
            assert_eq!(
                ctx.area_lower_bound(&spec),
                super::area_lower_bound(&sys, &spec),
                "period {period}: cached bound must equal the reference"
            );
        }
        let local = SharingSpec::all_local(&sys);
        assert_eq!(
            ctx.area_lower_bound(&local),
            super::area_lower_bound(&sys, &local)
        );
    }

    #[test]
    fn batched_area_bounds_match_per_spec_bounds() {
        let (sys, _) = paper_system().unwrap();
        let ctx = super::BoundContext::new(&sys);
        // A realistic batch: repeated periods (the memo's hit case), plus
        // the all-local spec with no pool term at all.
        let mut specs: Vec<SharingSpec> = (1..=8u32)
            .chain([3, 5, 5, 1])
            .map(|p| SharingSpec::all_global(&sys, p))
            .collect();
        specs.push(SharingSpec::all_local(&sys));
        let batched = ctx.area_lower_bounds(&specs);
        assert_eq!(batched.len(), specs.len());
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(
                batched[i],
                ctx.area_lower_bound(spec),
                "spec {i}: batched bound must equal the per-spec bound"
            );
        }
    }

    #[test]
    fn parallel_exploration_is_deterministic() {
        let (sys, _) = paper_system().unwrap();
        let fds = FdsConfig::default();
        let sweep = || {
            sweep_uniform_periods(&sys, [1, 3, 5, 15], &fds)
                .unwrap()
                .into_iter()
                .map(|p| (p.period, p.report.total_area()))
                .collect::<Vec<_>>()
        };
        let a = sweep();
        assert_eq!(a, sweep(), "sweep must be reproducible");
        assert_eq!(
            a.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            vec![1, 3, 5, 15],
            "points must come back in input order"
        );
        let base = SharingSpec::all_global(&sys, 5);
        let pick = || {
            best_period_assignment(&sys, &base, &fds, Some(6))
                .unwrap()
                .map(|(spec, report)| (spec, report.total_area()))
        };
        let first = pick().unwrap();
        let second = pick().unwrap();
        assert_eq!(first.1, second.1);
        assert_eq!(first.0.global_types(&sys), second.0.global_types(&sys));
    }

    #[test]
    fn auto_assign_beats_or_matches_local() {
        let (sys, _) = paper_system().unwrap();
        let fds = FdsConfig::default();
        let local_area = ModuloScheduler::new(&sys, SharingSpec::all_local(&sys))
            .unwrap()
            .run()
            .unwrap()
            .report()
            .total_area();
        let (spec, report) = auto_assign(&sys, 5, &fds).unwrap();
        assert!(report.total_area() <= local_area);
        // On the paper system sharing the multiplier is always a win.
        let t_mul = sys.library().by_name("mul").unwrap();
        assert!(spec.is_global(t_mul));
    }
}
