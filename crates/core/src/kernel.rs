//! Branch-free fold kernels over contiguous profile slabs.
//!
//! Every kernel here is an `_into` variant writing to caller-provided
//! storage (an arena slice or a reused scratch buffer), so the hot force
//! paths allocate nothing. The loops are fixed-stride over
//! `chunks_exact(period)` with `f64::max` reductions — no per-element
//! branching, no indexing through nested `Vec`s — which the compiler
//! auto-vectorizes.
//!
//! # Bit-identity to the seed's branchy folds
//!
//! The seed folded with `if v > out[slot] { out[slot] = v }` in ascending
//! `t`. Replacing that with `out[slot].max(v)` is bitwise identical here
//! because profile values are never `NaN` and never `-0.0` (occupancy
//! probabilities are sums of non-negative terms; exact cancellation yields
//! `+0.0`), and a `max` reduction over such values is order-insensitive:
//! it returns the same maximum element bitwise no matter how the
//! comparisons associate. The legacy loops are kept (test/oracle builds
//! only) as [`modulo_max_legacy`] / [`slot_max_legacy`] and pinned against
//! the kernels by the proptest suites.

/// Folds `dist` (indexed by time step) into `out` (one period of slots),
/// keeping the slot maximum seeded at `0.0`:
/// `out[τ] = max(0, max { dist[t] : t ≡ τ (mod |out|) })`.
///
/// # Panics
///
/// Panics if `out` is empty.
#[inline]
pub fn modulo_max_into(dist: &[f64], out: &mut [f64]) {
    assert!(!out.is_empty(), "period must be at least 1");
    out.fill(0.0);
    let period = out.len();
    let mut chunks = dist.chunks_exact(period);
    for chunk in &mut chunks {
        for (o, &v) in out.iter_mut().zip(chunk) {
            *o = o.max(v);
        }
    }
    for (o, &v) in out.iter_mut().zip(chunks.remainder()) {
        *o = o.max(v);
    }
}

/// Fused tentative fold: like [`modulo_max_into`] over the element-wise
/// sum `dist[t] + delta[t]` (with `delta` zero-extended past its end),
/// without materializing the sum. This is the inner loop of the modified
/// force's tentative evaluation — the seed allocated a full copy of the
/// distribution per candidate here.
///
/// # Panics
///
/// Panics if `out` is empty or `delta` is longer than `dist`.
#[inline]
pub fn modulo_max_delta_into(dist: &[f64], delta: &[f64], out: &mut [f64]) {
    assert!(!out.is_empty(), "period must be at least 1");
    assert!(delta.len() <= dist.len(), "delta must fit the distribution");
    out.fill(0.0);
    let period = out.len();
    let (with_delta, tail) = dist.split_at(delta.len());
    let mut dc = with_delta.chunks_exact(period);
    let mut xc = delta.chunks_exact(period);
    for (chunk, xchunk) in (&mut dc).zip(&mut xc) {
        for ((o, &v), &x) in out.iter_mut().zip(chunk).zip(xchunk) {
            *o = o.max(v + x);
        }
    }
    for ((o, &v), &x) in out.iter_mut().zip(dc.remainder()).zip(xc.remainder()) {
        *o = o.max(v + x);
    }
    // Past the delta the sum is just the distribution; continue at the
    // slot the prefix stopped on, realign to slot 0 with a short scalar
    // head, then fold the rest in full-period chunks again. The span
    // optimization passes deltas truncated to their dirty span, so this
    // tail covers most of the distribution on the hot path.
    let slot0 = delta.len() % period;
    let head_len = if slot0 == 0 {
        0
    } else {
        (period - slot0).min(tail.len())
    };
    let (head, aligned) = tail.split_at(head_len);
    for (slot, &v) in (slot0..).zip(head) {
        out[slot] = out[slot].max(v);
    }
    let mut chunks = aligned.chunks_exact(period);
    for chunk in &mut chunks {
        for (o, &v) in out.iter_mut().zip(chunk) {
            *o = o.max(v);
        }
    }
    for (o, &v) in out.iter_mut().zip(chunks.remainder()) {
        *o = o.max(v);
    }
}

/// Prefix/suffix modulo-max tables of `dist`: row `j` of `pre` holds the
/// zero-seeded per-slot maximum over `t < j`, row `j` of `suf` over
/// `t >= j` (rows are `period` wide, `dist.len() + 1` rows each).
///
/// With the tables, the fused fold of a delta that is zero outside
/// `[lo, hi)` only has to scan the span:
/// `out[τ] = max(pre[lo][τ], max{dist[t] + delta[t] : t ∈ [lo, hi), t ≡ τ}, suf[hi][τ])`
/// — see [`modulo_max_delta_span_into`]. Regrouping the per-slot maximum
/// this way is bitwise free: profile values are never `NaN`/`-0.0`, so
/// the max reduction is order-insensitive.
///
/// # Panics
///
/// Panics if `period` is zero.
pub fn modulo_boundary_max_tables(dist: &[f64], period: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(period > 0, "period must be at least 1");
    let rows = dist.len() + 1;
    let mut pre = vec![0.0f64; rows * period];
    for (j, &v) in dist.iter().enumerate() {
        let (prev, cur) = pre.split_at_mut((j + 1) * period);
        let prev = &prev[j * period..];
        cur[..period].copy_from_slice(prev);
        let slot = j % period;
        cur[slot] = cur[slot].max(v);
    }
    let mut suf = vec![0.0f64; rows * period];
    for (j, &v) in dist.iter().enumerate().rev() {
        let (cur, next) = suf.split_at_mut((j + 1) * period);
        let cur = &mut cur[j * period..];
        cur.copy_from_slice(&next[..period]);
        let slot = j % period;
        cur[slot] = cur[slot].max(v);
    }
    (pre, suf)
}

/// Span-limited fused fold: [`modulo_max_delta_into`] over
/// `dist + delta` where `delta` (starting at time `start`) is the only
/// non-zero stretch, with everything outside the span taken from the
/// [`modulo_boundary_max_tables`] of `dist`. Bitwise identical to the
/// full fused fold — same per-slot value multisets, and the zero-seeded
/// max is order-insensitive over never-`NaN`/`-0.0` profiles.
///
/// # Panics
///
/// Panics if `out` is empty, the span `[start, start + delta.len())`
/// overruns `dist`, or the tables are shorter than the span rows need.
#[inline]
pub fn modulo_max_delta_span_into(
    pre: &[f64],
    suf: &[f64],
    dist: &[f64],
    delta: &[f64],
    start: usize,
    out: &mut [f64],
) {
    assert!(!out.is_empty(), "period must be at least 1");
    let period = out.len();
    let end = start + delta.len();
    assert!(end <= dist.len(), "span must fit the distribution");
    let pre_row = &pre[start * period..(start + 1) * period];
    let suf_row = &suf[end * period..(end + 1) * period];
    for ((o, &p), &s) in out.iter_mut().zip(pre_row).zip(suf_row) {
        *o = p.max(s);
    }
    let span = &dist[start..end];
    let slot0 = start % period;
    let head_len = if slot0 == 0 {
        0
    } else {
        (period - slot0).min(span.len())
    };
    let (dist_head, dist_tail) = span.split_at(head_len);
    let (delta_head, delta_tail) = delta.split_at(head_len);
    for ((slot, &v), &x) in (slot0..).zip(dist_head).zip(delta_head) {
        out[slot] = out[slot].max(v + x);
    }
    let mut dist_chunks = dist_tail.chunks_exact(period);
    let mut delta_chunks = delta_tail.chunks_exact(period);
    for (dc, xc) in (&mut dist_chunks).zip(&mut delta_chunks) {
        for ((o, &v), &x) in out.iter_mut().zip(dc).zip(xc) {
            *o = o.max(v + x);
        }
    }
    for ((o, &v), &x) in out
        .iter_mut()
        .zip(dist_chunks.remainder())
        .zip(delta_chunks.remainder())
    {
        *o = o.max(v + x);
    }
}

/// Element-wise maximum fold `acc[i] = max(acc[i], b[i])` — one step of
/// the per-process balancing over non-overlapping blocks (equation 9).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn slot_max_into(acc: &mut [f64], b: &[f64]) {
    assert_eq!(acc.len(), b.len(), "profiles must cover the same period");
    for (a, &v) in acc.iter_mut().zip(b) {
        *a = a.max(v);
    }
}

/// Element-wise sum fold `acc[i] += b[i]` — one step of the group
/// summation `G_k = Σ_p M_{p,k}`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn add_into(acc: &mut [f64], b: &[f64]) {
    assert_eq!(acc.len(), b.len(), "profiles must cover the same period");
    for (a, &v) in acc.iter_mut().zip(b) {
        *a += v;
    }
}

/// Element-wise difference `out[i] = a[i] - b[i]` — the profile
/// displacement `ΔG` the modified force prices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn sub_into(out: &mut [f64], b: &[f64]) {
    assert_eq!(out.len(), b.len(), "profiles must cover the same period");
    for (a, &v) in out.iter_mut().zip(b) {
        *a -= v;
    }
}

/// Integer variant of [`modulo_max_into`] for occupancy counts.
///
/// # Panics
///
/// Panics if `out` is empty.
#[inline]
pub fn modulo_max_counts_into(counts: &[u32], out: &mut [u32]) {
    assert!(!out.is_empty(), "period must be at least 1");
    out.fill(0);
    let period = out.len();
    let mut chunks = counts.chunks_exact(period);
    for chunk in &mut chunks {
        for (o, &v) in out.iter_mut().zip(chunk) {
            *o = (*o).max(v);
        }
    }
    for (o, &v) in out.iter_mut().zip(chunks.remainder()) {
        *o = (*o).max(v);
    }
}

/// Integer element-wise maximum fold, used by the exact search's slot
/// profiles.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn slot_max_u32_into(acc: &mut [u32], b: &[u32]) {
    assert_eq!(acc.len(), b.len(), "profiles must cover the same period");
    for (a, &v) in acc.iter_mut().zip(b) {
        *a = (*a).max(v);
    }
}

/// Integer element-wise sum fold, used by the exact search's slot
/// profiles.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn add_u32_into(acc: &mut [u32], b: &[u32]) {
    assert_eq!(acc.len(), b.len(), "profiles must cover the same period");
    for (a, &v) in acc.iter_mut().zip(b) {
        *a += v;
    }
}

/// The seed's branchy modulo-max fold, kept verbatim as the oracle the
/// slab kernels are property-tested against (and as the per-fold
/// baseline of the `repro_force_kernel` bench).
#[cfg(any(test, feature = "naive-oracle"))]
pub fn modulo_max_legacy(dist: &[f64], period: u32) -> Vec<f64> {
    assert!(period > 0, "period must be at least 1");
    let mut out = vec![0.0; period as usize];
    for (t, &v) in dist.iter().enumerate() {
        let slot = t % period as usize;
        if v > out[slot] {
            out[slot] = v;
        }
    }
    out
}

/// The seed's allocating element-wise maximum, kept as the oracle for
/// [`slot_max_into`].
#[cfg(any(test, feature = "naive-oracle"))]
pub fn slot_max_legacy(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "profiles must cover the same period");
    a.iter().zip(b).map(|(&x, &y)| x.max(y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_max_matches_legacy_bitwise() {
        let d = [0.2, 0.9, 0.1, 0.4, 0.8, 0.15, 0.4];
        for period in 1..=9u32 {
            let mut out = vec![f64::NAN; period as usize];
            modulo_max_into(&d, &mut out);
            let legacy = modulo_max_legacy(&d, period);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                legacy.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "period {period}"
            );
        }
    }

    #[test]
    fn delta_fold_matches_materialized_sum() {
        let d = [0.2, 0.9, 0.1, 0.4, 0.8, 0.15, 0.4, 0.0];
        for dlen in 0..=d.len() {
            let delta: Vec<f64> = (0..dlen).map(|i| (i as f64 - 2.0) * 0.125).collect();
            let mut summed = d.to_vec();
            for (t, &x) in delta.iter().enumerate() {
                summed[t] += x;
            }
            for period in 1..=9u32 {
                let mut fused = vec![f64::NAN; period as usize];
                modulo_max_delta_into(&d, &delta, &mut fused);
                let reference = modulo_max_legacy(&summed, period);
                assert_eq!(
                    fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "period {period}, delta len {dlen}"
                );
            }
        }
    }

    #[test]
    fn slot_max_and_add_fold() {
        let mut acc = vec![1.0, 0.0, 2.0];
        slot_max_into(&mut acc, &[0.5, 3.0, 1.0]);
        assert_eq!(acc, vec![1.0, 3.0, 2.0]);
        add_into(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 4.0, 3.0]);
        sub_into(&mut acc, &[2.0, 4.0, 3.0]);
        assert_eq!(acc, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn integer_kernels() {
        let mut out = vec![9u32; 2];
        modulo_max_counts_into(&[1, 0, 3, 2], &mut out);
        assert_eq!(out, vec![3, 2]);
        let mut acc = vec![1u32, 5];
        slot_max_u32_into(&mut acc, &[2, 4]);
        assert_eq!(acc, vec![2, 5]);
        add_u32_into(&mut acc, &[1, 1]);
        assert_eq!(acc, vec![3, 6]);
    }

    #[test]
    fn empty_dist_zeroes_out() {
        let mut out = vec![f64::NAN; 3];
        modulo_max_into(&[], &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "period must be at least 1")]
    fn empty_out_panics() {
        modulo_max_into(&[1.0], &mut []);
    }
}
