//! The modulo-maximum transformation (paper equation 7).
//!
//! Absolute time steps map onto period slots via `τ = t mod ρ`
//! (equation 1). The modulo-maximum of a distribution folds the block's
//! time axis onto one period, keeping the *maximum* per slot:
//!
//! `D̂(τ) = max { D(t) : t ≡ τ (mod ρ) }`
//!
//! A process that is granted `c` units in slot τ may use them at every
//! absolute step mapping to τ, so the maximum — not the sum — is the
//! grant the block needs.

/// Folds `dist` (indexed by time step) into `period` slots, keeping the
/// slot maximum.
///
/// Slots with no mapped time step (possible when `dist.len() < period`)
/// are 0.
///
/// # Panics
///
/// Panics if `period == 0`.
///
/// # Example
///
/// ```
/// use tcms_core::modulo::modulo_max;
///
/// let d = [1.0, 0.0, 2.0, 0.5, 0.0, 3.0];
/// assert_eq!(modulo_max(&d, 2), vec![2.0, 3.0]);
/// assert_eq!(modulo_max(&d, 3), vec![1.0, 0.0, 3.0]);
/// ```
pub fn modulo_max(dist: &[f64], period: u32) -> Vec<f64> {
    assert!(period > 0, "period must be at least 1");
    let mut out = vec![0.0; period as usize];
    crate::kernel::modulo_max_into(dist, &mut out);
    out
}

/// Integer variant of [`modulo_max`] for occupancy counts.
pub fn modulo_max_counts(counts: &[u32], period: u32) -> Vec<u32> {
    assert!(period > 0, "period must be at least 1");
    let mut out = vec![0u32; period as usize];
    crate::kernel::modulo_max_counts_into(counts, &mut out);
    out
}

/// Element-wise maximum of two slot profiles of equal length, used for the
/// per-process balancing over non-overlapping blocks (equation 9).
///
/// # Panics
///
/// Panics if the profiles have different lengths.
pub fn slot_max(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    crate::kernel::slot_max_into(&mut out, b);
    out
}

/// Least common multiple (used for grid spacings, equation 3).
///
/// `lcm(0, x)` is defined as `x` for convenience.
///
/// # Panics
///
/// Panics if the result does not fit in `u32`. User-supplied periods are
/// screened with [`checked_lcm`] during [`crate::SharingSpec::validate`],
/// so validated specifications never reach this panic.
pub fn lcm(a: u32, b: u32) -> u32 {
    checked_lcm(a, b).expect("lcm overflows u32 — periods must pass validation first")
}

/// Overflow-aware least common multiple: `None` if the result exceeds
/// `u32::MAX`. This is the entry point for untrusted (user-supplied)
/// periods; spec validation maps `None` to
/// [`crate::CoreError::PeriodGridOverflow`].
///
/// `checked_lcm(0, x)` is defined as `Some(x)` for convenience.
pub fn checked_lcm(a: u32, b: u32) -> Option<u32> {
    if a == 0 {
        return Some(b);
    }
    if b == 0 {
        return Some(a);
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Greatest common divisor.
pub fn gcd(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_keeps_maxima() {
        let d = [0.2, 0.9, 0.1, 0.4, 0.8];
        let m = modulo_max(&d, 2);
        // slot 0: t=0,2,4 -> max(.2,.1,.8)=.8 ; slot 1: t=1,3 -> .9
        assert_eq!(m, vec![0.8, 0.9]);
    }

    #[test]
    fn period_longer_than_dist_pads_zero() {
        let d = [1.0, 2.0];
        assert_eq!(modulo_max(&d, 4), vec![1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn period_one_is_global_peak() {
        let d = [0.1, 0.7, 0.3];
        assert_eq!(modulo_max(&d, 1), vec![0.7]);
    }

    #[test]
    fn counts_variant() {
        assert_eq!(modulo_max_counts(&[1, 0, 3, 2], 2), vec![3, 2]);
    }

    #[test]
    fn empty_dist() {
        assert_eq!(modulo_max(&[], 3), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "period must be at least 1")]
    fn zero_period_panics() {
        let _ = modulo_max(&[1.0], 0);
    }

    #[test]
    fn slot_max_elementwise() {
        assert_eq!(
            slot_max(&[1.0, 0.0, 2.0], &[0.5, 3.0, 1.0]),
            vec![1.0, 3.0, 2.0]
        );
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(5, 5), 5);
        assert_eq!(lcm(0, 9), 9);
        assert_eq!(lcm(9, 0), 9);
    }

    #[test]
    fn checked_lcm_detects_overflow() {
        // Near-u32::MAX co-prime pair: the true lcm is their product,
        // which needs 62 bits.
        let a = u32::MAX - 4; // 4294967291, prime
        let b = u32::MAX - 58; // 4294967237, prime
        assert_eq!(gcd(a, b), 1);
        assert_eq!(checked_lcm(a, b), None);
        // Non-co-prime values that still fit are computed exactly.
        assert_eq!(checked_lcm(1 << 31, 1 << 30), Some(1 << 31));
        assert_eq!(checked_lcm(a, a), Some(a));
        assert_eq!(checked_lcm(0, 7), Some(7));
        assert_eq!(checked_lcm(7, 0), Some(7));
    }

    #[test]
    #[should_panic(expected = "lcm overflows u32")]
    fn unchecked_lcm_overflow_panics_with_message() {
        let _ = lcm(u32::MAX - 4, u32::MAX - 58);
    }

    #[test]
    fn fold_is_idempotent_on_period_aligned_data() {
        // Folding a profile already shorter than the period is identity
        // (padded with zeros).
        let d = [0.4, 0.6];
        let once = modulo_max(&d, 5);
        let twice = modulo_max(&once, 5);
        assert_eq!(once, twice);
    }
}
