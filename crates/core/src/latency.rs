//! Real-time analysis: reaction latency and initiation-interval bounds.
//!
//! The §3.2 drawback of larger periods is quantifiable: block starts only
//! happen on the grid, so a spontaneous trigger waits up to
//! `spacing − 1` steps before its first block may launch, and a looping
//! block cannot restart faster than the next grid point after its
//! makespan. These bounds are what a hard-real-time designer checks
//! against the deadline budget when choosing periods.

use tcms_fds::Schedule;
use tcms_ir::{ProcessId, System};

use crate::assign::SharingSpec;

/// Worst-case timing bounds of one process under a modulo schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBound {
    /// Worst wait from a trigger (arriving at an idle process) to the
    /// first block start: `spacing − 1` of the first block.
    pub worst_start_wait: u32,
    /// Sum of the block makespans (the pure computation time).
    pub total_makespan: u32,
    /// Worst trigger-to-completion reaction time of one activation:
    /// per block, a grid wait of up to `spacing − 1` plus its makespan.
    pub worst_reaction: u32,
    /// Minimum initiation interval of back-to-back activations: the
    /// smallest grid multiple covering the worst reaction, i.e. how often
    /// a loop of this process can re-run.
    pub min_initiation_interval: u32,
}

/// Computes the worst-case bounds of `process`.
///
/// # Panics
///
/// Panics if the schedule is incomplete for the process's blocks.
pub fn latency_bounds(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    process: ProcessId,
) -> LatencyBound {
    let blocks = system.process(process).blocks();
    let mut total_makespan = 0u32;
    let mut worst_reaction = 0u32;
    let mut worst_start_wait = 0u32;
    for (i, &b) in blocks.iter().enumerate() {
        let spacing = spec.block_grid_spacing(system, b);
        let makespan = schedule.block_makespan(system, b);
        if i == 0 {
            worst_start_wait = spacing - 1;
        }
        worst_reaction += (spacing - 1) + makespan;
        total_makespan += makespan;
    }
    // Re-activation: the next first-block start can only happen on the
    // first block's grid after the previous activation completed.
    let first_spacing = blocks
        .first()
        .map_or(1, |&b| spec.block_grid_spacing(system, b));
    let min_initiation_interval = worst_reaction.div_ceil(first_spacing.max(1)) * first_spacing;
    LatencyBound {
        worst_start_wait,
        total_makespan,
        worst_reaction,
        min_initiation_interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ModuloScheduler;
    use crate::SharingSpec;
    use tcms_ir::generators::paper_system;

    fn bounds(period: u32) -> Vec<LatencyBound> {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, period);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        sys.process_ids()
            .map(|p| latency_bounds(&sys, &spec, &out.schedule, p))
            .collect()
    }

    #[test]
    fn local_schedules_have_zero_wait() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        for p in sys.process_ids() {
            let b = latency_bounds(&sys, &spec, &out.schedule, p);
            assert_eq!(b.worst_start_wait, 0);
            assert_eq!(b.worst_reaction, b.total_makespan);
        }
    }

    #[test]
    fn period_five_bounds() {
        let all = bounds(5);
        for b in &all {
            assert_eq!(b.worst_start_wait, 4);
            assert_eq!(b.worst_reaction, b.total_makespan + 4);
            // The initiation interval is a multiple of the grid covering
            // the reaction.
            assert_eq!(b.min_initiation_interval % 5, 0);
            assert!(b.min_initiation_interval >= b.worst_reaction);
            assert!(b.min_initiation_interval < b.worst_reaction + 5);
        }
    }

    #[test]
    fn larger_periods_increase_waits() {
        let b5 = bounds(5);
        let b15 = bounds(15);
        for (a, b) in b5.iter().zip(&b15) {
            assert!(b.worst_start_wait > a.worst_start_wait);
        }
    }

    #[test]
    fn simulated_waits_respect_the_bound() {
        // Empirical validation against the discrete-event model: a single
        // isolated trigger can never wait longer than the bound.
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        for p in sys.process_ids() {
            let bound = latency_bounds(&sys, &spec, &out.schedule, p);
            let block = sys.process(p).blocks()[0];
            let spacing = u64::from(spec.block_grid_spacing(&sys, block));
            for trig in 0..30u64 {
                let start = trig.div_ceil(spacing) * spacing;
                assert!(start - trig <= u64::from(bound.worst_start_wait));
            }
        }
    }
}
