//! Errors of the modulo-scheduling layer.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a sharing specification or running the
/// resource-constrained variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A global group needs at least two processes (otherwise the type is
    /// local by definition).
    GroupTooSmall {
        /// Resource type name.
        rtype: String,
    },
    /// A process was listed in a global group but never uses the type.
    ProcessDoesNotUseType {
        /// Resource type name.
        rtype: String,
        /// Offending process name.
        process: String,
    },
    /// A process appears twice in one global group.
    DuplicateProcessInGroup {
        /// Resource type name.
        rtype: String,
        /// Duplicated process name.
        process: String,
    },
    /// A global type without a period.
    MissingPeriod {
        /// Resource type name.
        rtype: String,
    },
    /// Periods must be at least 1.
    ZeroPeriod {
        /// Resource type name.
        rtype: String,
    },
    /// The resource-constrained scheduler could not fit a block within its
    /// time range under the given instance counts.
    ResourceInfeasible {
        /// Block that failed to fit.
        block: String,
        /// The block's time range.
        time_range: u32,
    },
    /// An instance-count vector passed to the resource-constrained
    /// scheduler has a zero entry for a used type.
    ZeroInstances {
        /// Resource type name.
        rtype: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GroupTooSmall { rtype } => {
                write!(f, "global group for `{rtype}` needs at least two processes")
            }
            CoreError::ProcessDoesNotUseType { rtype, process } => {
                write!(
                    f,
                    "process `{process}` does not use resource type `{rtype}`"
                )
            }
            CoreError::DuplicateProcessInGroup { rtype, process } => {
                write!(
                    f,
                    "process `{process}` listed twice in the group of `{rtype}`"
                )
            }
            CoreError::MissingPeriod { rtype } => {
                write!(f, "global type `{rtype}` has no period")
            }
            CoreError::ZeroPeriod { rtype } => {
                write!(f, "period of `{rtype}` must be at least 1")
            }
            CoreError::ResourceInfeasible { block, time_range } => write!(
                f,
                "block `{block}` does not fit its time range {time_range} under the instance limits"
            ),
            CoreError::ZeroInstances { rtype } => {
                write!(f, "instance count for used type `{rtype}` is zero")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_meaningful() {
        let errors = [
            CoreError::GroupTooSmall {
                rtype: "mul".into(),
            },
            CoreError::ProcessDoesNotUseType {
                rtype: "mul".into(),
                process: "P1".into(),
            },
            CoreError::DuplicateProcessInGroup {
                rtype: "mul".into(),
                process: "P1".into(),
            },
            CoreError::MissingPeriod {
                rtype: "mul".into(),
            },
            CoreError::ZeroPeriod {
                rtype: "mul".into(),
            },
            CoreError::ResourceInfeasible {
                block: "body".into(),
                time_range: 15,
            },
            CoreError::ZeroInstances {
                rtype: "mul".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
