//! Errors of the modulo-scheduling layer.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a sharing specification or running the
/// resource-constrained variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A global group needs at least two processes (otherwise the type is
    /// local by definition).
    GroupTooSmall {
        /// Resource type name.
        rtype: String,
    },
    /// A process was listed in a global group but never uses the type.
    ProcessDoesNotUseType {
        /// Resource type name.
        rtype: String,
        /// Offending process name.
        process: String,
    },
    /// A process appears twice in one global group.
    DuplicateProcessInGroup {
        /// Resource type name.
        rtype: String,
        /// Duplicated process name.
        process: String,
    },
    /// A global type without a period.
    MissingPeriod {
        /// Resource type name.
        rtype: String,
    },
    /// Periods must be at least 1.
    ZeroPeriod {
        /// Resource type name.
        rtype: String,
    },
    /// The resource-constrained scheduler could not fit a block within its
    /// time range under the given instance counts.
    ResourceInfeasible {
        /// Block that failed to fit.
        block: String,
        /// The block's time range.
        time_range: u32,
    },
    /// An instance-count vector passed to the resource-constrained
    /// scheduler has a zero entry for a used type.
    ZeroInstances {
        /// Resource type name.
        rtype: String,
    },
    /// The start-time grid spacing of a process (equation 3: the lcm of
    /// the periods of its global types) overflows `u32`. Raised during
    /// validation so unchecked lcm arithmetic downstream stays safe.
    PeriodGridOverflow {
        /// Process whose grid spacing overflowed.
        process: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GroupTooSmall { rtype } => {
                write!(f, "global group for `{rtype}` needs at least two processes")
            }
            CoreError::ProcessDoesNotUseType { rtype, process } => {
                write!(
                    f,
                    "process `{process}` does not use resource type `{rtype}`"
                )
            }
            CoreError::DuplicateProcessInGroup { rtype, process } => {
                write!(
                    f,
                    "process `{process}` listed twice in the group of `{rtype}`"
                )
            }
            CoreError::MissingPeriod { rtype } => {
                write!(f, "global type `{rtype}` has no period")
            }
            CoreError::ZeroPeriod { rtype } => {
                write!(f, "period of `{rtype}` must be at least 1")
            }
            CoreError::ResourceInfeasible { block, time_range } => write!(
                f,
                "block `{block}` does not fit its time range {time_range} under the instance limits"
            ),
            CoreError::ZeroInstances { rtype } => {
                write!(f, "instance count for used type `{rtype}` is zero")
            }
            CoreError::PeriodGridOverflow { process } => write!(
                f,
                "start-time grid spacing of process `{process}` overflows u32 \
                 (lcm of its global periods is too large)"
            ),
        }
    }
}

impl Error for CoreError {}

/// Errors of a full scheduling run ([`crate::ModuloScheduler::run`] and
/// the degradation orchestrator built on top of it).
///
/// Wraps specification-level [`CoreError`]s and engine-level
/// [`tcms_fds::EngineError`]s and adds the feasibility verdicts only the
/// coupled scheduler can decide.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The sharing specification is invalid (see [`CoreError`]).
    Spec(CoreError),
    /// The equation-3 feasibility filter failed: a process's grid spacing
    /// (lcm of its global periods) exceeds its spacing budget, so its
    /// tightest block cannot align to the start grid.
    Infeasible {
        /// Tightest block of the offending process (qualified
        /// `process::block` name).
        block: String,
        /// `spacing_budget - grid_spacing`, always negative here. How far
        /// the spec is from feasibility — a relaxation must win back at
        /// least `-slack` steps.
        slack: i64,
        /// The global type whose period dominates the spacing (largest
        /// period in the process's global set) — the first candidate to
        /// relax or demote.
        binding_resource: String,
    },
    /// The engine's run budget tripped; the payload carries the engine's
    /// partial-progress report.
    BudgetExhausted(tcms_fds::EngineError),
    /// A process's period grid overflows `u32` (promoted out of
    /// [`CoreError::PeriodGridOverflow`] for direct matching).
    PeriodGridOverflow {
        /// Process whose grid spacing overflowed.
        process: String,
    },
    /// A schedule produced by a degradation rung failed re-verification —
    /// an internal invariant violation, reported instead of asserted so a
    /// later rung can still rescue the run.
    VerificationFailed {
        /// Description of the verification failure.
        detail: String,
    },
}

impl From<CoreError> for ScheduleError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::PeriodGridOverflow { process } => {
                ScheduleError::PeriodGridOverflow { process }
            }
            other => ScheduleError::Spec(other),
        }
    }
}

impl From<tcms_fds::EngineError> for ScheduleError {
    fn from(e: tcms_fds::EngineError) -> Self {
        ScheduleError::BudgetExhausted(e)
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Spec(e) => write!(f, "invalid sharing specification: {e}"),
            ScheduleError::Infeasible {
                block,
                slack,
                binding_resource,
            } => write!(
                f,
                "block `{block}` cannot align to the start grid: spacing exceeds \
                 the budget by {} steps (binding resource `{binding_resource}`)",
                -slack
            ),
            ScheduleError::BudgetExhausted(e) => write!(f, "{e}"),
            ScheduleError::PeriodGridOverflow { process } => write!(
                f,
                "start-time grid spacing of process `{process}` overflows u32 \
                 (lcm of its global periods is too large)"
            ),
            ScheduleError::VerificationFailed { detail } => {
                write!(f, "emitted schedule failed re-verification: {detail}")
            }
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Spec(e) => Some(e),
            ScheduleError::BudgetExhausted(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_meaningful() {
        let errors = [
            CoreError::GroupTooSmall {
                rtype: "mul".into(),
            },
            CoreError::ProcessDoesNotUseType {
                rtype: "mul".into(),
                process: "P1".into(),
            },
            CoreError::DuplicateProcessInGroup {
                rtype: "mul".into(),
                process: "P1".into(),
            },
            CoreError::MissingPeriod {
                rtype: "mul".into(),
            },
            CoreError::ZeroPeriod {
                rtype: "mul".into(),
            },
            CoreError::ResourceInfeasible {
                block: "body".into(),
                time_range: 15,
            },
            CoreError::ZeroInstances {
                rtype: "mul".into(),
            },
            CoreError::PeriodGridOverflow {
                process: "P1".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn schedule_error_wraps_and_promotes() {
        let spec_err: ScheduleError = CoreError::ZeroPeriod {
            rtype: "mul".into(),
        }
        .into();
        assert!(matches!(spec_err, ScheduleError::Spec(_)));
        assert!(std::error::Error::source(&spec_err).is_some());

        let overflow: ScheduleError = CoreError::PeriodGridOverflow {
            process: "P1".into(),
        }
        .into();
        assert!(matches!(
            overflow,
            ScheduleError::PeriodGridOverflow { ref process } if process == "P1"
        ));

        let infeasible = ScheduleError::Infeasible {
            block: "P4::body".into(),
            slack: -20,
            binding_resource: "add".into(),
        };
        let s = infeasible.to_string();
        assert!(s.contains("P4::body"), "{s}");
        assert!(s.contains("20 steps"), "{s}");
        assert!(s.contains("add"), "{s}");
    }
}
