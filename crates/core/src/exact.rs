//! Exact minimal-area modulo scheduling by branch and bound.
//!
//! A reference implementation for *small* systems: depth-first search over
//! all feasible start-time assignments, pruning with the (monotone)
//! partial-area lower bound. Because adding an operation can only raise
//! usage profiles, the area of a partial assignment — plus one instance
//! for every still-unseen used type — is an admissible bound.
//!
//! Used by the tests and the ablation benches to quantify how far the
//! coupled force-directed heuristic is from the optimum; it is
//! exponential and guarded by a node limit.

use tcms_fds::Schedule;
use tcms_ir::{FrameTable, OpId, System};

use crate::assign::SharingSpec;
use crate::error::CoreError;
use crate::modulo::modulo_max_counts;

/// Result of an exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactOutcome {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its total area.
    pub area: u64,
    /// Search nodes expanded.
    pub nodes: u64,
    /// `false` if the node limit cut the search (the result is then only
    /// an upper bound, not a proven optimum).
    pub complete: bool,
}

struct Search<'a> {
    system: &'a System,
    spec: &'a SharingSpec,
    frames: FrameTable,
    order: Vec<OpId>,
    starts: Vec<Option<u32>>,
    best: Option<(u64, Vec<Option<u32>>)>,
    nodes: u64,
    node_limit: u64,
}

impl Search<'_> {
    /// Area of the partial assignment plus one instance for every used
    /// type that has no scheduled operation yet.
    fn lower_bound(&self) -> u64 {
        let mut area = 0u64;
        for (k, rt) in self.system.library().iter() {
            let group = self.spec.group(k).unwrap_or(&[]);
            let mut instances = 0u64;
            // Global pool from the partial profiles.
            if !group.is_empty() {
                let period = self.spec.period(k).expect("global types have periods");
                let mut slot_totals = vec![0u32; period as usize];
                for &p in group {
                    let mut profile = vec![0u32; period as usize];
                    for &b in self.system.process(p).blocks() {
                        let usage = self.partial_usage(b, k);
                        for (slot, v) in modulo_max_counts(&usage, period).into_iter().enumerate() {
                            profile[slot] = profile[slot].max(v);
                        }
                    }
                    for (slot, v) in profile.into_iter().enumerate() {
                        slot_totals[slot] += v;
                    }
                }
                let mut pool = u64::from(slot_totals.into_iter().max().unwrap_or(0));
                // Any group process with unscheduled ops of this type will
                // need at least one instance overall.
                if pool == 0 && self.type_has_remaining_ops(k) {
                    pool = 1;
                }
                instances += pool;
            }
            // Local pools.
            for p in self.system.users_of_type(k) {
                if group.contains(&p) {
                    continue;
                }
                let mut peak = 0u32;
                let mut has_ops = false;
                for &b in self.system.process(p).blocks() {
                    has_ops |= !self.system.ops_of_type(b, k).is_empty();
                    peak = peak.max(self.partial_usage(b, k).into_iter().max().unwrap_or(0));
                }
                instances += u64::from(peak.max(u32::from(has_ops)));
            }
            area += instances * rt.area();
        }
        area
    }

    fn type_has_remaining_ops(&self, k: tcms_ir::ResourceTypeId) -> bool {
        self.system
            .ops()
            .any(|(o, op)| op.resource_type() == k && self.starts[o.index()].is_none())
    }

    fn partial_usage(&self, block: tcms_ir::BlockId, k: tcms_ir::ResourceTypeId) -> Vec<u32> {
        let mut usage = vec![0u32; self.system.block(block).time_range() as usize];
        for o in self.system.ops_of_type(block, k) {
            if let Some(s) = self.starts[o.index()] {
                for t in s..s + self.system.occupancy(o) {
                    usage[t as usize] += 1;
                }
            }
        }
        usage
    }

    fn dfs(&mut self, depth: usize) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return;
        }
        let bound = self.lower_bound();
        if let Some((best_area, _)) = &self.best {
            if bound >= *best_area {
                return;
            }
        }
        if depth == self.order.len() {
            self.best = Some((bound, self.starts.clone()));
            return;
        }
        let o = self.order[depth];
        let ready = self
            .system
            .preds(o)
            .iter()
            .map(|&p| self.starts[p.index()].expect("preds scheduled first") + self.system.delay(p))
            .max()
            .unwrap_or(0);
        let frame = self.frames.get(o);
        for t in ready.max(frame.asap)..=frame.alap {
            self.starts[o.index()] = Some(t);
            self.dfs(depth + 1);
            self.starts[o.index()] = None;
            if self.nodes > self.node_limit {
                return;
            }
        }
    }
}

/// Finds the area-minimal schedule of the whole system under `spec`.
///
/// `node_limit` bounds the search; when it is hit, the best schedule found
/// so far is returned with `complete == false` (or `None` if nothing was
/// completed yet).
///
/// # Errors
///
/// Propagates validation errors of `spec`.
pub fn exact_schedule(
    system: &System,
    spec: &SharingSpec,
    node_limit: u64,
) -> Result<Option<ExactOutcome>, CoreError> {
    spec.validate(system)?;
    let frames = FrameTable::initial(system);
    // Ops in ALAP-sorted topological order per block, blocks sequential.
    let mut order = Vec::with_capacity(system.num_ops());
    for b in system.block_ids() {
        let mut ops = system.topo_order(b).to_vec();
        ops.sort_by_key(|&o| (frames.get(o).alap, o));
        order.extend(ops);
    }
    let mut search = Search {
        system,
        spec,
        frames,
        order,
        starts: vec![None; system.num_ops()],
        best: None,
        nodes: 0,
        node_limit,
    };
    search.dfs(0);
    let complete = search.nodes <= search.node_limit;
    Ok(search.best.map(|(area, starts)| {
        let mut schedule = Schedule::new(system.num_ops());
        for (i, s) in starts.iter().enumerate() {
            schedule.set(OpId::from_index(i), s.expect("complete assignment"));
        }
        ExactOutcome {
            schedule,
            area,
            nodes: search.nodes,
            complete,
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::compute_report;
    use crate::scheduler::ModuloScheduler;
    use tcms_ir::generators::{paper_library, random_system, RandomSystemConfig};
    use tcms_ir::SystemBuilder;

    fn tiny_two_process() -> (System, SharingSpec) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p0 = b.add_process("A");
        let b0 = b.add_block(p0, "body", 6).unwrap();
        let m0 = b.add_op(b0, "m0", types.mul).unwrap();
        let a0 = b.add_op_with_preds(b0, "a0", types.add, &[m0]).unwrap();
        let _ = b.add_op_with_preds(b0, "a1", types.add, &[a0]).unwrap();
        let p1 = b.add_process("B");
        let b1 = b.add_block(p1, "body", 6).unwrap();
        let m1 = b.add_op(b1, "m1", types.mul).unwrap();
        let _ = b.add_op_with_preds(b1, "a2", types.add, &[m1]).unwrap();
        let sys = b.build().unwrap();
        let spec = SharingSpec::all_global(&sys, 2);
        (sys, spec)
    }

    #[test]
    fn exact_finds_single_shared_units() {
        let (sys, spec) = tiny_two_process();
        let exact = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
        assert!(exact.complete);
        exact.schedule.verify(&sys).unwrap();
        let report = compute_report(&sys, &spec, &exact.schedule);
        let mul = sys.library().by_name("mul").unwrap();
        let add = sys.library().by_name("add").unwrap();
        // One multiplier and one adder suffice with period-2 interleaving.
        assert_eq!(report.instances(mul), 1);
        assert_eq!(report.instances(add), 1);
        assert_eq!(exact.area, report.total_area());
    }

    #[test]
    fn heuristic_never_beats_exact() {
        for seed in 0..6 {
            let cfg = RandomSystemConfig {
                processes: 2,
                blocks_per_process: 1,
                layers: 2,
                ops_per_layer: (1, 2),
                edge_prob: 0.5,
                slack: 2.0,
                type_weights: [2, 1, 1],
            };
            let (sys, _) = random_system(&cfg, seed).unwrap();
            let spec = SharingSpec::all_global(&sys, 2);
            if !crate::period::spacing_feasible(&sys, &spec) {
                continue;
            }
            let exact = exact_schedule(&sys, &spec, 2_000_000).unwrap().unwrap();
            if !exact.complete {
                continue;
            }
            let heuristic = ModuloScheduler::new(&sys, spec.clone())
                .unwrap()
                .run()
                .unwrap();
            let h_area = heuristic.report().total_area();
            assert!(
                h_area >= exact.area,
                "seed {seed}: heuristic {h_area} below proven optimum {}",
                exact.area
            );
        }
    }

    #[test]
    fn heuristic_is_near_optimal_on_tiny_systems() {
        let mut total_h = 0u64;
        let mut total_e = 0u64;
        for seed in 0..6 {
            let cfg = RandomSystemConfig {
                processes: 2,
                blocks_per_process: 1,
                layers: 2,
                ops_per_layer: (1, 2),
                edge_prob: 0.5,
                slack: 2.0,
                type_weights: [2, 1, 1],
            };
            let (sys, _) = random_system(&cfg, seed).unwrap();
            let spec = SharingSpec::all_global(&sys, 2);
            if !crate::period::spacing_feasible(&sys, &spec) {
                continue;
            }
            let exact = exact_schedule(&sys, &spec, 2_000_000).unwrap().unwrap();
            if !exact.complete {
                continue;
            }
            let heuristic = ModuloScheduler::new(&sys, spec.clone())
                .unwrap()
                .run()
                .unwrap();
            total_h += heuristic.report().total_area();
            total_e += exact.area;
        }
        assert!(total_e > 0);
        let gap = total_h as f64 / total_e as f64;
        assert!(gap <= 1.5, "aggregate optimality gap {gap} too large");
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let (sys, spec) = tiny_two_process();
        let limited = exact_schedule(&sys, &spec, 3).unwrap();
        // With 3 nodes nothing completes: either None or an incomplete
        // marker.
        if let Some(out) = limited {
            assert!(!out.complete);
        }
    }

    #[test]
    fn exact_respects_local_scope() {
        let (sys, _) = tiny_two_process();
        let spec = SharingSpec::all_local(&sys);
        let exact = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
        let report = compute_report(&sys, &spec, &exact.schedule);
        let mul = sys.library().by_name("mul").unwrap();
        // Local: one multiplier per process, no way around it.
        assert_eq!(report.instances(mul), 2);
    }
}
