//! Exact minimal-area modulo scheduling by branch and bound.
//!
//! A reference implementation for *small* systems: depth-first search over
//! all feasible start-time assignments, pruning with the (monotone)
//! partial-area lower bound. Because adding an operation can only raise
//! usage profiles, the area of a partial assignment — plus one instance
//! for every still-unseen used type — is an admissible bound.
//!
//! Used by the tests and the ablation benches to quantify how far the
//! coupled force-directed heuristic is from the optimum; it is
//! exponential and guarded by a node limit.
//!
//! # Incremental bound maintenance
//!
//! The bound used to be recomputed from scratch at every node —
//! O(types × ops × time_range) of rebuilt usage vectors. It is now
//! maintained incrementally on DFS push/pop:
//!
//! * every `(block, type)` pair with operations keeps a [`SlotProfile`]:
//!   the time-indexed usage vector plus, per modulo slot, a histogram of
//!   usage values and the running slot maximum. Scheduling or
//!   unscheduling an operation updates it in O(occupancy), with the slot
//!   maximum maintained amortised O(1) from the histogram;
//! * per-type area contributions are cached and flagged dirty when an
//!   operation of that type moves, so one DFS step recomputes exactly one
//!   type's contribution (from the profiles' slot maxima — no usage
//!   rebuild) into reusable scratch buffers;
//! * per-type unscheduled-operation counters replace the former
//!   whole-system scan behind the "empty pool but remaining ops" rule.
//!
//! Local (per-process) pools are unified as period-1 profiles: their peak
//! usage is just the slot maximum of the single slot. The invariant — the
//! incremental bound equals the from-scratch bound at **every** node — is
//! pinned by [`exact_schedule_checked`], which recomputes the naive bound
//! per node and asserts equality along the whole search.
//!
//! # Parallel root split
//!
//! With more than one thread, the root operation's start-time frame is
//! split across workers that share an atomic incumbent area. Each worker
//! prunes against its own best with `>=` (exactly like the sequential
//! search) *and* against the shared incumbent with a strict `>`: any
//! optimal-area subtree therefore survives in whichever worker owns it,
//! and the index-ordered merge picks the winner of the earliest root
//! start time — the same schedule the sequential search returns. Only
//! `nodes` is timing-dependent in parallel mode, which is why it is
//! excluded from [`ExactOutcome`] equality.
//!
//! The bit-identity guarantee covers *complete* searches. When the node
//! limit trips (`complete == false`), the budget is consumed at a
//! timing-dependent frontier, so a truncated result may differ between
//! thread counts — it is only an upper bound either way.

use std::sync::atomic::{AtomicU64, Ordering};

use tcms_fds::Schedule;
use tcms_ir::{FrameTable, OpId, ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::error::CoreError;

/// Result of an exact search.
///
/// Equality ignores `nodes`: with a parallel root split the node count
/// depends on incumbent timing, while schedule, area and completeness are
/// deterministic.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its total area.
    pub area: u64,
    /// Search nodes expanded.
    pub nodes: u64,
    /// `false` if the node limit cut the search (the result is then only
    /// an upper bound, not a proven optimum).
    pub complete: bool,
}

impl PartialEq for ExactOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.schedule == other.schedule
            && self.area == other.area
            && self.complete == other.complete
    }
}

impl Eq for ExactOutcome {}

/// Per-`(block, type)` usage profile folded modulo `period`, maintained
/// incrementally: `hist[slot][v]` counts time steps of the slot class at
/// usage `v`, and `slot_max[slot]` is the largest occupied usage value.
///
/// Incrementing a step is O(1); decrementing is amortised O(1) (the slot
/// maximum only ever walks down over values that an increment walked up).
/// Local pools use `period == 1`, making `slot_max[0]` the plain peak.
#[derive(Clone)]
struct SlotProfile {
    period: usize,
    usage: Vec<u32>,
    hist: Vec<Vec<u32>>,
    slot_max: Vec<u32>,
}

impl SlotProfile {
    fn new(period: usize, time_range: usize) -> Self {
        let mut hist = vec![vec![0u32]; period];
        for t in 0..time_range {
            hist[t % period][0] += 1;
        }
        SlotProfile {
            period,
            usage: vec![0; time_range],
            hist,
            slot_max: vec![0; period],
        }
    }

    fn increment(&mut self, t: usize) {
        let old = self.usage[t];
        let new = old + 1;
        self.usage[t] = new;
        let s = t % self.period;
        let h = &mut self.hist[s];
        h[old as usize] -= 1;
        if h.len() <= new as usize {
            h.resize(new as usize + 1, 0);
        }
        h[new as usize] += 1;
        self.slot_max[s] = self.slot_max[s].max(new);
    }

    fn decrement(&mut self, t: usize) {
        let old = self.usage[t];
        let new = old - 1;
        self.usage[t] = new;
        let s = t % self.period;
        let h = &mut self.hist[s];
        h[old as usize] -= 1;
        h[new as usize] += 1;
        let mut m = self.slot_max[s];
        while m > 0 && h[m as usize] == 0 {
            m -= 1;
        }
        self.slot_max[s] = m;
    }
}

/// Static per-type facts the bound needs, resolved once per search so the
/// per-node recompute allocates nothing and scans nothing op-shaped.
#[derive(Clone)]
struct TypeInfo {
    area: u64,
    /// Sharing group (empty when the type is nowhere global).
    group: Vec<ProcessId>,
    /// Modulo period of the group (1 when there is no group).
    period: usize,
    /// Users outside the group, with their static "has operations of this
    /// type" flag (drives the at-least-one-instance floor).
    local_users: Vec<(ProcessId, bool)>,
}

/// Incrementally maintained lower-bound state.
#[derive(Clone)]
struct Bounds<'a> {
    system: &'a System,
    num_types: usize,
    /// `profiles[b * num_types + k]`, present iff block `b` has ops of
    /// type `k`. Group blocks fold modulo the type's period; blocks of
    /// non-group users fold with period 1 (plain peak).
    profiles: Vec<Option<SlotProfile>>,
    type_info: Vec<TypeInfo>,
    /// Unscheduled operations per type, over the whole system.
    unscheduled: Vec<u32>,
    /// Cached per-type area contributions and their dirty flags: a DFS
    /// step touches one operation, so at most one type is recomputed per
    /// node.
    contrib: Vec<u64>,
    dirty: Vec<bool>,
    /// Reused scratch (former `lower_bound` allocated these per node).
    slot_scratch: Vec<u32>,
    profile_scratch: Vec<u32>,
}

impl<'a> Bounds<'a> {
    fn new(system: &'a System, spec: &SharingSpec) -> Self {
        let num_types = system.library().len();
        let mut type_info = Vec::with_capacity(num_types);
        let mut unscheduled = vec![0u32; num_types];
        for (_, op) in system.ops() {
            unscheduled[op.resource_type().index()] += 1;
        }
        for (k, rt) in system.library().iter() {
            let group = spec.group(k).map(<[ProcessId]>::to_vec).unwrap_or_default();
            let period = if group.is_empty() {
                1
            } else {
                spec.period(k).expect("global types have periods") as usize
            };
            let local_users = system
                .users_of_type(k)
                .into_iter()
                .filter(|p| !group.contains(p))
                .map(|p| {
                    let has_ops = system
                        .process(p)
                        .blocks()
                        .iter()
                        .any(|&b| !system.ops_of_type(b, k).is_empty());
                    (p, has_ops)
                })
                .collect();
            type_info.push(TypeInfo {
                area: rt.area(),
                group,
                period,
                local_users,
            });
        }
        let mut profiles = vec![None; system.num_blocks() * num_types];
        for b in system.block_ids() {
            let in_group_of = |k: ResourceTypeId| {
                let p = system.block(b).process();
                type_info[k.index()].group.contains(&p)
            };
            for k in system.library().ids() {
                if system.ops_of_type(b, k).is_empty() {
                    continue;
                }
                let period = if in_group_of(k) {
                    type_info[k.index()].period
                } else {
                    1
                };
                profiles[b.index() * num_types + k.index()] = Some(SlotProfile::new(
                    period,
                    system.block(b).time_range() as usize,
                ));
            }
        }
        Bounds {
            system,
            num_types,
            profiles,
            type_info,
            unscheduled,
            contrib: vec![0; num_types],
            dirty: vec![true; num_types],
            slot_scratch: Vec::new(),
            profile_scratch: Vec::new(),
        }
    }

    fn schedule_op(&mut self, o: OpId, t: u32) {
        let op = self.system.op(o);
        let (b, k) = (op.block(), op.resource_type().index());
        let occ = self.system.occupancy(o);
        let prof = self.profiles[b.index() * self.num_types + k]
            .as_mut()
            .expect("ops imply a profile");
        for step in t..t + occ {
            prof.increment(step as usize);
        }
        self.unscheduled[k] -= 1;
        self.dirty[k] = true;
    }

    fn unschedule_op(&mut self, o: OpId, t: u32) {
        let op = self.system.op(o);
        let (b, k) = (op.block(), op.resource_type().index());
        let occ = self.system.occupancy(o);
        let prof = self.profiles[b.index() * self.num_types + k]
            .as_mut()
            .expect("ops imply a profile");
        for step in t..t + occ {
            prof.decrement(step as usize);
        }
        self.unscheduled[k] += 1;
        self.dirty[k] = true;
    }

    /// The admissible partial-area bound; recomputes only dirty types.
    fn lower_bound(&mut self) -> u64 {
        for k in 0..self.num_types {
            if self.dirty[k] {
                self.contrib[k] = self.recompute_contrib(k);
                self.dirty[k] = false;
            }
        }
        self.contrib.iter().sum()
    }

    /// One type's contribution, from the profiles' slot maxima alone.
    fn recompute_contrib(&mut self, k: usize) -> u64 {
        let info = &self.type_info[k];
        let mut instances = 0u64;
        if !info.group.is_empty() {
            let period = info.period;
            self.slot_scratch.clear();
            self.slot_scratch.resize(period, 0);
            for &p in &info.group {
                self.profile_scratch.clear();
                self.profile_scratch.resize(period, 0);
                for &b in self.system.process(p).blocks() {
                    if let Some(prof) = self.profiles[b.index() * self.num_types + k].as_ref() {
                        crate::kernel::slot_max_u32_into(&mut self.profile_scratch, &prof.slot_max);
                    }
                }
                crate::kernel::add_u32_into(&mut self.slot_scratch, &self.profile_scratch);
            }
            let mut pool = u64::from(self.slot_scratch.iter().copied().max().unwrap_or(0));
            // Any process with unscheduled ops of this type will need at
            // least one instance overall.
            if pool == 0 && self.unscheduled[k] > 0 {
                pool = 1;
            }
            instances += pool;
        }
        for &(p, has_ops) in &info.local_users {
            let mut peak = 0u32;
            for &b in self.system.process(p).blocks() {
                if let Some(prof) = self.profiles[b.index() * self.num_types + k].as_ref() {
                    peak = peak.max(prof.slot_max[0]);
                }
            }
            instances += u64::from(peak.max(u32::from(has_ops)));
        }
        instances * self.type_info[k].area
    }
}

/// Incumbent area and node budget shared by the root-split workers.
struct SharedSearch {
    incumbent: AtomicU64,
    nodes: AtomicU64,
}

struct Search<'a> {
    system: &'a System,
    frames: &'a FrameTable,
    order: &'a [OpId],
    starts: Vec<Option<u32>>,
    bounds: Bounds<'a>,
    best: Option<(u64, Vec<Option<u32>>)>,
    nodes: u64,
    node_limit: u64,
    shared: Option<&'a SharedSearch>,
    /// Assert the incremental bound against the from-scratch bound at
    /// every node (the equivalence oracle; test/bench use only).
    check_bounds: bool,
}

impl Search<'_> {
    /// Counts a node against the (local or shared) budget; `true` means
    /// the limit is exhausted and the search must unwind.
    fn count_node(&mut self) -> bool {
        self.nodes += 1;
        match self.shared {
            None => self.nodes > self.node_limit,
            Some(sh) => sh.nodes.fetch_add(1, Ordering::Relaxed) + 1 > self.node_limit,
        }
    }

    fn limit_hit(&self) -> bool {
        match self.shared {
            None => self.nodes > self.node_limit,
            Some(sh) => sh.nodes.load(Ordering::Relaxed) > self.node_limit,
        }
    }

    /// From-scratch reference bound, kept verbatim from the
    /// pre-incremental implementation as the oracle.
    #[cfg(any(test, feature = "naive-oracle"))]
    fn lower_bound_naive(&self, spec: &SharingSpec) -> u64 {
        use crate::modulo::modulo_max_counts;
        use tcms_ir::BlockId;
        let partial_usage = |block: BlockId, k: ResourceTypeId| -> Vec<u32> {
            let mut usage = vec![0u32; self.system.block(block).time_range() as usize];
            for o in self.system.ops_of_type(block, k) {
                if let Some(s) = self.starts[o.index()] {
                    for t in s..s + self.system.occupancy(o) {
                        usage[t as usize] += 1;
                    }
                }
            }
            usage
        };
        let mut area = 0u64;
        for (k, rt) in self.system.library().iter() {
            let group = spec.group(k).unwrap_or(&[]);
            let mut instances = 0u64;
            if !group.is_empty() {
                let period = spec.period(k).expect("global types have periods");
                let mut slot_totals = vec![0u32; period as usize];
                for &p in group {
                    let mut profile = vec![0u32; period as usize];
                    for &b in self.system.process(p).blocks() {
                        let usage = partial_usage(b, k);
                        for (slot, v) in modulo_max_counts(&usage, period).into_iter().enumerate() {
                            profile[slot] = profile[slot].max(v);
                        }
                    }
                    for (slot, v) in profile.into_iter().enumerate() {
                        slot_totals[slot] += v;
                    }
                }
                let mut pool = u64::from(slot_totals.into_iter().max().unwrap_or(0));
                let has_remaining = self
                    .system
                    .ops()
                    .any(|(o, op)| op.resource_type() == k && self.starts[o.index()].is_none());
                if pool == 0 && has_remaining {
                    pool = 1;
                }
                instances += pool;
            }
            for p in self.system.users_of_type(k) {
                if group.contains(&p) {
                    continue;
                }
                let mut peak = 0u32;
                let mut has_ops = false;
                for &b in self.system.process(p).blocks() {
                    has_ops |= !self.system.ops_of_type(b, k).is_empty();
                    peak = peak.max(partial_usage(b, k).into_iter().max().unwrap_or(0));
                }
                instances += u64::from(peak.max(u32::from(has_ops)));
            }
            area += instances * rt.area();
        }
        area
    }

    #[allow(unused_variables)]
    fn assert_bound(&self, bound: u64, spec: &SharingSpec) {
        if !self.check_bounds {
            return;
        }
        #[cfg(any(test, feature = "naive-oracle"))]
        {
            let naive = self.lower_bound_naive(spec);
            assert_eq!(
                bound, naive,
                "incremental bound diverged from the from-scratch bound"
            );
        }
    }

    fn dfs(&mut self, depth: usize, spec: &SharingSpec) {
        if self.count_node() {
            return;
        }
        let bound = self.bounds.lower_bound();
        self.assert_bound(bound, spec);
        if let Some((best_area, _)) = &self.best {
            if bound >= *best_area {
                return;
            }
        }
        if let Some(sh) = self.shared {
            // Strict `>` keeps every optimal-area subtree alive in its
            // owning worker, making the merged winner deterministic.
            if bound > sh.incumbent.load(Ordering::Relaxed) {
                return;
            }
        }
        if depth == self.order.len() {
            self.best = Some((bound, self.starts.clone()));
            if let Some(sh) = self.shared {
                sh.incumbent.fetch_min(bound, Ordering::Relaxed);
            }
            return;
        }
        let o = self.order[depth];
        let ready = self
            .system
            .preds(o)
            .iter()
            .map(|&p| self.starts[p.index()].expect("preds scheduled first") + self.system.delay(p))
            .max()
            .unwrap_or(0);
        let frame = self.frames.get(o);
        for t in ready.max(frame.asap)..=frame.alap {
            self.starts[o.index()] = Some(t);
            self.bounds.schedule_op(o, t);
            self.dfs(depth + 1, spec);
            self.starts[o.index()] = None;
            self.bounds.unschedule_op(o, t);
            if self.limit_hit() {
                return;
            }
        }
    }
}

/// Finds the area-minimal schedule of the whole system under `spec`.
///
/// `node_limit` bounds the search; when it is hit, the best schedule found
/// so far is returned with `complete == false` (or `None` if nothing was
/// completed yet). With more than one resolved thread (see
/// `tcms_fds::threads`), the root frame is split across workers sharing
/// the incumbent; schedule, area and completeness are identical to the
/// sequential search (node counts may differ).
///
/// # Errors
///
/// Propagates validation errors of `spec`.
pub fn exact_schedule(
    system: &System,
    spec: &SharingSpec,
    node_limit: u64,
) -> Result<Option<ExactOutcome>, CoreError> {
    exact_impl(system, spec, node_limit, false)
}

/// [`exact_schedule`] with the bound oracle armed: at every node the
/// incremental bound is asserted equal to the from-scratch recomputation.
/// Slow; for equivalence tests and ablation benches only.
///
/// # Errors
///
/// Propagates validation errors of `spec`.
///
/// # Panics
///
/// Panics if the incremental bound ever diverges from the oracle.
#[cfg(any(test, feature = "naive-oracle"))]
pub fn exact_schedule_checked(
    system: &System,
    spec: &SharingSpec,
    node_limit: u64,
) -> Result<Option<ExactOutcome>, CoreError> {
    exact_impl(system, spec, node_limit, true)
}

fn exact_impl(
    system: &System,
    spec: &SharingSpec,
    node_limit: u64,
    check_bounds: bool,
) -> Result<Option<ExactOutcome>, CoreError> {
    spec.validate(system)?;
    let frames = FrameTable::initial(system);
    // Ops in ALAP-sorted topological order per block, blocks sequential.
    let mut order = Vec::with_capacity(system.num_ops());
    for b in system.block_ids() {
        let mut ops = system.topo_order(b).to_vec();
        ops.sort_by_key(|&o| (frames.get(o).alap, o));
        order.extend(ops);
    }
    let bounds = Bounds::new(system, spec);
    let threads = rayon::current_num_threads();
    // Root start times to split across workers. The first op in order has
    // no predecessors (its preds would sort strictly earlier), so its
    // candidate range is the full frame.
    let root_range: Vec<u32> = order
        .first()
        .map(|&o| {
            let f = frames.get(o);
            (f.asap..=f.alap).collect()
        })
        .unwrap_or_default();
    let (best, total_nodes) = if threads <= 1 || root_range.len() <= 1 {
        let mut search = Search {
            system,
            frames: &frames,
            order: &order,
            starts: vec![None; system.num_ops()],
            bounds,
            best: None,
            nodes: 0,
            node_limit,
            shared: None,
            check_bounds,
        };
        search.dfs(0, spec);
        (search.best, search.nodes)
    } else {
        // Root node itself is accounted once, up front.
        let shared = SharedSearch {
            incumbent: AtomicU64::new(u64::MAX),
            nodes: AtomicU64::new(1),
        };
        let root = order[0];
        let results = rayon::par_map_indexed(root_range.len(), |i| {
            let t = root_range[i];
            let mut search = Search {
                system,
                frames: &frames,
                order: &order,
                starts: vec![None; system.num_ops()],
                bounds: bounds.clone(),
                best: None,
                nodes: 0,
                node_limit,
                shared: Some(&shared),
                check_bounds,
            };
            search.starts[root.index()] = Some(t);
            search.bounds.schedule_op(root, t);
            search.dfs(1, spec);
            search.best
        });
        // Merge in root order with strict `<`: the winner is the best
        // subtree of the earliest root start, same as sequential DFS.
        let mut best: Option<(u64, Vec<Option<u32>>)> = None;
        for r in results.into_iter().flatten() {
            if best.as_ref().is_none_or(|(a, _)| r.0 < *a) {
                best = Some(r);
            }
        }
        (best, shared.nodes.load(Ordering::Relaxed))
    };
    let complete = total_nodes <= node_limit;
    Ok(best.map(|(area, starts)| {
        let mut schedule = Schedule::new(system.num_ops());
        for (i, s) in starts.iter().enumerate() {
            schedule.set(OpId::from_index(i), s.expect("complete assignment"));
        }
        ExactOutcome {
            schedule,
            area,
            nodes: total_nodes,
            complete,
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::compute_report;
    use crate::scheduler::ModuloScheduler;
    use tcms_ir::generators::{paper_library, random_system, RandomSystemConfig};
    use tcms_ir::SystemBuilder;

    fn tiny_two_process() -> (System, SharingSpec) {
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let p0 = b.add_process("A");
        let b0 = b.add_block(p0, "body", 6).unwrap();
        let m0 = b.add_op(b0, "m0", types.mul).unwrap();
        let a0 = b.add_op_with_preds(b0, "a0", types.add, &[m0]).unwrap();
        let _ = b.add_op_with_preds(b0, "a1", types.add, &[a0]).unwrap();
        let p1 = b.add_process("B");
        let b1 = b.add_block(p1, "body", 6).unwrap();
        let m1 = b.add_op(b1, "m1", types.mul).unwrap();
        let _ = b.add_op_with_preds(b1, "a2", types.add, &[m1]).unwrap();
        let sys = b.build().unwrap();
        let spec = SharingSpec::all_global(&sys, 2);
        (sys, spec)
    }

    #[test]
    fn exact_finds_single_shared_units() {
        let (sys, spec) = tiny_two_process();
        let exact = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
        assert!(exact.complete);
        exact.schedule.verify(&sys).unwrap();
        let report = compute_report(&sys, &spec, &exact.schedule);
        let mul = sys.library().by_name("mul").unwrap();
        let add = sys.library().by_name("add").unwrap();
        // One multiplier and one adder suffice with period-2 interleaving.
        assert_eq!(report.instances(mul), 1);
        assert_eq!(report.instances(add), 1);
        assert_eq!(exact.area, report.total_area());
    }

    #[test]
    fn incremental_bound_matches_naive_bound_along_search() {
        // The checked search asserts incremental == from-scratch at every
        // node, over systems exercising global, local and mixed pools.
        let (sys, spec) = tiny_two_process();
        let checked = exact_schedule_checked(&sys, &spec, 1_000_000)
            .unwrap()
            .unwrap();
        let plain = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
        assert_eq!(checked, plain);
        let local = SharingSpec::all_local(&sys);
        exact_schedule_checked(&sys, &local, 1_000_000)
            .unwrap()
            .unwrap();
        for seed in 0..4 {
            let cfg = RandomSystemConfig {
                processes: 2,
                blocks_per_process: 1,
                layers: 2,
                ops_per_layer: (1, 2),
                edge_prob: 0.5,
                slack: 2.0,
                type_weights: [2, 1, 1],
            };
            let (sys, _) = random_system(&cfg, seed).unwrap();
            let spec = SharingSpec::all_global(&sys, 2);
            if !crate::period::spacing_feasible(&sys, &spec) {
                continue;
            }
            exact_schedule_checked(&sys, &spec, 2_000_000).unwrap();
        }
    }

    #[test]
    fn parallel_root_split_matches_sequential_search() {
        let _guard = crate::test_support::threads_lock();
        let (sys, spec) = tiny_two_process();
        rayon::set_num_threads(1);
        let sequential = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
        for threads in [2, 4, 8] {
            rayon::set_num_threads(threads);
            let parallel = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
            assert_eq!(
                sequential, parallel,
                "threads = {threads}: schedule/area/completeness must match"
            );
            assert_eq!(
                sequential.schedule.starts(),
                parallel.schedule.starts(),
                "threads = {threads}: start times must be bit-identical"
            );
        }
        rayon::set_num_threads(0);
    }

    #[test]
    fn heuristic_never_beats_exact() {
        for seed in 0..6 {
            let cfg = RandomSystemConfig {
                processes: 2,
                blocks_per_process: 1,
                layers: 2,
                ops_per_layer: (1, 2),
                edge_prob: 0.5,
                slack: 2.0,
                type_weights: [2, 1, 1],
            };
            let (sys, _) = random_system(&cfg, seed).unwrap();
            let spec = SharingSpec::all_global(&sys, 2);
            if !crate::period::spacing_feasible(&sys, &spec) {
                continue;
            }
            let exact = exact_schedule(&sys, &spec, 2_000_000).unwrap().unwrap();
            if !exact.complete {
                continue;
            }
            let heuristic = ModuloScheduler::new(&sys, spec.clone())
                .unwrap()
                .run()
                .unwrap();
            let h_area = heuristic.report().total_area();
            assert!(
                h_area >= exact.area,
                "seed {seed}: heuristic {h_area} below proven optimum {}",
                exact.area
            );
        }
    }

    #[test]
    fn heuristic_is_near_optimal_on_tiny_systems() {
        let mut total_h = 0u64;
        let mut total_e = 0u64;
        for seed in 0..6 {
            let cfg = RandomSystemConfig {
                processes: 2,
                blocks_per_process: 1,
                layers: 2,
                ops_per_layer: (1, 2),
                edge_prob: 0.5,
                slack: 2.0,
                type_weights: [2, 1, 1],
            };
            let (sys, _) = random_system(&cfg, seed).unwrap();
            let spec = SharingSpec::all_global(&sys, 2);
            if !crate::period::spacing_feasible(&sys, &spec) {
                continue;
            }
            let exact = exact_schedule(&sys, &spec, 2_000_000).unwrap().unwrap();
            if !exact.complete {
                continue;
            }
            let heuristic = ModuloScheduler::new(&sys, spec.clone())
                .unwrap()
                .run()
                .unwrap();
            total_h += heuristic.report().total_area();
            total_e += exact.area;
        }
        assert!(total_e > 0);
        let gap = total_h as f64 / total_e as f64;
        assert!(gap <= 1.5, "aggregate optimality gap {gap} too large");
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let (sys, spec) = tiny_two_process();
        let limited = exact_schedule(&sys, &spec, 3).unwrap();
        // With 3 nodes nothing completes: either None or an incomplete
        // marker.
        if let Some(out) = limited {
            assert!(!out.complete);
        }
    }

    #[test]
    fn exact_respects_local_scope() {
        let (sys, _) = tiny_two_process();
        let spec = SharingSpec::all_local(&sys);
        let exact = exact_schedule(&sys, &spec, 1_000_000).unwrap().unwrap();
        let report = compute_report(&sys, &spec, &exact.schedule);
        let mul = sys.library().by_name("mul").unwrap();
        // Local: one multiplier per process, no way around it.
        assert_eq!(report.instances(mul), 2);
    }
}
