//! Periodic access-authorization tables (paper §3.2, Figure 1).
//!
//! After scheduling, every global resource type gets a table granting each
//! process of its sharing group a number of instances per period slot τ.
//! A grant for slot τ is valid at *every* absolute time step `t` with
//! `t mod ρ = τ` (equation 1) — the access control is fully static and
//! needs no runtime executive.

use tcms_fds::Schedule;
use tcms_ir::{ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::modulo::modulo_max_counts;

/// Static periodic authorization for one global resource type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorizationTable {
    rtype: ResourceTypeId,
    period: u32,
    grants: Vec<(ProcessId, Vec<u32>)>,
    pool: u32,
}

impl AuthorizationTable {
    /// Derives the table of `rtype` from a finished schedule.
    ///
    /// Returns `None` if `rtype` is not globally shared in `spec`.
    pub fn from_schedule(
        system: &System,
        spec: &SharingSpec,
        schedule: &Schedule,
        rtype: ResourceTypeId,
    ) -> Option<Self> {
        let group = spec.group(rtype)?;
        let period = spec.period(rtype).expect("global types have periods");
        let mut grants = Vec::with_capacity(group.len());
        for &p in group {
            // Blocks of one process never overlap: their needs combine by
            // the slot-wise maximum (equation 9, integer form).
            let mut profile = vec![0u32; period as usize];
            for &b in system.process(p).blocks() {
                let usage = schedule.usage(system, b, rtype);
                let folded = modulo_max_counts(&usage, period);
                for (slot, v) in folded.into_iter().enumerate() {
                    profile[slot] = profile[slot].max(v);
                }
            }
            grants.push((p, profile));
        }
        let pool = (0..period as usize)
            .map(|slot| grants.iter().map(|(_, g)| g[slot]).sum::<u32>())
            .max()
            .unwrap_or(0);
        Some(AuthorizationTable {
            rtype,
            period,
            grants,
            pool,
        })
    }

    /// The authorized resource type.
    pub fn resource_type(&self) -> ResourceTypeId {
        self.rtype
    }

    /// The access period ρ.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// The shared instance count: `max_τ Σ_p grant_p(τ)`.
    pub fn pool(&self) -> u32 {
        self.pool
    }

    /// Instances granted to `process` in period slot `slot`.
    ///
    /// Returns 0 for processes outside the group.
    pub fn granted(&self, process: ProcessId, slot: u32) -> u32 {
        self.grants
            .iter()
            .find(|(p, _)| *p == process)
            .map_or(0, |(_, g)| g[(slot % self.period) as usize])
    }

    /// Instances `process` may use at absolute time `t` (equation 1).
    pub fn granted_at(&self, process: ProcessId, t: u64) -> u32 {
        self.granted(process, (t % u64::from(self.period)) as u32)
    }

    /// Per-process grant profiles in group order.
    pub fn grants(&self) -> &[(ProcessId, Vec<u32>)] {
        &self.grants
    }

    /// Total grants per slot (never exceeds [`AuthorizationTable::pool`]).
    pub fn slot_totals(&self) -> Vec<u32> {
        (0..self.period as usize)
            .map(|slot| self.grants.iter().map(|(_, g)| g[slot]).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ModuloScheduler;
    use crate::SharingSpec;
    use tcms_ir::generators::paper_system;

    #[test]
    fn table_matches_schedule_usage() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let table = AuthorizationTable::from_schedule(&sys, &spec, &out.schedule, t.mul).unwrap();
        assert_eq!(table.period(), 5);
        assert_eq!(table.grants().len(), 5);
        // Every process's actual usage fits its grant at every time step.
        for (pid, _) in sys.processes() {
            for &b in sys.process(pid).blocks() {
                let usage = out.schedule.usage(&sys, b, t.mul);
                for (time, &u) in usage.iter().enumerate() {
                    assert!(u <= table.granted(pid, (time % 5) as u32));
                }
            }
        }
        // Pool covers the slot totals.
        assert_eq!(table.pool(), table.slot_totals().into_iter().max().unwrap());
    }

    #[test]
    fn local_type_has_no_table() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        assert!(AuthorizationTable::from_schedule(&sys, &spec, &out.schedule, t.mul).is_none());
    }

    #[test]
    fn granted_at_is_periodic() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let table = AuthorizationTable::from_schedule(&sys, &spec, &out.schedule, t.add).unwrap();
        let p0 = sys.process_ids().next().unwrap();
        for t0 in 0..5u64 {
            assert_eq!(
                table.granted_at(p0, t0),
                table.granted_at(p0, t0 + 5 * 1234)
            );
        }
    }

    #[test]
    fn outside_process_gets_zero() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        // Subtracter group contains only the diffeq processes.
        let table = AuthorizationTable::from_schedule(&sys, &spec, &out.schedule, t.sub).unwrap();
        let p1 = sys.process_by_name("P1").unwrap();
        for slot in 0..5 {
            assert_eq!(table.granted(p1, slot), 0);
        }
    }
}
