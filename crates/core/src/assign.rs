//! Step (S1): assignment of resource types to processes.
//!
//! Every resource type is either **local** — the traditional per-process
//! resource counting — or **global**: assigned to a *process group* whose
//! members share instances through periodic access authorizations. A type
//! may be global for a subset of its users; the remaining users keep local
//! instances.

use tcms_ir::{BlockId, ProcessId, ResourceTypeId, System};

use crate::error::CoreError;
use crate::modulo::{checked_lcm, lcm};

/// Sharing scope of one resource type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// Traditional: one pool per process.
    Local,
    /// Shared by the listed process group with the given access period ρ.
    Global {
        /// Processes sharing the instances (at least two).
        group: Vec<ProcessId>,
        /// Access period ρ of the authorization sequence.
        period: u32,
    },
}

/// Full sharing specification: one [`Scope`] per resource type.
///
/// # Example
///
/// ```
/// use tcms_core::SharingSpec;
/// use tcms_ir::generators::paper_system;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (sys, types) = paper_system()?;
/// // Table 1: adder and multiplier global over all five processes,
/// // subtracter global over the two diffeq processes, all with ρ = 5.
/// let mut spec = SharingSpec::all_local(&sys);
/// spec.set_global(types.add, sys.users_of_type(types.add), 5);
/// spec.set_global(types.mul, sys.users_of_type(types.mul), 5);
/// spec.set_global(types.sub, sys.users_of_type(types.sub), 5);
/// spec.validate(&sys)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingSpec {
    scopes: Vec<Scope>,
}

impl SharingSpec {
    /// The traditional specification: every type local.
    pub fn all_local(system: &System) -> Self {
        SharingSpec {
            scopes: vec![Scope::Local; system.library().len()],
        }
    }

    /// Makes every type used by two or more processes global over all its
    /// users, with a common `period` — the paper's "pure global resource
    /// assignment".
    pub fn all_global(system: &System, period: u32) -> Self {
        let mut spec = Self::all_local(system);
        for k in system.library().ids() {
            let users = system.users_of_type(k);
            if users.len() >= 2 {
                spec.set_global(k, users, period);
            }
        }
        spec
    }

    /// Assigns `rtype` globally to `group` with access period `period`.
    /// Errors surface in [`SharingSpec::validate`].
    pub fn set_global(&mut self, rtype: ResourceTypeId, group: Vec<ProcessId>, period: u32) {
        self.scopes[rtype.index()] = Scope::Global { group, period };
    }

    /// Reverts `rtype` to the traditional local assignment.
    pub fn set_local(&mut self, rtype: ResourceTypeId) {
        self.scopes[rtype.index()] = Scope::Local;
    }

    /// The scope of `rtype`.
    pub fn scope(&self, rtype: ResourceTypeId) -> &Scope {
        &self.scopes[rtype.index()]
    }

    /// `true` if `rtype` is globally shared.
    pub fn is_global(&self, rtype: ResourceTypeId) -> bool {
        matches!(self.scopes[rtype.index()], Scope::Global { .. })
    }

    /// The access period of a global type, `None` for local types.
    pub fn period(&self, rtype: ResourceTypeId) -> Option<u32> {
        match &self.scopes[rtype.index()] {
            Scope::Local => None,
            Scope::Global { period, .. } => Some(*period),
        }
    }

    /// Overwrites the period of a global type (used by the period
    /// explorer).
    ///
    /// # Panics
    ///
    /// Panics if `rtype` is local.
    pub fn set_period(&mut self, rtype: ResourceTypeId, period: u32) {
        match &mut self.scopes[rtype.index()] {
            Scope::Global { period: p, .. } => *p = period,
            Scope::Local => panic!("cannot set a period on a local type"),
        }
    }

    /// The sharing group of a global type, `None` for local types.
    pub fn group(&self, rtype: ResourceTypeId) -> Option<&[ProcessId]> {
        match &self.scopes[rtype.index()] {
            Scope::Local => None,
            Scope::Global { group, .. } => Some(group),
        }
    }

    /// `true` if `rtype` is global *and* `process` belongs to its group
    /// (i.e. the process's usage is counted in the shared pool).
    pub fn is_global_for(&self, rtype: ResourceTypeId, process: ProcessId) -> bool {
        self.group(rtype).is_some_and(|g| g.contains(&process))
    }

    /// Global types assigned to `process` — the paper's set `G_p`.
    pub fn global_types_of_process(
        &self,
        system: &System,
        process: ProcessId,
    ) -> Vec<ResourceTypeId> {
        system
            .library()
            .ids()
            .filter(|&k| self.is_global_for(k, process))
            .collect()
    }

    /// All global resource types (the paper's set of types assigned to more
    /// than one process).
    pub fn global_types(&self, system: &System) -> Vec<ResourceTypeId> {
        system
            .library()
            .ids()
            .filter(|&k| self.is_global(k))
            .collect()
    }

    /// Grid spacing of `process` (equation 3): the lcm of the periods of
    /// all global types assigned to it. Block start times of the process
    /// are restricted to multiples of this spacing; `1` if no global type
    /// is assigned.
    pub fn grid_spacing(&self, system: &System, process: ProcessId) -> u32 {
        self.global_types_of_process(system, process)
            .into_iter()
            .fold(1, |acc, k| {
                lcm(acc, self.period(k).expect("global types have periods"))
            })
    }

    /// Grid spacing of a single block: the lcm of the periods of the global
    /// types the block actually uses. Blocks without global usage may start
    /// at any time (spacing 1), as noted in the paper.
    pub fn block_grid_spacing(&self, system: &System, block: BlockId) -> u32 {
        let process = system.block(block).process();
        system
            .types_used_by_block(block)
            .into_iter()
            .filter(|&k| self.is_global_for(k, process))
            .fold(1, |acc, k| {
                lcm(acc, self.period(k).expect("global types have periods"))
            })
    }

    /// Validates group sizes, membership, duplicates and periods.
    ///
    /// # Errors
    ///
    /// See [`CoreError`]; the first violation found is returned.
    pub fn validate(&self, system: &System) -> Result<(), CoreError> {
        self.validate_impl(system, false)
    }

    /// Like [`SharingSpec::validate`], but accepts singleton sharing
    /// groups. Partition shards legitimately hold a single local member of
    /// a group whose remaining users live in other partitions (they enter
    /// the force model as frozen external occupancy), so the
    /// [`CoreError::GroupTooSmall`] screen does not apply there. All other
    /// checks — zero periods, duplicates, non-users, grid overflow —
    /// remain in force.
    ///
    /// # Errors
    ///
    /// See [`CoreError`]; the first violation found is returned.
    pub fn validate_relaxed(&self, system: &System) -> Result<(), CoreError> {
        self.validate_impl(system, true)
    }

    fn validate_impl(&self, system: &System, allow_singletons: bool) -> Result<(), CoreError> {
        for (k, rt) in system.library().iter() {
            let Scope::Global { group, period } = &self.scopes[k.index()] else {
                continue;
            };
            if *period == 0 {
                return Err(CoreError::ZeroPeriod {
                    rtype: rt.name().to_owned(),
                });
            }
            if group.len() < if allow_singletons { 1 } else { 2 } {
                return Err(CoreError::GroupTooSmall {
                    rtype: rt.name().to_owned(),
                });
            }
            let users = system.users_of_type(k);
            let mut seen = std::collections::HashSet::new();
            for &p in group {
                if !seen.insert(p) {
                    return Err(CoreError::DuplicateProcessInGroup {
                        rtype: rt.name().to_owned(),
                        process: system.process(p).name().to_owned(),
                    });
                }
                if !users.contains(&p) {
                    return Err(CoreError::ProcessDoesNotUseType {
                        rtype: rt.name().to_owned(),
                        process: system.process(p).name().to_owned(),
                    });
                }
            }
        }
        // Equation-3 screen against arithmetic overflow: every process's
        // grid spacing must fit in u32, so the unchecked `lcm` used on the
        // hot paths is safe for validated specifications.
        for p in system.process_ids() {
            let mut acc: u32 = 1;
            for k in self.global_types_of_process(system, p) {
                let period = self.period(k).expect("global types have periods");
                acc = checked_lcm(acc, period).ok_or_else(|| CoreError::PeriodGridOverflow {
                    process: system.process(p).name().to_owned(),
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;

    #[test]
    fn all_local_has_no_global_types() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        assert!(spec.global_types(&sys).is_empty());
        spec.validate(&sys).unwrap();
        for p in sys.process_ids() {
            assert_eq!(spec.grid_spacing(&sys, p), 1);
        }
    }

    #[test]
    fn all_global_covers_shared_types() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        spec.validate(&sys).unwrap();
        assert!(spec.is_global(t.add));
        assert!(spec.is_global(t.mul));
        assert!(spec.is_global(t.sub));
        assert_eq!(spec.period(t.add), Some(5));
        assert_eq!(spec.group(t.sub).unwrap().len(), 2);
        assert_eq!(spec.group(t.add).unwrap().len(), 5);
    }

    #[test]
    fn grid_spacing_is_lcm_of_periods() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, sys.users_of_type(t.add), 3);
        spec.set_global(t.mul, sys.users_of_type(t.mul), 4);
        spec.validate(&sys).unwrap();
        let p0 = sys.process_ids().next().unwrap();
        assert_eq!(spec.grid_spacing(&sys, p0), 12);
    }

    #[test]
    fn block_spacing_only_counts_used_types() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        // Subtracter is used only by the diffeq processes.
        spec.set_global(t.sub, sys.users_of_type(t.sub), 5);
        spec.validate(&sys).unwrap();
        let ewf_block = sys.process(tcms_ir::ProcessId::from_index(0)).blocks()[0];
        let diffeq_block = sys.process(tcms_ir::ProcessId::from_index(3)).blocks()[0];
        assert_eq!(spec.block_grid_spacing(&sys, ewf_block), 1);
        assert_eq!(spec.block_grid_spacing(&sys, diffeq_block), 5);
    }

    #[test]
    fn group_of_one_rejected() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, vec![sys.process_ids().next().unwrap()], 5);
        assert!(matches!(
            spec.validate(&sys),
            Err(CoreError::GroupTooSmall { .. })
        ));
    }

    #[test]
    fn relaxed_validation_accepts_singletons_but_not_empties() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, vec![sys.process_ids().next().unwrap()], 5);
        assert!(matches!(
            spec.validate(&sys),
            Err(CoreError::GroupTooSmall { .. })
        ));
        spec.validate_relaxed(&sys).unwrap();
        let mut empty = SharingSpec::all_local(&sys);
        empty.set_global(t.add, Vec::new(), 5);
        assert!(matches!(
            empty.validate_relaxed(&sys),
            Err(CoreError::GroupTooSmall { .. })
        ));
        // Other screens still apply under relaxation.
        let mut zero = SharingSpec::all_local(&sys);
        zero.set_global(t.add, sys.users_of_type(t.add), 0);
        assert!(matches!(
            zero.validate_relaxed(&sys),
            Err(CoreError::ZeroPeriod { .. })
        ));
    }

    #[test]
    fn non_user_in_group_rejected() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        // P1 (EWF) does not use the subtracter.
        let p1 = sys.process_by_name("P1").unwrap();
        let p4 = sys.process_by_name("P4").unwrap();
        spec.set_global(t.sub, vec![p1, p4], 5);
        assert!(matches!(
            spec.validate(&sys),
            Err(CoreError::ProcessDoesNotUseType { .. })
        ));
    }

    #[test]
    fn duplicate_process_rejected() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        let p4 = sys.process_by_name("P4").unwrap();
        spec.set_global(t.sub, vec![p4, p4], 5);
        assert!(matches!(
            spec.validate(&sys),
            Err(CoreError::DuplicateProcessInGroup { .. })
        ));
    }

    #[test]
    fn zero_period_rejected() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, sys.users_of_type(t.add), 0);
        assert!(matches!(
            spec.validate(&sys),
            Err(CoreError::ZeroPeriod { .. })
        ));
    }

    #[test]
    fn set_period_updates() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_global(&sys, 5);
        spec.set_period(t.mul, 7);
        assert_eq!(spec.period(t.mul), Some(7));
        assert_eq!(spec.period(t.add), Some(5));
    }

    #[test]
    #[should_panic(expected = "local type")]
    fn set_period_on_local_panics() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_period(t.mul, 7);
    }

    #[test]
    fn overflowing_period_grid_rejected() {
        // Two near-u32::MAX co-prime periods: each fits, their lcm does
        // not. Validation must reject instead of wrapping silently.
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, sys.users_of_type(t.add), u32::MAX - 4);
        spec.set_global(t.mul, sys.users_of_type(t.mul), u32::MAX - 58);
        assert!(matches!(
            spec.validate(&sys),
            Err(CoreError::PeriodGridOverflow { .. })
        ));
        // A single huge period is fine by itself (spacing = the period).
        let mut single = SharingSpec::all_local(&sys);
        single.set_global(t.add, sys.users_of_type(t.add), u32::MAX - 4);
        single.validate(&sys).unwrap();
    }

    #[test]
    fn partial_group_leaves_rest_local() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        let p1 = sys.process_by_name("P1").unwrap();
        let p2 = sys.process_by_name("P2").unwrap();
        let p3 = sys.process_by_name("P3").unwrap();
        spec.set_global(t.mul, vec![p1, p2], 5);
        spec.validate(&sys).unwrap();
        assert!(spec.is_global_for(t.mul, p1));
        assert!(!spec.is_global_for(t.mul, p3));
        assert_eq!(spec.global_types_of_process(&sys, p3), vec![]);
        assert_eq!(spec.global_types_of_process(&sys, p1), vec![t.mul]);
    }
}
