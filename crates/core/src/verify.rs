//! Run-time validity checking of modulo schedules.
//!
//! The paper's central claim is that the periodic access authorization
//! resolves all conflicts *statically*: as long as every block starts on
//! its grid (a multiple of the lcm of the used global periods, equations
//! 2–3) and blocks of one process never overlap (condition C2), the shared
//! instance count is never exceeded — for *any* block start times, which
//! may be unknown at synthesis time.
//!
//! [`check_execution`] verifies exactly that for a concrete set of block
//! activations, and [`random_activations`] generates grid-aligned,
//! non-overlapping activation patterns for property tests.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tcms_fds::Schedule;
use tcms_ir::{BlockId, System};

use crate::assign::SharingSpec;
use crate::report::ScheduleReport;

/// One run of a block starting at an absolute time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// The activated block.
    pub block: BlockId,
    /// Absolute start time of the activation.
    pub start: u64,
}

/// Violations detected by [`check_execution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block started off its grid.
    MisalignedStart {
        /// Offending block name.
        block: String,
        /// The absolute start time.
        start: u64,
        /// Required grid spacing.
        spacing: u32,
    },
    /// Two activations of one process overlap in time (condition C2).
    ProcessOverlap {
        /// The process whose activations overlap.
        process: String,
    },
    /// More instances of a globally shared type in use than the pool holds.
    GlobalOverflow {
        /// Resource type name.
        rtype: String,
        /// Absolute time of the overflow.
        time: u64,
        /// Concurrent usage observed.
        used: u32,
        /// Available shared instances.
        pool: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MisalignedStart {
                block,
                start,
                spacing,
            } => write!(
                f,
                "block `{block}` starts at {start}, off its grid of spacing {spacing}"
            ),
            VerifyError::ProcessOverlap { process } => {
                write!(f, "activations of process `{process}` overlap")
            }
            VerifyError::GlobalOverflow {
                rtype,
                time,
                used,
                pool,
            } => write!(
                f,
                "{used} instances of `{rtype}` in use at time {time}, pool holds {pool}"
            ),
        }
    }
}

impl Error for VerifyError {}

/// Checks a concrete execution (a set of block activations) against the
/// schedule's resource accounting.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found: a grid violation, an in-process
/// overlap, or a global pool overflow.
pub fn check_execution(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    report: &ScheduleReport,
    activations: &[Activation],
) -> Result<(), VerifyError> {
    // Grid alignment per block (equation 2/3).
    for a in activations {
        let spacing = spec.block_grid_spacing(system, a.block);
        if a.start % u64::from(spacing) != 0 {
            return Err(VerifyError::MisalignedStart {
                block: system.block(a.block).name().to_owned(),
                start: a.start,
                spacing,
            });
        }
    }
    // Condition (C2): activations of one process must not overlap. The
    // occupied window of an activation is the block's makespan.
    let mut per_process: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
    for a in activations {
        let p = system.block(a.block).process();
        let len = u64::from(schedule.block_makespan(system, a.block));
        per_process
            .entry(p.index())
            .or_default()
            .push((a.start, a.start + len));
    }
    for (p, windows) in &mut per_process {
        windows.sort_unstable();
        for w in windows.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(VerifyError::ProcessOverlap {
                    process: system
                        .process(tcms_ir::ProcessId::from_index(*p))
                        .name()
                        .to_owned(),
                });
            }
        }
    }
    // Global pools: simulate the absolute-time usage of every shared type.
    for k in spec.global_types(system) {
        let pool = report.instances(k);
        let mut usage: HashMap<u64, u32> = HashMap::new();
        for a in activations {
            let process = system.block(a.block).process();
            if !spec.is_global_for(k, process) {
                continue;
            }
            for (t, &u) in schedule.usage(system, a.block, k).iter().enumerate() {
                if u > 0 {
                    *usage.entry(a.start + t as u64).or_insert(0) += u;
                }
            }
        }
        for (time, used) in usage {
            if used > pool {
                return Err(VerifyError::GlobalOverflow {
                    rtype: system.library().get(k).name().to_owned(),
                    time,
                    used,
                    pool,
                });
            }
        }
    }
    Ok(())
}

/// Exhaustively checks every combination of per-process grid phases
/// within one hyperperiod.
///
/// For each process the phase of its first activation is swept over all
/// multiples of its grid spacing below the hyperperiod (the lcm of all
/// spacings); each process then re-activates back to back four times, so
/// any two processes actually overlap in time at every enumerated
/// relative phase. Usage repeats with the hyperperiod, so for
/// single-block processes (and multi-block processes whose blocks share
/// one grid) this covers all steady-state process interleavings — a
/// stronger guarantee than sampling with [`random_activations`],
/// tractable only for small systems. Multi-block processes with
/// heterogeneous per-block grids are swept at the coarser process-level
/// grid; use [`random_activations`] to sample their finer block phases.
///
/// # Errors
///
/// The outer `Err(count)` signals that the combination count exceeds
/// `limit`; an inner verification failure is returned as `Ok(Err(v))`,
/// success as `Ok(Ok(combinations_checked))`.
#[allow(clippy::type_complexity)]
pub fn exhaustive_check(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    report: &ScheduleReport,
    limit: u64,
) -> Result<Result<u64, VerifyError>, u64> {
    let processes: Vec<_> = system.process_ids().collect();
    let spacings: Vec<u64> = processes
        .iter()
        .map(|&p| u64::from(spec.grid_spacing(system, p)))
        .collect();
    // The cross-process hyperperiod can overflow even when every
    // per-process spacing passed validation (coprime spacings multiply);
    // an overflowing hyperperiod means astronomically many phase
    // combinations, so report it through the limit-exceeded channel.
    let mut hyper32 = 1u32;
    for &s in &spacings {
        match crate::modulo::checked_lcm(hyper32, s as u32) {
            Some(l) => hyper32 = l,
            None => return Err(u64::MAX),
        }
    }
    let hyper = u64::from(hyper32);
    let choices: Vec<u64> = spacings.iter().map(|&s| hyper / s).collect();
    let total: u64 = choices
        .iter()
        .try_fold(1u64, |acc, &c| acc.checked_mul(c))
        .unwrap_or(u64::MAX);
    if total > limit {
        return Err(total);
    }
    let rounds = 4u64;
    let mut idx = vec![0u64; processes.len()];
    let mut checked = 0u64;
    loop {
        let mut acts = Vec::new();
        for (i, &p) in processes.iter().enumerate() {
            let mut cursor = idx[i] * spacings[i];
            for _ in 0..rounds {
                for &b in system.process(p).blocks() {
                    let spacing = u64::from(spec.block_grid_spacing(system, b));
                    let start = cursor.div_ceil(spacing) * spacing;
                    acts.push(Activation { block: b, start });
                    cursor = start + u64::from(schedule.block_makespan(system, b));
                }
            }
        }
        if let Err(e) = check_execution(system, spec, schedule, report, &acts) {
            return Ok(Err(e));
        }
        checked += 1;
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == idx.len() {
                return Ok(Ok(checked));
            }
            idx[i] += 1;
            if idx[i] < choices[i] {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

/// Generates a random, grid-aligned, per-process non-overlapping activation
/// pattern: every block of every process is activated `rounds` times at
/// random grid points within a generous horizon.
pub fn random_activations(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    rounds: usize,
    seed: u64,
) -> Vec<Activation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (pid, process) in system.processes() {
        let _ = pid;
        let mut cursor = 0u64;
        for _ in 0..rounds {
            for &b in process.blocks() {
                let spacing = u64::from(spec.block_grid_spacing(system, b));
                // Random idle gap, then align up to the grid.
                cursor += rng.random_range(0..4 * spacing.max(1));
                let start = cursor.div_ceil(spacing) * spacing;
                out.push(Activation { block: b, start });
                cursor = start + u64::from(schedule.block_makespan(system, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ModuloScheduler;
    use crate::SharingSpec;
    use tcms_ir::generators::paper_system;

    fn scheduled() -> (
        tcms_ir::System,
        SharingSpec,
        tcms_fds::Schedule,
        ScheduleReport,
    ) {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let report = out.report();
        let schedule = out.schedule.clone();
        (sys, spec, schedule, report)
    }

    #[test]
    fn aligned_random_executions_never_overflow() {
        let (sys, spec, schedule, report) = scheduled();
        for seed in 0..25 {
            let acts = random_activations(&sys, &spec, &schedule, 3, seed);
            check_execution(&sys, &spec, &schedule, &report, &acts)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn misaligned_start_detected() {
        let (sys, spec, schedule, report) = scheduled();
        let block = sys.block_ids().next().unwrap();
        let acts = [Activation { block, start: 3 }]; // spacing is 5
        assert!(matches!(
            check_execution(&sys, &spec, &schedule, &report, &acts),
            Err(VerifyError::MisalignedStart { .. })
        ));
    }

    #[test]
    fn overlapping_process_activations_detected() {
        let (sys, spec, schedule, report) = scheduled();
        let block = sys.block_ids().next().unwrap();
        let acts = [
            Activation { block, start: 0 },
            Activation { block, start: 5 }, // EWF makespan > 5
        ];
        assert!(matches!(
            check_execution(&sys, &spec, &schedule, &report, &acts),
            Err(VerifyError::ProcessOverlap { .. })
        ));
    }

    #[test]
    fn forged_small_pool_detected() {
        // Shrinking the pool must produce an overflow for simultaneous
        // starts, demonstrating the check is not vacuous.
        let (sys, spec, schedule, report) = scheduled();
        let acts: Vec<Activation> = sys
            .block_ids()
            .map(|block| Activation { block, start: 0 })
            .collect();
        check_execution(&sys, &spec, &schedule, &report, &acts).unwrap();

        let local_spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, local_spec)
            .unwrap()
            .run()
            .unwrap();
        // Local schedule was not aligned for sharing: checking it against
        // the *global* spec's report will generally overflow the pool.
        let r = check_execution(&sys, &spec, &out.schedule, &report, &acts);
        // Either it happens to fit (unlikely) or we see the overflow error
        // kind — never a panic or another error kind.
        if let Err(e) = r {
            assert!(matches!(e, VerifyError::GlobalOverflow { .. }), "{e}");
        }
    }

    #[test]
    fn local_spec_trivially_verifies() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let report = out.report();
        for seed in 0..5 {
            let acts = random_activations(&sys, &spec, &out.schedule, 2, seed);
            check_execution(&sys, &spec, &out.schedule, &report, &acts).unwrap();
        }
    }

    #[test]
    fn exhaustive_check_uniform_spacing_has_one_phase() {
        // All five paper processes share spacing 5, so all grid-aligned
        // executions have the same relative phase: one combination covers
        // the steady state.
        let (sys, spec, schedule, report) = scheduled();
        let result = exhaustive_check(&sys, &spec, &schedule, &report, 100).expect("within limit");
        assert_eq!(result.expect("no violation"), 1);
    }

    /// Three processes with heterogeneous grids: A shares `mul` (ρ=2)
    /// with B; B shares `add` (ρ=3) with C. Spacings 2 / 6 / 3 give a
    /// 6-step hyperperiod with 3 × 1 × 2 phase combinations.
    fn heterogeneous() -> (
        tcms_ir::System,
        SharingSpec,
        tcms_fds::Schedule,
        ScheduleReport,
    ) {
        use tcms_ir::generators::paper_library;
        use tcms_ir::SystemBuilder;
        let (lib, types) = paper_library();
        let mut b = SystemBuilder::new(lib);
        let pa = b.add_process("A");
        let ba = b.add_block(pa, "body", 8).unwrap();
        b.add_op(ba, "m", types.mul).unwrap();
        let pb = b.add_process("B");
        let bb = b.add_block(pb, "body", 12).unwrap();
        let m = b.add_op(bb, "m", types.mul).unwrap();
        b.add_op_with_preds(bb, "a", types.add, &[m]).unwrap();
        let pc = b.add_process("C");
        let bc = b.add_block(pc, "body", 9).unwrap();
        b.add_op(bc, "a", types.add).unwrap();
        let sys = b.build().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(types.mul, vec![pa, pb], 2);
        spec.set_global(types.add, vec![pb, pc], 3);
        spec.validate(&sys).unwrap();
        let out = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let report = out.report();
        let schedule = out.schedule.clone();
        (sys, spec, schedule, report)
    }

    #[test]
    fn exhaustive_check_heterogeneous_phases() {
        let (sys, spec, schedule, report) = heterogeneous();
        let result = exhaustive_check(&sys, &spec, &schedule, &report, 100).expect("within limit");
        assert_eq!(result.expect("no violation"), 6);
    }

    #[test]
    fn exhaustive_check_respects_limit() {
        let (sys, spec, schedule, report) = heterogeneous();
        let err = exhaustive_check(&sys, &spec, &schedule, &report, 2).unwrap_err();
        assert_eq!(err, 6);
    }

    #[test]
    fn error_display() {
        let e = VerifyError::GlobalOverflow {
            rtype: "mul".into(),
            time: 12,
            used: 4,
            pool: 3,
        };
        assert_eq!(
            e.to_string(),
            "4 instances of `mul` in use at time 12, pool holds 3"
        );
    }

    #[test]
    fn exhaustive_check_detects_colliding_schedule() {
        // The report is derived from a properly staggered schedule (pool
        // of one suffices: P1 uses slot 0, P2 slot 1); the schedule under
        // check puts both ops at offset 0, so every aligned phase collides.
        // The sweep must surface the overflow as an inner error.
        use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};
        let mut lib = ResourceLibrary::new();
        let ta = lib.add(ResourceType::new("ta", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let mut ops = Vec::new();
        for name in ["P1", "P2"] {
            let p = b.add_process(name);
            let blk = b.add_block(p, "body", 2).unwrap();
            ops.push(b.add_op(blk, "x", ta).unwrap());
        }
        let sys = b.build().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(ta, sys.users_of_type(ta), 2);
        spec.validate(&sys).unwrap();
        let mut staggered = tcms_fds::Schedule::new(2);
        staggered.set(ops[0], 0);
        staggered.set(ops[1], 1);
        let report = crate::compute_report(&sys, &spec, &staggered);
        assert_eq!(report.instances(ta), 1, "staggering shares one instance");
        let mut colliding = tcms_fds::Schedule::new(2);
        colliding.set(ops[0], 0);
        colliding.set(ops[1], 0);
        let verdict =
            exhaustive_check(&sys, &spec, &colliding, &report, 100).expect("within limit");
        assert!(
            matches!(verdict, Err(VerifyError::GlobalOverflow { ref rtype, .. }) if rtype == "ta"),
            "{verdict:?}"
        );
    }

    #[test]
    fn exhaustive_check_overflowing_hyperperiod_reports_limit_exceeded() {
        // Two disjoint global groups with large coprime periods: each
        // process's spacing validates (65537 and 65539 both fit their
        // budgets) but the cross-process hyperperiod 65537·65539
        // overflows u32. The checker must refuse via the limit channel
        // instead of panicking in the lcm fold.
        use tcms_ir::{ResourceLibrary, ResourceType, SystemBuilder};
        let mut lib = ResourceLibrary::new();
        let ta = lib.add(ResourceType::new("ta", 1)).unwrap();
        let tb = lib.add(ResourceType::new("tb", 1)).unwrap();
        let mut b = SystemBuilder::new(lib);
        let mut ops = Vec::new();
        for (name, rtype, range) in [
            ("P1", ta, 65_537),
            ("P2", ta, 65_537),
            ("P3", tb, 65_539),
            ("P4", tb, 65_539),
        ] {
            let p = b.add_process(name);
            let blk = b.add_block(p, "body", range).unwrap();
            ops.push(b.add_op(blk, "x", rtype).unwrap());
        }
        let sys = b.build().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(ta, sys.users_of_type(ta), 65_537);
        spec.set_global(tb, sys.users_of_type(tb), 65_539);
        spec.validate(&sys).expect("per-process spacings are fine");
        let mut schedule = tcms_fds::Schedule::new(sys.num_ops());
        for o in ops {
            schedule.set(o, 0);
        }
        let report = crate::compute_report(&sys, &spec, &schedule);
        let err = exhaustive_check(&sys, &spec, &schedule, &report, u64::MAX - 1).unwrap_err();
        assert_eq!(err, u64::MAX);
    }
}
