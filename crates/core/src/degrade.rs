//! Graceful-degradation ladder over the coupled modulo scheduler.
//!
//! A specification can fail the coupled run for reasons the caller may
//! prefer to trade against rather than abort on: the equation-3 grid is
//! infeasible, or the configured [`tcms_fds::RunBudget`] trips first.
//! [`schedule_with_degradation`] retries with progressively weaker — but
//! always explicit — concessions:
//!
//! 1. **Relax periods** ([`Rung::RelaxPeriods`]): raise every global
//!    period to the harmonic ceiling (the largest period in use), which
//!    collapses each process's grid spacing from an lcm to that single
//!    value — the upward move along the S2 candidate grid.
//! 2. **Demote groups** ([`Rung::DemoteGroup`]): return the tightest
//!    global group (largest period — the binding resource of the
//!    infeasibility) to the traditional local assignment, one group per
//!    attempt.
//! 3. **Widen time** ([`Rung::WidenTime`]): scale every block's time
//!    range by a bounded factor
//!    ([`tcms_ir::transform::widen_time_ranges`]), restoring the original
//!    sharing specification — latency is sacrificed, area is not.
//! 4. **Resource-constrained fallback** ([`Rung::RcFallback`]): abandon
//!    time-constrained scheduling and list-schedule with per-block
//!    concurrency limits ([`crate::rc::rc_modulo_schedule`]) under the
//!    all-local specification. This rung always has a feasible solution.
//!
//! Every attempt — successful or not — is recorded both in the returned
//! [`LadderOutcome::attempts`] trail and as a `degrade.rung` timeline
//! event on the [`Recorder`]. Every emitted schedule is re-verified
//! (structural verification plus randomized grid-aligned executions)
//! before it is returned; a schedule that fails re-verification is
//! discarded and the ladder keeps climbing.

use tcms_fds::{FdsConfig, Schedule};
use tcms_ir::transform::widen_time_ranges;
use tcms_ir::System;
use tcms_obs::{span, NoopRecorder, Recorder};

use crate::assign::SharingSpec;
use crate::error::ScheduleError;
use crate::period::spacing_budget;
use crate::rc::rc_modulo_schedule;
use crate::report::{compute_report, ScheduleReport};
use crate::scheduler::ModuloScheduler;
use crate::verify::{check_execution, random_activations};

/// The ladder rung that produced (or attempted) a schedule, ordered from
/// no degradation to full fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The specification as given — no degradation.
    Direct,
    /// Global periods raised to their harmonic ceiling.
    RelaxPeriods,
    /// One or more global groups demoted to local pools.
    DemoteGroup,
    /// Block time ranges widened by a bounded factor.
    WidenTime,
    /// Resource-constrained list scheduling, all-local pools.
    RcFallback,
}

impl Rung {
    /// Stable kebab-case name (used in timeline events and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rung::Direct => "direct",
            Rung::RelaxPeriods => "relax-periods",
            Rung::DemoteGroup => "demote-group",
            Rung::WidenTime => "widen-time",
            Rung::RcFallback => "rc-fallback",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One attempted rung of the ladder.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The rung tried.
    pub rung: Rung,
    /// Human-readable description of the concession (e.g. which group was
    /// demoted, which factor was applied).
    pub detail: String,
    /// `None` if this attempt produced the returned schedule, otherwise
    /// the error that pushed the ladder onward.
    pub error: Option<ScheduleError>,
}

/// Bounds and knobs of the degradation ladder.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Maximum number of global groups demoted on [`Rung::DemoteGroup`]
    /// before escalating (default: unlimited — demote until none remain).
    pub max_demotions: usize,
    /// Time-widening factors tried in order on [`Rung::WidenTime`], as
    /// `(numerator, denominator)` pairs. Factors below 1 are ignored.
    /// Default: 5/4, 3/2, 2/1 — bounded at doubling the constraint.
    pub widen_factors: Vec<(u32, u32)>,
    /// Extra instances added to every per-block concurrency limit of the
    /// [`Rung::RcFallback`] list scheduler (default 0).
    pub rc_headroom: u32,
    /// Number of randomized grid-aligned executions used to re-verify
    /// every emitted schedule (default 3).
    pub verify_seeds: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            max_demotions: usize::MAX,
            widen_factors: vec![(5, 4), (3, 2), (2, 1)],
            rc_headroom: 0,
            verify_seeds: 3,
        }
    }
}

/// A schedule produced by the ladder, together with everything needed to
/// interpret it: the (possibly modified) specification, the (possibly
/// widened) system, the rung that succeeded and the full attempt trail.
#[derive(Debug, Clone)]
pub struct LadderOutcome {
    /// The verified schedule.
    pub schedule: Schedule,
    /// Resource counts, authorization tables and area.
    pub report: ScheduleReport,
    /// The sharing specification the schedule was produced under — equal
    /// to the input on [`Rung::Direct`], modified otherwise.
    pub spec: SharingSpec,
    /// The widened system when [`Rung::WidenTime`] engaged; `None` means
    /// the schedule is valid against the caller's system.
    pub system: Option<System>,
    /// The rung that produced the schedule.
    pub rung: Rung,
    /// Frame-reduction iterations of the successful coupled run (0 for
    /// the resource-constrained fallback).
    pub iterations: u64,
    /// Every rung tried, in order, including the successful one (whose
    /// `error` is `None`).
    pub attempts: Vec<Attempt>,
}

impl LadderOutcome {
    /// One-line human-readable account of how the schedule was obtained.
    #[must_use]
    pub fn summary(&self) -> String {
        let last = self
            .attempts
            .last()
            .expect("outcome implies at least one attempt");
        if self.rung == Rung::Direct {
            "scheduled as specified (no degradation)".to_owned()
        } else {
            format!(
                "degraded to rung `{}` ({}) after {} attempts",
                self.rung,
                last.detail,
                self.attempts.len()
            )
        }
    }
}

/// Runs the degradation ladder without observability.
///
/// # Errors
///
/// Returns the *root-cause* error — the failure of the undegraded run —
/// if every rung fails. The resource-constrained fallback is designed to
/// always succeed, so an error here indicates an internal invariant
/// violation or a system whose blocks cannot hold their own operations.
pub fn schedule_with_degradation(
    system: &System,
    spec: &SharingSpec,
    config: &FdsConfig,
    ladder: &LadderConfig,
) -> Result<LadderOutcome, ScheduleError> {
    schedule_with_degradation_recorded(system, spec, config, ladder, &NoopRecorder)
}

/// [`schedule_with_degradation`] with observability: each rung emits a
/// `degrade.rung` timeline event (fields: `rung`, `detail`, `outcome`)
/// and the inner scheduler runs stream their usual spans and samples.
///
/// # Errors
///
/// Same as [`schedule_with_degradation`].
pub fn schedule_with_degradation_recorded(
    system: &System,
    spec: &SharingSpec,
    config: &FdsConfig,
    ladder: &LadderConfig,
    rec: &dyn Recorder,
) -> Result<LadderOutcome, ScheduleError> {
    let _ladder_span = span!(rec, "degrade.ladder");
    let mut attempts: Vec<Attempt> = Vec::new();

    // Rung 0: the specification as given. Feasible specs take exactly the
    // plain scheduler path, so their schedules are bit-identical to a
    // direct `ModuloScheduler::run`.
    if let Some(ok) = attempt_coupled(
        system,
        spec,
        config,
        ladder,
        Rung::Direct,
        "as specified",
        &mut attempts,
        rec,
    ) {
        return Ok(finish(ok, spec.clone(), None, Rung::Direct, attempts));
    }

    // Rung 1: raise every global period to the harmonic ceiling.
    let mut current = spec.clone();
    if let Some((relaxed, ceiling)) = relax_periods(system, &current) {
        let detail = format!("all global periods raised to {ceiling}");
        if let Some(ok) = attempt_coupled(
            system,
            &relaxed,
            config,
            ladder,
            Rung::RelaxPeriods,
            &detail,
            &mut attempts,
            rec,
        ) {
            return Ok(finish(ok, relaxed, None, Rung::RelaxPeriods, attempts));
        }
        current = relaxed;
    }

    // Rung 2: demote the tightest global group, one per attempt.
    for _ in 0..ladder.max_demotions {
        let Some((demoted, name)) = demote_tightest(system, &current) else {
            break;
        };
        let detail = format!("global group of `{name}` demoted to local");
        if let Some(ok) = attempt_coupled(
            system,
            &demoted,
            config,
            ladder,
            Rung::DemoteGroup,
            &detail,
            &mut attempts,
            rec,
        ) {
            return Ok(finish(ok, demoted, None, Rung::DemoteGroup, attempts));
        }
        current = demoted;
    }

    // Rung 3: widen the time constraint by a bounded factor, restoring
    // the caller's sharing specification (latency is conceded, not area).
    for &(numer, denom) in ladder.widen_factors.iter().filter(|(n, d)| n >= d) {
        let widened =
            widen_time_ranges(system, numer, denom).expect("widening never shrinks a time range");
        let detail = format!("time ranges scaled by {numer}/{denom}");
        if let Some(ok) = attempt_coupled(
            &widened,
            spec,
            config,
            ladder,
            Rung::WidenTime,
            &detail,
            &mut attempts,
            rec,
        ) {
            return Ok(finish(
                ok,
                spec.clone(),
                Some(widened),
                Rung::WidenTime,
                attempts,
            ));
        }
    }

    // Rung 4: resource-constrained list scheduling with per-block
    // concurrency limits under the all-local specification. With
    // `limit(k) = max ops of type k in any block`, no placement can ever
    // block on a resource, so this rung is a guaranteed landing pad.
    let local = SharingSpec::all_local(system);
    let limits: Vec<u32> = system
        .library()
        .ids()
        .map(|k| {
            system
                .block_ids()
                .map(|b| system.ops_of_type(b, k).len() as u32)
                .max()
                .unwrap_or(0)
                .max(1)
                + ladder.rc_headroom
        })
        .collect();
    let detail = "resource-constrained list scheduling, local pools".to_owned();
    match rc_modulo_schedule(system, &local, &limits).map_err(ScheduleError::from) {
        Ok(rc) => match reverify(system, &local, &rc.schedule, ladder.verify_seeds) {
            Ok(report) => {
                record(rec, &mut attempts, Rung::RcFallback, &detail, None);
                return Ok(finish(
                    (rc.schedule, report, 0),
                    local,
                    None,
                    Rung::RcFallback,
                    attempts,
                ));
            }
            Err(msg) => {
                let e = ScheduleError::VerificationFailed { detail: msg };
                record(rec, &mut attempts, Rung::RcFallback, &detail, Some(e));
            }
        },
        Err(e) => record(rec, &mut attempts, Rung::RcFallback, &detail, Some(e)),
    }

    // Every rung failed: surface the root cause (the undegraded failure).
    Err(attempts
        .iter()
        .find_map(|a| a.error.clone())
        .expect("a fully failed ladder has at least one error"))
}

/// Runs the coupled scheduler for one rung and re-verifies the result.
/// Returns `Some((schedule, report, iterations))` on success; records the
/// attempt and the timeline event either way.
#[allow(clippy::too_many_arguments)]
fn attempt_coupled(
    system: &System,
    spec: &SharingSpec,
    config: &FdsConfig,
    ladder: &LadderConfig,
    rung: Rung,
    detail: &str,
    attempts: &mut Vec<Attempt>,
    rec: &dyn Recorder,
) -> Option<(Schedule, ScheduleReport, u64)> {
    let result = ModuloScheduler::new(system, spec.clone())
        .map_err(ScheduleError::from)
        .and_then(|s| {
            s.with_config(config.clone())
                .run_recorded(rec)
                .map(|o| (o.schedule, o.iterations))
        });
    match result {
        Ok((schedule, iterations)) => {
            match reverify(system, spec, &schedule, ladder.verify_seeds) {
                Ok(report) => {
                    record(rec, attempts, rung, detail, None);
                    Some((schedule, report, iterations))
                }
                Err(msg) => {
                    let e = ScheduleError::VerificationFailed { detail: msg };
                    record(rec, attempts, rung, detail, Some(e));
                    None
                }
            }
        }
        Err(e) => {
            record(rec, attempts, rung, detail, Some(e));
            None
        }
    }
}

/// Structural verification plus `seeds` randomized grid-aligned
/// executions; returns the report on success, the failure text otherwise.
fn reverify(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    seeds: u64,
) -> Result<ScheduleReport, String> {
    schedule.verify(system).map_err(|e| e.to_string())?;
    let report = compute_report(system, spec, schedule);
    for seed in 0..seeds {
        let acts = random_activations(system, spec, schedule, 3, seed);
        check_execution(system, spec, schedule, &report, &acts).map_err(|e| e.to_string())?;
    }
    Ok(report)
}

fn record(
    rec: &dyn Recorder,
    attempts: &mut Vec<Attempt>,
    rung: Rung,
    detail: &str,
    error: Option<ScheduleError>,
) {
    rec.event(
        "degrade.rung",
        &[
            ("rung", rung.name().into()),
            ("detail", detail.to_owned().into()),
            (
                "outcome",
                match &error {
                    None => "ok".into(),
                    Some(e) => format!("{e}").into(),
                },
            ),
        ],
    );
    rec.counter_add("degrade.attempts", 1);
    attempts.push(Attempt {
        rung,
        detail: detail.to_owned(),
        error,
    });
}

fn finish(
    (schedule, report, iterations): (Schedule, ScheduleReport, u64),
    spec: SharingSpec,
    system: Option<System>,
    rung: Rung,
    attempts: Vec<Attempt>,
) -> LadderOutcome {
    LadderOutcome {
        schedule,
        report,
        spec,
        system,
        rung,
        iterations,
        attempts,
    }
}

/// The upward S2 move: raise every global period to the largest period in
/// use (the harmonic ceiling), collapsing each process's grid spacing
/// from an lcm to that single value. Returns `None` when the move is a
/// no-op (all periods already equal, or no global types) or when the
/// ceiling itself exceeds some sharing process's spacing budget.
fn relax_periods(system: &System, spec: &SharingSpec) -> Option<(SharingSpec, u32)> {
    let globals = spec.global_types(system);
    let ceiling = globals
        .iter()
        .map(|&k| spec.period(k).expect("global types have periods"))
        .max()?;
    let changes = globals
        .iter()
        .any(|&k| spec.period(k).expect("global types have periods") < ceiling);
    let tolerated = system.process_ids().all(|p| {
        spec.global_types_of_process(system, p).is_empty() || spacing_budget(system, p) >= ceiling
    });
    if !changes || !tolerated {
        return None;
    }
    let mut relaxed = spec.clone();
    for &k in &globals {
        relaxed.set_period(k, ceiling);
    }
    Some((relaxed, ceiling))
}

/// Demotes the tightest global group — the type with the largest period,
/// i.e. the binding resource of an equation-3 violation — to local.
/// Ties break on the smaller type id for determinism.
fn demote_tightest(system: &System, spec: &SharingSpec) -> Option<(SharingSpec, String)> {
    let tightest = spec.global_types(system).into_iter().max_by_key(|&k| {
        (
            spec.period(k).expect("global types have periods"),
            std::cmp::Reverse(k.index()),
        )
    })?;
    let mut demoted = spec.clone();
    demoted.set_local(tightest);
    Some((demoted, system.library().get(tightest).name().to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_fds::RunBudget;
    use tcms_ir::generators::paper_system;

    fn infeasible_spec(sys: &System, t: &tcms_ir::generators::PaperTypes) -> SharingSpec {
        // lcm(7, 5) = 35 exceeds every process budget (max 30/15).
        let mut spec = SharingSpec::all_global(sys, 5);
        spec.set_period(t.add, 7);
        spec
    }

    #[test]
    fn feasible_spec_stays_on_direct_rung_bit_identical() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let plain = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let ladder =
            schedule_with_degradation(&sys, &spec, &FdsConfig::default(), &LadderConfig::default())
                .unwrap();
        assert_eq!(ladder.rung, Rung::Direct);
        assert_eq!(ladder.schedule, plain.schedule, "bit-identical");
        assert_eq!(ladder.iterations, plain.iterations);
        assert!(ladder.system.is_none());
        assert_eq!(ladder.attempts.len(), 1);
        assert!(ladder.attempts[0].error.is_none());
        assert!(ladder.summary().contains("no degradation"));
    }

    #[test]
    fn infeasible_spec_recovers_by_relaxing_periods() {
        let (sys, t) = paper_system().unwrap();
        let spec = infeasible_spec(&sys, &t);
        // The plain run refuses.
        assert!(matches!(
            ModuloScheduler::new(&sys, spec.clone()).unwrap().run(),
            Err(ScheduleError::Infeasible { .. })
        ));
        // The ladder relaxes 5 -> 7 (harmonic ceiling), spacing drops to
        // 7 <= 15, and the schedule passes re-verification.
        let out =
            schedule_with_degradation(&sys, &spec, &FdsConfig::default(), &LadderConfig::default())
                .unwrap();
        assert_eq!(out.rung, Rung::RelaxPeriods);
        assert_eq!(out.spec.period(t.add), Some(7));
        assert_eq!(out.spec.period(t.mul), Some(7));
        assert_eq!(out.attempts.len(), 2);
        assert!(matches!(
            out.attempts[0].error,
            Some(ScheduleError::Infeasible { .. })
        ));
        assert!(out.summary().contains("relax-periods"), "{}", out.summary());
    }

    #[test]
    fn relaxation_blocked_falls_through_to_demotion() {
        let (sys, t) = paper_system().unwrap();
        // Period 16 on the adder exceeds the diffeq budget of 15, so the
        // harmonic ceiling (16) is intolerable and rung 1 is skipped; the
        // ladder demotes the adder group (the largest period) instead.
        let mut spec = SharingSpec::all_global(&sys, 5);
        spec.set_period(t.add, 16);
        let out =
            schedule_with_degradation(&sys, &spec, &FdsConfig::default(), &LadderConfig::default())
                .unwrap();
        assert_eq!(out.rung, Rung::DemoteGroup);
        assert!(!out.spec.is_global(t.add), "adder demoted");
        assert!(out.spec.is_global(t.mul), "multiplier still shared");
        // Attempt trail: direct failure, then the successful demotion
        // (no relax-periods attempt was possible).
        assert_eq!(out.attempts.len(), 2);
        assert_eq!(out.attempts[1].rung, Rung::DemoteGroup);
    }

    #[test]
    fn budget_trip_lands_on_rc_fallback() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        // One iteration is never enough for the paper system, whatever
        // the spec — every coupled rung trips, only rc survives.
        let config = FdsConfig {
            budget: RunBudget {
                max_iterations: Some(1),
                ..RunBudget::default()
            },
            ..FdsConfig::default()
        };
        let out =
            schedule_with_degradation(&sys, &spec, &config, &LadderConfig::default()).unwrap();
        assert_eq!(out.rung, Rung::RcFallback);
        assert_eq!(out.iterations, 0);
        assert!(out.spec.global_types(&sys).is_empty(), "all-local fallback");
        assert!(out
            .attempts
            .iter()
            .take(out.attempts.len() - 1)
            .all(|a| matches!(a.error, Some(ScheduleError::BudgetExhausted(_)))));
    }

    #[test]
    fn ladder_emits_timeline_events() {
        let (sys, t) = paper_system().unwrap();
        let spec = infeasible_spec(&sys, &t);
        let rec = tcms_obs::TraceRecorder::new();
        schedule_with_degradation_recorded(
            &sys,
            &spec,
            &FdsConfig::default(),
            &LadderConfig::default(),
            &rec,
        )
        .unwrap();
        let data = rec.finish();
        let rung_events = data
            .events
            .iter()
            .filter(|e| {
                matches!(&e.kind, tcms_obs::TraceEventKind::Instant { name, .. } if *name == "degrade.rung")
            })
            .count();
        assert_eq!(rung_events, 2, "one event per attempt");
    }

    #[test]
    fn widen_time_rung_returns_owned_system() {
        let (sys, _) = paper_system().unwrap();
        // Uniform ρ = 16: already harmonic, so the relax rung is a no-op,
        // and the spacing 16 exceeds the diffeq budget of 15. With
        // demotions capped at zero, only time widening can rescue the
        // spec: 5/4 scaling lifts the budget to ceil(15·5/4) = 19 ≥ 16.
        let spec = SharingSpec::all_global(&sys, 16);
        let ladder = LadderConfig {
            max_demotions: 0,
            ..LadderConfig::default()
        };
        let out = schedule_with_degradation(&sys, &spec, &FdsConfig::default(), &ladder).unwrap();
        assert_eq!(out.rung, Rung::WidenTime);
        assert_eq!(out.spec, spec, "sharing specification preserved");
        let widened = out.system.as_ref().expect("widened system is returned");
        let p4 = widened.process_by_name("P4").unwrap();
        assert!(spacing_budget(widened, p4) >= 16);
        out.schedule.verify(widened).unwrap();
    }
}
