//! The layered spring field of the modified force model.
//!
//! For every global resource type `k` with period ρ the field maintains
//! three layers, recomputed incrementally as time frames shrink:
//!
//! 1. per block: the classical distribution `D_{b,k}(t)` (equation 4) and
//!    its modulo-maximum `D̂_{b,k}(τ)` (equation 7),
//! 2. per process: `M_{p,k}(τ) = max_b D̂_{b,k}(τ)` — blocks of one process
//!    never overlap (condition C2), so they behave like alternation
//!    branches (equation 9),
//! 3. per group: `G_k(τ) = Σ_{p∈group} M_{p,k}(τ)` — the balanced global
//!    requirement whose peak is the shared instance count.
//!
//! Each layer is one contiguous `f64` arena (see DESIGN.md §10): a
//! per-key offset table maps `(block, type)`, `(process, type)` or `type`
//! to a period-length slice, with `u32::MAX` marking keys that are not
//! globally shared. The fold kernels of [`crate::kernel`] stream over
//! those slices without allocating.

use tcms_fds::dist::DistributionSet;
use tcms_ir::{BlockId, FrameTable, ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::kernel;

/// Offset sentinel for keys without a profile (not globally shared).
const ABSENT: u32 = u32::MAX;

/// One arena layer: a flat `f64` store plus a per-key offset table.
/// Every present profile of one layer has the period of its type as
/// length, so `(offset, period)` fully locates a slice.
#[derive(Debug, Clone)]
struct Layer {
    off: Vec<u32>,
    data: Vec<f64>,
}

impl Layer {
    fn new(keys: usize) -> Self {
        Layer {
            off: vec![ABSENT; keys],
            data: Vec::new(),
        }
    }

    /// Appends a zeroed profile of `len` slots for `key`.
    fn insert(&mut self, key: usize, len: usize) {
        debug_assert_eq!(self.off[key], ABSENT, "profile inserted twice");
        self.off[key] = self.data.len() as u32;
        self.data.resize(self.data.len() + len, 0.0);
    }

    fn try_slice(&self, key: usize, len: usize) -> Option<&[f64]> {
        let o = self.off[key];
        (o != ABSENT).then(|| &self.data[o as usize..o as usize + len])
    }

    fn slice_mut(&mut self, key: usize, len: usize) -> &mut [f64] {
        let o = self.off[key] as usize;
        &mut self.data[o..o + len]
    }
}

/// Frozen foreign usage of global resource types, expressed as one
/// period-length profile per type: slot `τ` holds the (integer-valued, but
/// stored as `f64`) number of instances of type `k` that processes *outside*
/// this field's system occupy in slot `τ` of every period.
///
/// Partitioned scheduling (`tcms-core`'s `partition` module) freezes the
/// merged grant profiles of all other partitions into this shape, so a
/// partition's force model prices displacement against cross-partition usage
/// exactly like usage of its own group members: the baseline seeds the group
/// fold `G_k` and therefore raises [`ModuloField::group_peak`] wherever
/// foreign processes are already busy.
///
/// An empty occupancy (no profiles set) reproduces the monolithic field
/// bit-for-bit — the group fold then starts from zero exactly as before.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExternalOccupancy {
    /// `profiles[k]`: baseline for resource type of index `k`, length ρ_k.
    profiles: Vec<Option<Vec<f64>>>,
}

impl ExternalOccupancy {
    /// An occupancy with no external usage for any of `num_types` types.
    pub fn empty(num_types: usize) -> Self {
        ExternalOccupancy {
            profiles: vec![None; num_types],
        }
    }

    /// Sets the baseline profile (length = the type's period ρ) for `rtype`.
    pub fn set(&mut self, rtype: ResourceTypeId, profile: Vec<f64>) {
        if self.profiles.len() <= rtype.index() {
            self.profiles.resize(rtype.index() + 1, None);
        }
        self.profiles[rtype.index()] = Some(profile);
    }

    /// The baseline profile for `rtype`, if one was set.
    pub fn get(&self, rtype: ResourceTypeId) -> Option<&[f64]> {
        self.profiles.get(rtype.index()).and_then(|p| p.as_deref())
    }

    /// `true` if no type carries a (non-zero) baseline.
    pub fn is_empty(&self) -> bool {
        self.profiles
            .iter()
            .all(|p| p.as_ref().is_none_or(|v| v.iter().all(|&x| x == 0.0)))
    }
}

/// Incrementally maintained distributions for the modified force model.
#[derive(Debug, Clone)]
pub struct ModuloField<'a> {
    system: &'a System,
    spec: SharingSpec,
    /// Frozen cross-partition baselines seeding the group fold.
    external: ExternalOccupancy,
    dist: DistributionSet,
    /// `periods[k]`: ρ of a globally shared type, 0 for local types
    /// (cached off the spec — the hot paths must not chase spec lookups).
    periods: Vec<u32>,
    /// Modulo-max profiles `D̂`, keyed by `block * num_types + type`.
    dhat: Layer,
    /// Balanced process profiles `M_p`, keyed by `process * num_types + type`.
    mproc: Layer,
    /// Group profiles `G_k`, keyed by `type`.
    gdist: Layer,
    /// Reused per-slot mask scratch for [`ModuloField::apply_delta`]
    /// (bits: 1 = delta touches slot, 2 = `D̂` moved, 4 = `M_p` moved).
    mask: Vec<u8>,
}

impl<'a> ModuloField<'a> {
    /// Builds the field from the initial time frames.
    pub fn new(system: &'a System, spec: SharingSpec, frames: &FrameTable) -> Self {
        let external = ExternalOccupancy::empty(system.library().len());
        Self::with_external(system, spec, frames, external)
    }

    /// Builds the field with frozen external baselines seeding the group
    /// fold (see [`ExternalOccupancy`]). With an empty occupancy this is
    /// exactly [`ModuloField::new`].
    ///
    /// # Panics
    ///
    /// Panics if a baseline profile exists for a global type but its length
    /// is not the type's period.
    pub fn with_external(
        system: &'a System,
        spec: SharingSpec,
        frames: &FrameTable,
        external: ExternalOccupancy,
    ) -> Self {
        let num_types = system.library().len();
        let dist = DistributionSet::build(system, frames);
        let mut periods = vec![0u32; num_types];
        let mut dhat = Layer::new(system.num_blocks() * num_types);
        let mut mproc = Layer::new(system.num_processes() * num_types);
        let mut gdist = Layer::new(num_types);
        for k in system.library().ids() {
            let Some(rho) = spec.period(k).filter(|_| spec.is_global(k)) else {
                continue;
            };
            let rho = rho as usize;
            if let Some(base) = external.get(k) {
                assert_eq!(base.len(), rho, "external baseline must cover one period");
            }
            periods[k.index()] = rho as u32;
            for &p in spec.group(k).expect("global") {
                for &b in system.process(p).blocks() {
                    dhat.insert(b.index() * num_types + k.index(), rho);
                }
                mproc.insert(p.index() * num_types + k.index(), rho);
            }
            gdist.insert(k.index(), rho);
        }
        let mut field = ModuloField {
            system,
            spec,
            external,
            dist,
            periods,
            dhat,
            mproc,
            gdist,
            mask: Vec::new(),
        };
        for k in system.library().ids() {
            if !field.spec.is_global(k) {
                continue;
            }
            let group: Vec<ProcessId> = field.spec.group(k).expect("global").to_vec();
            for &p in &group {
                for &b in system.process(p).blocks() {
                    field.fold_block(b, k);
                }
                field.fold_process(p, k);
            }
            field.fold_group(k);
        }
        field
    }

    /// The sharing specification driving this field.
    pub fn spec(&self) -> &SharingSpec {
        &self.spec
    }

    /// The frozen external baselines seeding the group fold.
    pub fn external(&self) -> &ExternalOccupancy {
        &self.external
    }

    /// The classical per-block distributions.
    pub fn distributions(&self) -> &DistributionSet {
        &self.dist
    }

    /// Number of period slots of a globally shared type (its ρ), or 0 for
    /// a local type. Callers sizing scratch buffers use this instead of a
    /// spec lookup.
    pub fn slot_count(&self, rtype: ResourceTypeId) -> usize {
        self.periods[rtype.index()] as usize
    }

    #[inline]
    fn dhat_key(&self, block: BlockId, rtype: ResourceTypeId) -> usize {
        block.index() * self.periods.len() + rtype.index()
    }

    #[inline]
    fn mproc_key(&self, process: ProcessId, rtype: ResourceTypeId) -> usize {
        process.index() * self.periods.len() + rtype.index()
    }

    /// Modulo-max profile of a globally shared `(block, type)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not globally shared.
    pub fn block_profile(&self, block: BlockId, rtype: ResourceTypeId) -> &[f64] {
        self.dhat
            .try_slice(self.dhat_key(block, rtype), self.slot_count(rtype))
            .expect("pair is not globally shared")
    }

    /// Balanced per-process profile `M_{p,k}`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not in the group of `rtype`.
    pub fn process_profile(&self, process: ProcessId, rtype: ResourceTypeId) -> &[f64] {
        self.mproc
            .try_slice(self.mproc_key(process, rtype), self.slot_count(rtype))
            .expect("process is not in the sharing group")
    }

    /// Group profile `G_k` of a global type.
    ///
    /// # Panics
    ///
    /// Panics if `rtype` is local.
    pub fn group_profile(&self, rtype: ResourceTypeId) -> &[f64] {
        self.gdist
            .try_slice(rtype.index(), self.slot_count(rtype))
            .expect("type is not globally shared")
    }

    /// Expected shared instance count: the peak of `G_k`.
    pub fn group_peak(&self, rtype: ResourceTypeId) -> f64 {
        self.group_profile(rtype)
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Refolds `D̂_{b,k}` from the block's distribution.
    fn fold_block(&mut self, block: BlockId, rtype: ResourceTypeId) {
        let rho = self.slot_count(rtype);
        let key = self.dhat_key(block, rtype);
        let d = self.dist.get(block, rtype);
        kernel::modulo_max_into(d, self.dhat.slice_mut(key, rho));
    }

    /// Refolds `M_{p,k}` from the process's `D̂` profiles (zero-seeded
    /// slot max in block order).
    fn fold_process(&mut self, process: ProcessId, rtype: ResourceTypeId) {
        let rho = self.slot_count(rtype);
        let key = self.mproc_key(process, rtype);
        let acc = self.mproc.slice_mut(key, rho);
        acc.fill(0.0);
        for &b in self.system.process(process).blocks() {
            let dkey = b.index() * self.periods.len() + rtype.index();
            let dh = self
                .dhat
                .try_slice(dkey, rho)
                .expect("group blocks carry D-hat profiles");
            kernel::slot_max_into(acc, dh);
        }
    }

    /// Refolds `G_k` from the group's `M_p` profiles (sum in group order),
    /// seeded with the frozen external baseline when one is set.
    fn fold_group(&mut self, rtype: ResourceTypeId) {
        let rho = self.slot_count(rtype);
        let acc = self.gdist.slice_mut(rtype.index(), rho);
        match self.external.get(rtype) {
            Some(base) => acc.copy_from_slice(base),
            None => acc.fill(0.0),
        }
        for &p in self.spec.group(rtype).expect("global") {
            let mkey = p.index() * self.periods.len() + rtype.index();
            let m = self
                .mproc
                .try_slice(mkey, rho)
                .expect("group processes carry M profiles");
            kernel::add_into(acc, m);
        }
    }

    /// Zero-seeded slot max of the `D̂` profiles of every *other* block of
    /// `block`'s process — the part of `M_p` that does not depend on
    /// `block`. Batched candidate evaluation computes this once per
    /// `(block, type)` and shares it across all candidates.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not globally shared or `out` is not
    /// period-sized.
    pub fn sibling_profile_into(&self, block: BlockId, rtype: ResourceTypeId, out: &mut [f64]) {
        let rho = self.slot_count(rtype);
        assert_eq!(out.len(), rho, "scratch must cover one period");
        out.fill(0.0);
        let process = self.system.block(block).process();
        for &b in self.system.process(process).blocks() {
            if b != block {
                kernel::slot_max_into(out, self.block_profile(b, rtype));
            }
        }
    }

    /// Effect of adding `delta` (indexed by block-local time) to the
    /// distribution of a globally shared `(block, type)`: the change of the
    /// group profile `ΔG_k(τ)`, without mutating the field.
    ///
    /// Allocation-free core of [`ModuloField::tentative_group_delta`]:
    /// `siblings` must be the profile from
    /// [`ModuloField::sibling_profile_into`] for the same pair, and `out`
    /// receives `ΔG`. The result is bit-identical to folding a
    /// materialized `D + delta` copy the way the seed did: the fused
    /// kernel folds the same values in the same slot order, and regrouping
    /// the zero-seeded slot max over `{D̂_new} ∪ siblings` cannot change a
    /// maximum of non-negative, non-NaN values.
    pub fn tentative_group_delta_into(
        &self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
        siblings: &[f64],
        out: &mut [f64],
    ) {
        let rho = self.slot_count(rtype);
        assert_eq!(out.len(), rho, "out must cover one period");
        kernel::modulo_max_delta_into(self.dist.get(block, rtype), delta, out);
        kernel::slot_max_into(out, siblings);
        let process = self.system.block(block).process();
        kernel::sub_into(out, self.process_profile(process, rtype));
    }

    /// Allocating convenience wrapper around
    /// [`ModuloField::sibling_profile_into`] +
    /// [`ModuloField::tentative_group_delta_into`].
    pub fn tentative_group_delta(
        &self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
    ) -> Vec<f64> {
        let rho = self.slot_count(rtype);
        let mut siblings = vec![0.0; rho];
        self.sibling_profile_into(block, rtype, &mut siblings);
        let mut out = vec![0.0; rho];
        self.tentative_group_delta_into(block, rtype, delta, &siblings, &mut out);
        out
    }

    /// The seed's tentative evaluation, kept verbatim (jagged-era
    /// allocations and branchy folds) as the oracle and the per-force
    /// baseline of the `repro_force_kernel` bench.
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn tentative_group_delta_legacy(
        &self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
    ) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods");
        let process = self.system.block(block).process();
        let mut dnew = self.dist.get(block, rtype).to_vec();
        for (t, &x) in delta.iter().enumerate() {
            dnew[t] += x;
        }
        let dhat_new = kernel::modulo_max_legacy(&dnew, period);
        // Rebuild the process max with the tentative block profile.
        let mut mnew = dhat_new;
        for &b in self.system.process(process).blocks() {
            if b != block {
                mnew = kernel::slot_max_legacy(&mnew, self.block_profile(b, rtype));
            }
        }
        let mold = self.process_profile(process, rtype);
        mnew.iter().zip(mold).map(|(&n, &o)| n - o).collect()
    }

    /// Commits `delta` to the distribution of `(block, type)` and refreshes
    /// the dependent layers (for any type; global layers only when shared).
    ///
    /// The refresh is a *dirty-region* update: only the period slots that
    /// `delta` maps onto are refolded, and a layer is touched only when the
    /// layer below it actually changed (bitwise), so a commit hidden under
    /// the slot maximum — the paper's modulo-hiding effect — stops right at
    /// the `D̂` layer, and a delta that cancels to nothing (implied frame
    /// changes can sum to a net zero) stops at the distribution itself.
    /// Each refolded slot replays the corresponding from-scratch fold
    /// ([`crate::modulo::modulo_max`], [`crate::modulo::slot_max`], group
    /// sum) in the same order, so the maintained profiles stay
    /// bit-identical to a full rebuild.
    ///
    /// The returned [`DeltaEffect`] reports how far the change propagated;
    /// evaluator caches use it to decide which context stamps to advance.
    pub fn apply_delta(
        &mut self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
    ) -> DeltaEffect {
        // Precise dirtying: write through the scoped API, bumping the
        // pair's version only when some entry actually changed bitwise.
        // (`d + 0.0 == d` bitwise — distributions never hold `-0.0` — so
        // every changed entry sits under a non-zero delta entry.)
        let dist_changed = self.dist.write_scoped(block, rtype, |d| {
            let mut changed = false;
            for (t, &x) in delta.iter().enumerate() {
                let new = d[t] + x;
                changed |= d[t].to_bits() != new.to_bits();
                d[t] = new;
            }
            (changed, changed)
        });
        let mut effect = DeltaEffect {
            dist_changed,
            ..DeltaEffect::default()
        };
        let process = self.system.block(block).process();
        if !self.spec.is_global_for(rtype, process) {
            return effect;
        }
        effect.global = true;
        if !effect.dist_changed {
            // The folds are pure functions of the distribution: an
            // absorbed or cancelled delta cannot move any layer.
            return effect;
        }
        let period = self.slot_count(rtype);
        let nt = self.periods.len();
        const DELTA_DIRTY: u8 = 1;
        const DHAT_DIRTY: u8 = 2;
        const MPROC_DIRTY: u8 = 4;
        // Period slots the delta maps onto (dirty region of D̂), collected
        // into the reused mask scratch.
        self.mask.clear();
        self.mask.resize(period, 0);
        for (t, &x) in delta.iter().enumerate() {
            if x != 0.0 {
                self.mask[t % period] |= DELTA_DIRTY;
            }
        }
        let d = self.dist.get(block, rtype);
        let dhat = self
            .dhat
            .slice_mut(block.index() * nt + rtype.index(), period);
        for (slot, m) in self.mask.iter_mut().enumerate() {
            if *m & DELTA_DIRTY == 0 {
                continue;
            }
            // Per-slot replay of `modulo_max`: ascending t, strictly
            // greater wins — bitwise identical to the full fold.
            let mut v = 0.0;
            let mut t = slot;
            while t < d.len() {
                if d[t] > v {
                    v = d[t];
                }
                t += period;
            }
            if dhat[slot].to_bits() != v.to_bits() {
                dhat[slot] = v;
                *m |= DHAT_DIRTY;
                effect.dhat_changed = true;
            }
        }
        if !effect.dhat_changed {
            return effect;
        }
        let mproc = self
            .mproc
            .slice_mut(process.index() * nt + rtype.index(), period);
        let blocks = self.system.process(process).blocks();
        for (slot, m) in self.mask.iter_mut().enumerate() {
            if *m & DHAT_DIRTY == 0 {
                continue;
            }
            // Per-slot replay of `fold_process` (zero-seeded `slot_max`
            // over the process's blocks, in block order).
            let mut v = 0.0f64;
            for &b in blocks {
                let off = self.dhat.off[b.index() * nt + rtype.index()] as usize;
                v = v.max(self.dhat.data[off + slot]);
            }
            if mproc[slot].to_bits() != v.to_bits() {
                mproc[slot] = v;
                *m |= MPROC_DIRTY;
                effect.mproc_changed = true;
            }
        }
        if !effect.mproc_changed {
            return effect;
        }
        let gdist = self.gdist.slice_mut(rtype.index(), period);
        for (slot, m) in self.mask.iter().enumerate() {
            if *m & MPROC_DIRTY == 0 {
                continue;
            }
            // Per-slot replay of `fold_group` (baseline-seeded sum in
            // group order).
            let mut v = self.external.get(rtype).map_or(0.0f64, |base| base[slot]);
            for &p in self.spec.group(rtype).expect("global") {
                let off = self.mproc.off[p.index() * nt + rtype.index()] as usize;
                v += self.mproc.data[off + slot];
            }
            if gdist[slot].to_bits() != v.to_bits() {
                gdist[slot] = v;
                effect.gdist_changed = true;
            }
        }
        effect
    }
}

/// How far a committed delta propagated through the field's layers; the
/// flags are cumulative upper layers of a strictly narrowing chain
/// (`gdist_changed` implies `mproc_changed` implies `dhat_changed`
/// implies `dist_changed`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaEffect {
    /// Some entry of the block's distribution `D` actually changed
    /// (bitwise). A delta that cancels to a net zero leaves this false —
    /// and then no downstream cache needs invalidating at all.
    pub dist_changed: bool,
    /// The pair is globally shared for its process (the layered profiles
    /// exist and were examined).
    pub global: bool,
    /// The block's modulo-max profile `D̂` moved in some slot.
    pub dhat_changed: bool,
    /// The process profile `M_p` moved in some slot.
    pub mproc_changed: bool,
    /// The group profile `G` moved in some slot — only then do forces of
    /// other processes in the sharing group change.
    pub gdist_changed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;
    use tcms_ir::FrameTable;

    #[test]
    fn group_profile_sums_process_profiles() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec.clone(), &frames);
        let g = field.group_profile(t.mul).to_vec();
        let mut manual = vec![0.0; 5];
        for &p in spec.group(t.mul).unwrap() {
            for (slot, v) in field.process_profile(p, t.mul).iter().enumerate() {
                manual[slot] += v;
            }
        }
        for (a, b) in g.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(field.group_peak(t.mul) > 0.0);
    }

    #[test]
    fn tentative_delta_matches_apply() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let mut delta = vec![0.0; len];
        delta[0] = 0.4;
        delta[7] = -0.2;

        let predicted = field.tentative_group_delta(block, t.add, &delta);
        let before = field.group_profile(t.add).to_vec();
        field.apply_delta(block, t.add, &delta);
        let after = field.group_profile(t.add).to_vec();
        for slot in 0..5 {
            assert!(
                (after[slot] - before[slot] - predicted[slot]).abs() < 1e-12,
                "slot {slot}"
            );
        }
    }

    #[test]
    fn tentative_delta_matches_legacy_bitwise() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        for block in sys.block_ids() {
            let len = sys.block(block).time_range() as usize;
            let mut delta = vec![0.0; len];
            delta[0] = 0.4;
            delta[len - 1] = -0.125;
            for k in [t.add, t.mul] {
                let fast = field.tentative_group_delta(block, k, &delta);
                let legacy = field.tentative_group_delta_legacy(block, k, &delta);
                assert_eq!(
                    fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    legacy.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "block {block:?} type {k:?}"
                );
            }
        }
    }

    #[test]
    fn local_type_delta_only_touches_distribution() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.mul, sys.users_of_type(t.mul), 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let delta = vec![0.1; len];
        let before = field.distributions().get(block, t.add)[0];
        field.apply_delta(block, t.add, &delta);
        let after = field.distributions().get(block, t.add)[0];
        assert!((after - before - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not globally shared")]
    fn group_profile_of_local_type_panics() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        let _ = field.group_profile(t.add);
    }

    #[test]
    fn incremental_apply_matches_full_rebuild_bitwise() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let mut frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec.clone(), &frames);
        // Commit a sequence of op fixings through apply_delta and compare
        // every layer against a from-scratch rebuild after each step.
        for block in sys.block_ids().take(3) {
            let op = sys.block(block).ops()[0];
            let fr = frames.get(op);
            let nf = tcms_ir::TimeFrame::new(fr.asap, fr.asap);
            let len = sys.block(block).time_range() as usize;
            let mut delta = vec![0.0; len];
            tcms_fds::prob::accumulate(&mut delta, nf, sys.occupancy(op), 1.0);
            tcms_fds::prob::accumulate(&mut delta, fr, sys.occupancy(op), -1.0);
            let k = sys.op(op).resource_type();
            field.apply_delta(block, k, &delta);
            frames.set(op, nf);
            let p = sys.block(block).process();
            // The folded layers must equal a from-scratch refold of the
            // *current incremental* distribution bitwise: that is the
            // invariant force caching relies on. (The distribution itself
            // may drift from a full rebuild by summation-order ULPs, which
            // the tolerance-based rebuild test below covers.)
            assert_eq!(
                field.block_profile(block, k),
                crate::modulo::modulo_max(field.distributions().get(block, k), 5),
                "dhat must be an exact fold of the maintained distribution"
            );
            let mut mref = vec![0.0; 5];
            for &b in sys.process(p).blocks() {
                mref = crate::modulo::slot_max(&mref, field.block_profile(b, k));
            }
            assert_eq!(
                field.process_profile(p, k),
                mref,
                "mproc must be an exact fold of the maintained dhat layer"
            );
            let mut gref = vec![0.0; 5];
            for &q in field.spec().group(k).unwrap() {
                for (slot, v) in field.process_profile(q, k).iter().enumerate() {
                    gref[slot] += v;
                }
            }
            assert_eq!(
                field.group_profile(k),
                gref,
                "gdist must be an exact fold of the maintained mproc layer"
            );
            // And every layer stays within fp tolerance of a full rebuild.
            let rebuilt = ModuloField::new(&sys, spec.clone(), &frames);
            for (a, b) in field.group_profile(k).iter().zip(rebuilt.group_profile(k)) {
                assert!((a - b).abs() < 1e-9, "gdist drifted from rebuild");
            }
        }
    }

    #[test]
    fn external_baseline_seeds_group_fold() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let plain = ModuloField::new(&sys, spec.clone(), &frames);
        let mut ext = ExternalOccupancy::empty(sys.library().len());
        ext.set(t.mul, vec![2.0, 0.0, 1.0, 0.0, 3.0]);
        let seeded = ModuloField::with_external(&sys, spec, &frames, ext);
        let base = [2.0, 0.0, 1.0, 0.0, 3.0];
        for (slot, &b) in base.iter().enumerate() {
            let expect = b + plain.group_profile(t.mul)[slot];
            let got = seeded.group_profile(t.mul)[slot];
            assert!((got - expect).abs() < 1e-12, "slot {slot}");
        }
        // Types without a baseline are untouched bit-for-bit.
        assert_eq!(plain.group_profile(t.add), seeded.group_profile(t.add));
        assert!(seeded.group_peak(t.mul) >= plain.group_peak(t.mul));
    }

    #[test]
    fn empty_external_is_bit_identical_to_new() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let plain = ModuloField::new(&sys, spec.clone(), &frames);
        let ext = ExternalOccupancy::empty(sys.library().len());
        assert!(ext.is_empty());
        let seeded = ModuloField::with_external(&sys, spec, &frames, ext);
        for k in [t.add, t.mul] {
            assert_eq!(
                plain
                    .group_profile(k)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                seeded
                    .group_profile(k)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn external_survives_apply_delta_replay() {
        // The dirty-region group replay must stay bit-identical to a full
        // baseline-seeded refold after a committed delta.
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let mut frames = FrameTable::initial(&sys);
        let mut ext = ExternalOccupancy::empty(sys.library().len());
        ext.set(t.add, vec![1.0, 2.0, 0.0, 1.0, 0.0]);
        let mut field = ModuloField::with_external(&sys, spec.clone(), &frames, ext.clone());
        let block = sys.block_ids().next().unwrap();
        let op = sys.block(block).ops()[0];
        let fr = frames.get(op);
        let nf = tcms_ir::TimeFrame::new(fr.asap, fr.asap);
        let len = sys.block(block).time_range() as usize;
        let mut delta = vec![0.0; len];
        tcms_fds::prob::accumulate(&mut delta, nf, sys.occupancy(op), 1.0);
        tcms_fds::prob::accumulate(&mut delta, fr, sys.occupancy(op), -1.0);
        field.apply_delta(block, sys.op(op).resource_type(), &delta);
        frames.set(op, nf);
        let rebuilt = ModuloField::with_external(&sys, spec, &frames, ext);
        for k in [t.add, t.mul] {
            for (a, b) in field.group_profile(k).iter().zip(rebuilt.group_profile(k)) {
                assert!((a - b).abs() < 1e-9, "replay drifted from seeded refold");
            }
        }
    }

    #[test]
    fn hidden_delta_stops_at_dhat_layer() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let d = field.distributions().get(block, t.add);
        // Find a time strictly below its slot maximum and raise it halfway:
        // the group profile must not move and the effect must say so.
        let dhat = field.block_profile(block, t.add).to_vec();
        let mut pick = None;
        for (time, &v) in d.iter().enumerate() {
            if v < dhat[time % 5] - 0.05 {
                pick = Some((time, dhat[time % 5] - v));
                break;
            }
        }
        let Some((time, headroom)) = pick else { return };
        let mut delta = vec![0.0; d.len()];
        delta[time] = headroom / 2.0;
        let effect = field.apply_delta(block, t.add, &delta);
        assert!(effect.global && effect.dist_changed);
        assert!(
            !effect.gdist_changed,
            "hidden delta must not reach G: {effect:?}"
        );
    }

    #[test]
    fn cancelled_delta_leaves_version_untouched() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let before = field.distributions().version(block, t.add);
        // A delta of exact zeros writes nothing and must not dirty the
        // pair — the precise-dirtying fix this effect flag exists for.
        let effect = field.apply_delta(block, t.add, &vec![0.0; len]);
        assert!(!effect.dist_changed && effect.global);
        assert!(!effect.dhat_changed);
        assert_eq!(field.distributions().version(block, t.add), before);
        // A real delta still dirties it.
        let mut delta = vec![0.0; len];
        delta[0] = 0.25;
        let effect = field.apply_delta(block, t.add, &delta);
        assert!(effect.dist_changed);
        assert!(field.distributions().version(block, t.add) > before);
    }

    #[test]
    fn visible_delta_propagates_to_group() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        // A large increase everywhere definitely raises the slot maxima.
        let delta = vec![10.0; len];
        let effect = field.apply_delta(block, t.add, &delta);
        assert!(effect.global && effect.dist_changed && effect.dhat_changed);
        assert!(effect.mproc_changed && effect.gdist_changed);
    }

    #[test]
    fn modulo_hiding_effect() {
        // A delta placed under the slot maximum must not change the group
        // profile (the "hiding" of Figure 2).
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let d = field.distributions().get(block, t.add);
        // Find two times mapping to the same slot with different values.
        let mut pick = None;
        'outer: for t1 in 0..d.len() {
            for t2 in (t1 + 5..d.len()).step_by(5) {
                if d[t1] < d[t2] - 0.05 {
                    pick = Some((t1, t2));
                    break 'outer;
                }
            }
        }
        if let Some((t_low, t_high)) = pick {
            let headroom = d[t_high] - d[t_low];
            let mut delta = vec![0.0; d.len()];
            delta[t_low] = headroom / 2.0; // stays below the slot max
            let g_delta = field.tentative_group_delta(block, t.add, &delta);
            assert!(
                g_delta.iter().all(|&x| x.abs() < 1e-12),
                "hidden increase must not move the profile: {g_delta:?}"
            );
        }
    }
}
