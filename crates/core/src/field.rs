//! The layered spring field of the modified force model.
//!
//! For every global resource type `k` with period ρ the field maintains
//! three layers, recomputed incrementally as time frames shrink:
//!
//! 1. per block: the classical distribution `D_{b,k}(t)` (equation 4) and
//!    its modulo-maximum `D̂_{b,k}(τ)` (equation 7),
//! 2. per process: `M_{p,k}(τ) = max_b D̂_{b,k}(τ)` — blocks of one process
//!    never overlap (condition C2), so they behave like alternation
//!    branches (equation 9),
//! 3. per group: `G_k(τ) = Σ_{p∈group} M_{p,k}(τ)` — the balanced global
//!    requirement whose peak is the shared instance count.

use tcms_fds::dist::DistributionSet;
use tcms_ir::{BlockId, FrameTable, ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::modulo::{modulo_max, slot_max};

/// Incrementally maintained distributions for the modified force model.
#[derive(Debug, Clone)]
pub struct ModuloField<'a> {
    system: &'a System,
    spec: SharingSpec,
    dist: DistributionSet,
    /// `dhat[block][type]`: modulo-max profile; empty when the pair is not
    /// globally shared.
    dhat: Vec<Vec<Vec<f64>>>,
    /// `mproc[process][type]`: per-process balanced profile; empty when not
    /// applicable.
    mproc: Vec<Vec<Vec<f64>>>,
    /// `gdist[type]`: group-summed profile; empty for local types.
    gdist: Vec<Vec<f64>>,
}

impl<'a> ModuloField<'a> {
    /// Builds the field from the initial time frames.
    pub fn new(system: &'a System, spec: SharingSpec, frames: &FrameTable) -> Self {
        let num_types = system.library().len();
        let dist = DistributionSet::build(system, frames);
        let mut field = ModuloField {
            system,
            spec,
            dist,
            dhat: vec![vec![Vec::new(); num_types]; system.num_blocks()],
            mproc: vec![vec![Vec::new(); num_types]; system.num_processes()],
            gdist: vec![Vec::new(); num_types],
        };
        for k in system.library().ids() {
            if !field.spec.is_global(k) {
                continue;
            }
            let group: Vec<ProcessId> = field.spec.group(k).expect("global").to_vec();
            for &p in &group {
                for &b in system.process(p).blocks() {
                    field.dhat[b.index()][k.index()] = field.fold_block(b, k);
                }
                field.mproc[p.index()][k.index()] = field.fold_process(p, k);
            }
            field.gdist[k.index()] = field.fold_group(k);
        }
        field
    }

    /// The sharing specification driving this field.
    pub fn spec(&self) -> &SharingSpec {
        &self.spec
    }

    /// The classical per-block distributions.
    pub fn distributions(&self) -> &DistributionSet {
        &self.dist
    }

    /// Modulo-max profile of a globally shared `(block, type)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not globally shared.
    pub fn block_profile(&self, block: BlockId, rtype: ResourceTypeId) -> &[f64] {
        let v = &self.dhat[block.index()][rtype.index()];
        assert!(!v.is_empty(), "pair is not globally shared");
        v
    }

    /// Balanced per-process profile `M_{p,k}`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not in the group of `rtype`.
    pub fn process_profile(&self, process: ProcessId, rtype: ResourceTypeId) -> &[f64] {
        let v = &self.mproc[process.index()][rtype.index()];
        assert!(!v.is_empty(), "process is not in the sharing group");
        v
    }

    /// Group profile `G_k` of a global type.
    ///
    /// # Panics
    ///
    /// Panics if `rtype` is local.
    pub fn group_profile(&self, rtype: ResourceTypeId) -> &[f64] {
        let v = &self.gdist[rtype.index()];
        assert!(!v.is_empty(), "type is not globally shared");
        v
    }

    /// Expected shared instance count: the peak of `G_k`.
    pub fn group_peak(&self, rtype: ResourceTypeId) -> f64 {
        self.group_profile(rtype)
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    fn fold_block(&self, block: BlockId, rtype: ResourceTypeId) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods");
        modulo_max(self.dist.get(block, rtype), period)
    }

    fn fold_process(&self, process: ProcessId, rtype: ResourceTypeId) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods") as usize;
        let mut acc = vec![0.0; period];
        for &b in self.system.process(process).blocks() {
            acc = slot_max(&acc, &self.dhat[b.index()][rtype.index()]);
        }
        acc
    }

    fn fold_group(&self, rtype: ResourceTypeId) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods") as usize;
        let mut acc = vec![0.0; period];
        for &p in self.spec.group(rtype).expect("global") {
            for (slot, v) in self.mproc[p.index()][rtype.index()].iter().enumerate() {
                acc[slot] += v;
            }
        }
        debug_assert_eq!(acc.len(), period);
        acc
    }

    /// Effect of adding `delta` (indexed by block-local time) to the
    /// distribution of a globally shared `(block, type)`: the change of the
    /// group profile `ΔG_k(τ)`, without mutating the field.
    pub fn tentative_group_delta(
        &self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
    ) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods");
        let process = self.system.block(block).process();
        let mut dnew = self.dist.get(block, rtype).to_vec();
        for (t, &x) in delta.iter().enumerate() {
            dnew[t] += x;
        }
        let dhat_new = modulo_max(&dnew, period);
        // Rebuild the process max with the tentative block profile.
        let mut mnew = dhat_new;
        for &b in self.system.process(process).blocks() {
            if b != block {
                mnew = slot_max(&mnew, &self.dhat[b.index()][rtype.index()]);
            }
        }
        let mold = &self.mproc[process.index()][rtype.index()];
        mnew.iter().zip(mold).map(|(&n, &o)| n - o).collect()
    }

    /// Commits `delta` to the distribution of `(block, type)` and refreshes
    /// the dependent layers (for any type; global layers only when shared).
    ///
    /// The refresh is a *dirty-region* update: only the period slots that
    /// `delta` maps onto are refolded, and a layer is touched only when the
    /// layer below it actually changed (bitwise), so a commit hidden under
    /// the slot maximum — the paper's modulo-hiding effect — stops right at
    /// the `D̂` layer. Each refolded slot replays the corresponding
    /// from-scratch fold ([`modulo_max`], [`slot_max`], group sum) in the
    /// same order, so the maintained profiles stay bit-identical to a full
    /// rebuild.
    ///
    /// The returned [`DeltaEffect`] reports how far the change propagated;
    /// evaluator caches use it to decide which context stamps to advance.
    pub fn apply_delta(
        &mut self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
    ) -> DeltaEffect {
        {
            let d = self.dist.get_mut(block, rtype);
            for (t, &x) in delta.iter().enumerate() {
                d[t] += x;
            }
        }
        let mut effect = DeltaEffect::default();
        let process = self.system.block(block).process();
        if !self.spec.is_global_for(rtype, process) {
            return effect;
        }
        effect.global = true;
        let period = self.spec.period(rtype).expect("global types have periods") as usize;
        // Period slots the delta maps onto (dirty region of D̂).
        let mut dirty = vec![false; period];
        for (t, &x) in delta.iter().enumerate() {
            if x != 0.0 {
                dirty[t % period] = true;
            }
        }
        let d = self.dist.get(block, rtype).to_vec();
        let ki = rtype.index();
        let mut dhat_dirty = vec![false; period];
        for (slot, _) in dirty.iter().enumerate().filter(|&(_, &m)| m) {
            // Per-slot replay of `modulo_max`: ascending t, strictly
            // greater wins — bitwise identical to the full fold.
            let mut v = 0.0;
            let mut t = slot;
            while t < d.len() {
                if d[t] > v {
                    v = d[t];
                }
                t += period;
            }
            let cell = &mut self.dhat[block.index()][ki][slot];
            if cell.to_bits() != v.to_bits() {
                *cell = v;
                dhat_dirty[slot] = true;
                effect.dhat_changed = true;
            }
        }
        if !effect.dhat_changed {
            return effect;
        }
        let pi = process.index();
        let mut mproc_dirty = vec![false; period];
        for (slot, _) in dhat_dirty.iter().enumerate().filter(|&(_, &m)| m) {
            // Per-slot replay of `fold_process` (zero-seeded `slot_max`
            // over the process's blocks, in block order).
            let mut v = 0.0f64;
            for &b in self.system.process(process).blocks() {
                v = v.max(self.dhat[b.index()][ki][slot]);
            }
            let cell = &mut self.mproc[pi][ki][slot];
            if cell.to_bits() != v.to_bits() {
                *cell = v;
                mproc_dirty[slot] = true;
                effect.mproc_changed = true;
            }
        }
        if !effect.mproc_changed {
            return effect;
        }
        for (slot, _) in mproc_dirty.iter().enumerate().filter(|&(_, &m)| m) {
            // Per-slot replay of `fold_group` (sum in group order).
            let mut v = 0.0f64;
            for &p in self.spec.group(rtype).expect("global") {
                v += self.mproc[p.index()][ki][slot];
            }
            let cell = &mut self.gdist[ki][slot];
            if cell.to_bits() != v.to_bits() {
                *cell = v;
                effect.gdist_changed = true;
            }
        }
        effect
    }
}

/// How far a committed delta propagated through the field's layers; the
/// flags are cumulative upper layers of a strictly narrowing chain
/// (`gdist_changed` implies `mproc_changed` implies `dhat_changed`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaEffect {
    /// The pair is globally shared for its process (the layered profiles
    /// exist and were examined).
    pub global: bool,
    /// The block's modulo-max profile `D̂` moved in some slot.
    pub dhat_changed: bool,
    /// The process profile `M_p` moved in some slot.
    pub mproc_changed: bool,
    /// The group profile `G` moved in some slot — only then do forces of
    /// other processes in the sharing group change.
    pub gdist_changed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;
    use tcms_ir::FrameTable;

    #[test]
    fn group_profile_sums_process_profiles() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec.clone(), &frames);
        let g = field.group_profile(t.mul).to_vec();
        let mut manual = vec![0.0; 5];
        for &p in spec.group(t.mul).unwrap() {
            for (slot, v) in field.process_profile(p, t.mul).iter().enumerate() {
                manual[slot] += v;
            }
        }
        for (a, b) in g.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(field.group_peak(t.mul) > 0.0);
    }

    #[test]
    fn tentative_delta_matches_apply() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let mut delta = vec![0.0; len];
        delta[0] = 0.4;
        delta[7] = -0.2;

        let predicted = field.tentative_group_delta(block, t.add, &delta);
        let before = field.group_profile(t.add).to_vec();
        field.apply_delta(block, t.add, &delta);
        let after = field.group_profile(t.add).to_vec();
        for slot in 0..5 {
            assert!(
                (after[slot] - before[slot] - predicted[slot]).abs() < 1e-12,
                "slot {slot}"
            );
        }
    }

    #[test]
    fn local_type_delta_only_touches_distribution() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.mul, sys.users_of_type(t.mul), 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let delta = vec![0.1; len];
        let before = field.distributions().get(block, t.add)[0];
        field.apply_delta(block, t.add, &delta);
        let after = field.distributions().get(block, t.add)[0];
        assert!((after - before - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not globally shared")]
    fn group_profile_of_local_type_panics() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        let _ = field.group_profile(t.add);
    }

    #[test]
    fn incremental_apply_matches_full_rebuild_bitwise() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let mut frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec.clone(), &frames);
        // Commit a sequence of op fixings through apply_delta and compare
        // every layer against a from-scratch rebuild after each step.
        for block in sys.block_ids().take(3) {
            let op = sys.block(block).ops()[0];
            let fr = frames.get(op);
            let nf = tcms_ir::TimeFrame::new(fr.asap, fr.asap);
            let len = sys.block(block).time_range() as usize;
            let mut delta = vec![0.0; len];
            tcms_fds::prob::accumulate(&mut delta, nf, sys.occupancy(op), 1.0);
            tcms_fds::prob::accumulate(&mut delta, fr, sys.occupancy(op), -1.0);
            let k = sys.op(op).resource_type();
            field.apply_delta(block, k, &delta);
            frames.set(op, nf);
            let p = sys.block(block).process();
            // The folded layers must equal a from-scratch refold of the
            // *current incremental* distribution bitwise: that is the
            // invariant force caching relies on. (The distribution itself
            // may drift from a full rebuild by summation-order ULPs, which
            // the tolerance-based rebuild test below covers.)
            assert_eq!(
                field.block_profile(block, k),
                crate::modulo::modulo_max(field.distributions().get(block, k), 5),
                "dhat must be an exact fold of the maintained distribution"
            );
            let mut mref = vec![0.0; 5];
            for &b in sys.process(p).blocks() {
                mref = crate::modulo::slot_max(&mref, field.block_profile(b, k));
            }
            assert_eq!(
                field.process_profile(p, k),
                mref,
                "mproc must be an exact fold of the maintained dhat layer"
            );
            let mut gref = vec![0.0; 5];
            for &q in field.spec().group(k).unwrap() {
                for (slot, v) in field.process_profile(q, k).iter().enumerate() {
                    gref[slot] += v;
                }
            }
            assert_eq!(
                field.group_profile(k),
                gref,
                "gdist must be an exact fold of the maintained mproc layer"
            );
            // And every layer stays within fp tolerance of a full rebuild.
            let rebuilt = ModuloField::new(&sys, spec.clone(), &frames);
            for (a, b) in field.group_profile(k).iter().zip(rebuilt.group_profile(k)) {
                assert!((a - b).abs() < 1e-9, "gdist drifted from rebuild");
            }
        }
    }

    #[test]
    fn hidden_delta_stops_at_dhat_layer() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let d = field.distributions().get(block, t.add);
        // Find a time strictly below its slot maximum and raise it halfway:
        // the group profile must not move and the effect must say so.
        let dhat = field.block_profile(block, t.add).to_vec();
        let mut pick = None;
        for (time, &v) in d.iter().enumerate() {
            if v < dhat[time % 5] - 0.05 {
                pick = Some((time, dhat[time % 5] - v));
                break;
            }
        }
        let Some((time, headroom)) = pick else { return };
        let mut delta = vec![0.0; d.len()];
        delta[time] = headroom / 2.0;
        let effect = field.apply_delta(block, t.add, &delta);
        assert!(effect.global);
        assert!(
            !effect.gdist_changed,
            "hidden delta must not reach G: {effect:?}"
        );
    }

    #[test]
    fn visible_delta_propagates_to_group() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        // A large increase everywhere definitely raises the slot maxima.
        let delta = vec![10.0; len];
        let effect = field.apply_delta(block, t.add, &delta);
        assert!(effect.global && effect.dhat_changed);
        assert!(effect.mproc_changed && effect.gdist_changed);
    }

    #[test]
    fn modulo_hiding_effect() {
        // A delta placed under the slot maximum must not change the group
        // profile (the "hiding" of Figure 2).
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let d = field.distributions().get(block, t.add);
        // Find two times mapping to the same slot with different values.
        let mut pick = None;
        'outer: for t1 in 0..d.len() {
            for t2 in (t1 + 5..d.len()).step_by(5) {
                if d[t1] < d[t2] - 0.05 {
                    pick = Some((t1, t2));
                    break 'outer;
                }
            }
        }
        if let Some((t_low, t_high)) = pick {
            let headroom = d[t_high] - d[t_low];
            let mut delta = vec![0.0; d.len()];
            delta[t_low] = headroom / 2.0; // stays below the slot max
            let g_delta = field.tentative_group_delta(block, t.add, &delta);
            assert!(
                g_delta.iter().all(|&x| x.abs() < 1e-12),
                "hidden increase must not move the profile: {g_delta:?}"
            );
        }
    }
}
