//! The layered spring field of the modified force model.
//!
//! For every global resource type `k` with period ρ the field maintains
//! three layers, recomputed incrementally as time frames shrink:
//!
//! 1. per block: the classical distribution `D_{b,k}(t)` (equation 4) and
//!    its modulo-maximum `D̂_{b,k}(τ)` (equation 7),
//! 2. per process: `M_{p,k}(τ) = max_b D̂_{b,k}(τ)` — blocks of one process
//!    never overlap (condition C2), so they behave like alternation
//!    branches (equation 9),
//! 3. per group: `G_k(τ) = Σ_{p∈group} M_{p,k}(τ)` — the balanced global
//!    requirement whose peak is the shared instance count.

use tcms_fds::dist::DistributionSet;
use tcms_ir::{BlockId, FrameTable, ProcessId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::modulo::{modulo_max, slot_max};

/// Incrementally maintained distributions for the modified force model.
#[derive(Debug, Clone)]
pub struct ModuloField<'a> {
    system: &'a System,
    spec: SharingSpec,
    dist: DistributionSet,
    /// `dhat[block][type]`: modulo-max profile; empty when the pair is not
    /// globally shared.
    dhat: Vec<Vec<Vec<f64>>>,
    /// `mproc[process][type]`: per-process balanced profile; empty when not
    /// applicable.
    mproc: Vec<Vec<Vec<f64>>>,
    /// `gdist[type]`: group-summed profile; empty for local types.
    gdist: Vec<Vec<f64>>,
}

impl<'a> ModuloField<'a> {
    /// Builds the field from the initial time frames.
    pub fn new(system: &'a System, spec: SharingSpec, frames: &FrameTable) -> Self {
        let num_types = system.library().len();
        let dist = DistributionSet::build(system, frames);
        let mut field = ModuloField {
            system,
            spec,
            dist,
            dhat: vec![vec![Vec::new(); num_types]; system.num_blocks()],
            mproc: vec![vec![Vec::new(); num_types]; system.num_processes()],
            gdist: vec![Vec::new(); num_types],
        };
        for k in system.library().ids() {
            if !field.spec.is_global(k) {
                continue;
            }
            let group: Vec<ProcessId> = field.spec.group(k).expect("global").to_vec();
            for &p in &group {
                for &b in system.process(p).blocks() {
                    field.dhat[b.index()][k.index()] = field.fold_block(b, k);
                }
                field.mproc[p.index()][k.index()] = field.fold_process(p, k);
            }
            field.gdist[k.index()] = field.fold_group(k);
        }
        field
    }

    /// The sharing specification driving this field.
    pub fn spec(&self) -> &SharingSpec {
        &self.spec
    }

    /// The classical per-block distributions.
    pub fn distributions(&self) -> &DistributionSet {
        &self.dist
    }

    /// Modulo-max profile of a globally shared `(block, type)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not globally shared.
    pub fn block_profile(&self, block: BlockId, rtype: ResourceTypeId) -> &[f64] {
        let v = &self.dhat[block.index()][rtype.index()];
        assert!(!v.is_empty(), "pair is not globally shared");
        v
    }

    /// Balanced per-process profile `M_{p,k}`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not in the group of `rtype`.
    pub fn process_profile(&self, process: ProcessId, rtype: ResourceTypeId) -> &[f64] {
        let v = &self.mproc[process.index()][rtype.index()];
        assert!(!v.is_empty(), "process is not in the sharing group");
        v
    }

    /// Group profile `G_k` of a global type.
    ///
    /// # Panics
    ///
    /// Panics if `rtype` is local.
    pub fn group_profile(&self, rtype: ResourceTypeId) -> &[f64] {
        let v = &self.gdist[rtype.index()];
        assert!(!v.is_empty(), "type is not globally shared");
        v
    }

    /// Expected shared instance count: the peak of `G_k`.
    pub fn group_peak(&self, rtype: ResourceTypeId) -> f64 {
        self.group_profile(rtype)
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    fn fold_block(&self, block: BlockId, rtype: ResourceTypeId) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods");
        modulo_max(self.dist.get(block, rtype), period)
    }

    fn fold_process(&self, process: ProcessId, rtype: ResourceTypeId) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods") as usize;
        let mut acc = vec![0.0; period];
        for &b in self.system.process(process).blocks() {
            acc = slot_max(&acc, &self.dhat[b.index()][rtype.index()]);
        }
        acc
    }

    fn fold_group(&self, rtype: ResourceTypeId) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods") as usize;
        let mut acc = vec![0.0; period];
        for &p in self.spec.group(rtype).expect("global") {
            for (slot, v) in self.mproc[p.index()][rtype.index()].iter().enumerate() {
                acc[slot] += v;
            }
        }
        debug_assert_eq!(acc.len(), period);
        acc
    }

    /// Effect of adding `delta` (indexed by block-local time) to the
    /// distribution of a globally shared `(block, type)`: the change of the
    /// group profile `ΔG_k(τ)`, without mutating the field.
    pub fn tentative_group_delta(
        &self,
        block: BlockId,
        rtype: ResourceTypeId,
        delta: &[f64],
    ) -> Vec<f64> {
        let period = self.spec.period(rtype).expect("global types have periods");
        let process = self.system.block(block).process();
        let mut dnew = self.dist.get(block, rtype).to_vec();
        for (t, &x) in delta.iter().enumerate() {
            dnew[t] += x;
        }
        let dhat_new = modulo_max(&dnew, period);
        // Rebuild the process max with the tentative block profile.
        let mut mnew = dhat_new;
        for &b in self.system.process(process).blocks() {
            if b != block {
                mnew = slot_max(&mnew, &self.dhat[b.index()][rtype.index()]);
            }
        }
        let mold = &self.mproc[process.index()][rtype.index()];
        mnew.iter().zip(mold).map(|(&n, &o)| n - o).collect()
    }

    /// Commits `delta` to the distribution of `(block, type)` and refreshes
    /// the dependent layers (for any type; global layers only when shared).
    pub fn apply_delta(&mut self, block: BlockId, rtype: ResourceTypeId, delta: &[f64]) {
        {
            let d = self.dist.get_mut(block, rtype);
            for (t, &x) in delta.iter().enumerate() {
                d[t] += x;
            }
        }
        let process = self.system.block(block).process();
        if !self.spec.is_global_for(rtype, process) {
            return;
        }
        self.dhat[block.index()][rtype.index()] = self.fold_block(block, rtype);
        self.mproc[process.index()][rtype.index()] = self.fold_process(process, rtype);
        self.gdist[rtype.index()] = self.fold_group(rtype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;
    use tcms_ir::FrameTable;

    #[test]
    fn group_profile_sums_process_profiles() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec.clone(), &frames);
        let g = field.group_profile(t.mul).to_vec();
        let mut manual = vec![0.0; 5];
        for &p in spec.group(t.mul).unwrap() {
            for (slot, v) in field.process_profile(p, t.mul).iter().enumerate() {
                manual[slot] += v;
            }
        }
        for (a, b) in g.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(field.group_peak(t.mul) > 0.0);
    }

    #[test]
    fn tentative_delta_matches_apply() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let mut delta = vec![0.0; len];
        delta[0] = 0.4;
        delta[7] = -0.2;

        let predicted = field.tentative_group_delta(block, t.add, &delta);
        let before = field.group_profile(t.add).to_vec();
        field.apply_delta(block, t.add, &delta);
        let after = field.group_profile(t.add).to_vec();
        for slot in 0..5 {
            assert!(
                (after[slot] - before[slot] - predicted[slot]).abs() < 1e-12,
                "slot {slot}"
            );
        }
    }

    #[test]
    fn local_type_delta_only_touches_distribution() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.mul, sys.users_of_type(t.mul), 5);
        let frames = FrameTable::initial(&sys);
        let mut field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let len = sys.block(block).time_range() as usize;
        let delta = vec![0.1; len];
        let before = field.distributions().get(block, t.add)[0];
        field.apply_delta(block, t.add, &delta);
        let after = field.distributions().get(block, t.add)[0];
        assert!((after - before - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not globally shared")]
    fn group_profile_of_local_type_panics() {
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        let _ = field.group_profile(t.add);
    }

    #[test]
    fn modulo_hiding_effect() {
        // A delta placed under the slot maximum must not change the group
        // profile (the "hiding" of Figure 2).
        let (sys, t) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let frames = FrameTable::initial(&sys);
        let field = ModuloField::new(&sys, spec, &frames);
        let block = sys.block_ids().next().unwrap();
        let d = field.distributions().get(block, t.add);
        // Find two times mapping to the same slot with different values.
        let mut pick = None;
        'outer: for t1 in 0..d.len() {
            for t2 in (t1 + 5..d.len()).step_by(5) {
                if d[t1] < d[t2] - 0.05 {
                    pick = Some((t1, t2));
                    break 'outer;
                }
            }
        }
        if let Some((t_low, t_high)) = pick {
            let headroom = d[t_high] - d[t_low];
            let mut delta = vec![0.0; d.len()];
            delta[t_low] = headroom / 2.0; // stays below the slot max
            let g_delta = field.tentative_group_delta(block, t.add, &delta);
            assert!(
                g_delta.iter().all(|&x| x.abs() < 1e-12),
                "hidden increase must not move the profile: {g_delta:?}"
            );
        }
    }
}
