//! Resource-constrained modulo scheduling with global resource sharing.
//!
//! The dual of the time-constrained flow, following the direction of the
//! companion paper (Jäschke/Laur, ISSS 1998, the paper's reference 8): instance
//! counts are *given* and the scheduler packs every block as early as
//! possible while keeping the periodic authorization invariant — the
//! slot-wise sum of the per-process profile maxima never exceeds the pool.
//!
//! Blocks are scheduled one after the other with a least-slack-first list
//! scheduler; global capacity is tracked incrementally on the period
//! slots.

use tcms_fds::Schedule;
use tcms_ir::{FrameTable, OpId, ResourceTypeId, System};

use crate::assign::SharingSpec;
use crate::error::CoreError;
use crate::modulo::modulo_max_counts;

/// Result of a resource-constrained modulo run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcOutcome {
    /// Start times for every operation.
    pub schedule: Schedule,
    /// Completion time per block (indexed by block id).
    pub makespans: Vec<u32>,
}

/// Schedules the whole system under fixed instance counts.
///
/// `limits[k]` is the pool size of a global type, or the *per-process*
/// instance count of a local type.
///
/// # Errors
///
/// * [`CoreError::ZeroInstances`] if a used type has a zero limit,
/// * [`CoreError::ResourceInfeasible`] if a block cannot meet its time
///   range under the limits,
/// * validation errors of `spec`.
pub fn rc_modulo_schedule(
    system: &System,
    spec: &SharingSpec,
    limits: &[u32],
) -> Result<RcOutcome, CoreError> {
    spec.validate(system)?;
    for (k, rt) in system.library().iter() {
        if !system.users_of_type(k).is_empty() && limits.get(k.index()).copied().unwrap_or(0) == 0 {
            return Err(CoreError::ZeroInstances {
                rtype: rt.name().to_owned(),
            });
        }
    }
    let frames = FrameTable::initial(system);
    let mut schedule = Schedule::new(system.num_ops());
    let mut makespans = vec![0u32; system.num_blocks()];
    // Global capacity state: per global type, the per-process folded
    // profiles committed so far.
    let num_types = system.library().len();
    let mut committed: Vec<Vec<Vec<u32>>> = vec![Vec::new(); num_types];
    for k in system.library().ids() {
        if let Some(period) = spec.period(k) {
            committed[k.index()] = vec![vec![0u32; period as usize]; system.num_processes()];
        }
    }
    // Tightest blocks first: they have the least placement freedom.
    let mut block_order: Vec<_> = system.block_ids().collect();
    block_order.sort_by_key(|&b| (system.block(b).time_range() - system.critical_path(b), b));
    for bid in block_order {
        // Greedy placement can fail in two complementary ways: the
        // claim-minimizing policy may burn a chain's slack hunting for
        // already-granted slots, while the earliest-first policy may claim
        // more capacity than necessary. Try claim-first, roll back and
        // retry earliest-first on failure.
        let snapshot = committed.clone();
        let placements = match try_block(
            system,
            spec,
            limits,
            &frames,
            &mut committed,
            bid,
            Policy::ClaimFirst,
        ) {
            Some(p) => p,
            None => {
                committed = snapshot;
                try_block(
                    system,
                    spec,
                    limits,
                    &frames,
                    &mut committed,
                    bid,
                    Policy::EarliestFirst,
                )
                .ok_or_else(|| CoreError::ResourceInfeasible {
                    block: system.block(bid).name().to_owned(),
                    time_range: system.block(bid).time_range(),
                })?
            }
        };
        for (o, t) in placements {
            schedule.set(o, t);
            makespans[bid.index()] = makespans[bid.index()].max(t + system.delay(o));
        }
    }
    // Final sanity: recompute profiles from the schedule and compare pools.
    for k in system.library().ids() {
        let Some(group) = spec.group(k) else { continue };
        let period = spec.period(k).expect("global types have periods");
        for slot in 0..period as usize {
            let total: u32 = group
                .iter()
                .map(|&p| {
                    system
                        .process(p)
                        .blocks()
                        .iter()
                        .map(|&b| modulo_max_counts(&schedule.usage(system, b, k), period)[slot])
                        .max()
                        .unwrap_or(0)
                })
                .sum();
            debug_assert!(total <= limits[k.index()], "capacity invariant");
        }
    }
    Ok(RcOutcome {
        schedule,
        makespans,
    })
}

/// Placement preference of the greedy block scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Minimise new grant capacity, ties to the earliest start.
    ClaimFirst,
    /// Earliest feasible start, ties to the smallest claim.
    EarliestFirst,
}

/// Attempts to place all operations of `bid` under the committed grant
/// profiles, updating `committed` on the fly. Returns `None` (with
/// `committed` left partially updated — the caller rolls back) when an
/// operation has no feasible start.
fn try_block(
    system: &System,
    spec: &SharingSpec,
    limits: &[u32],
    frames: &FrameTable,
    committed: &mut [Vec<Vec<u32>>],
    bid: tcms_ir::BlockId,
    policy: Policy,
) -> Option<Vec<(OpId, u32)>> {
    let block = system.block(bid);
    let process = block.process();
    let num_types = system.library().len();
    let slot_total = |committed: &[Vec<Vec<u32>>], k: ResourceTypeId, slot: usize| -> u32 {
        committed[k.index()].iter().map(|p| p[slot]).sum()
    };
    // Topological order, least-slack-first: a predecessor's ALAP is always
    // strictly smaller than its successor's, so preds are placed first.
    let mut order = system.topo_order(bid).to_vec();
    order.sort_by_key(|&o| (frames.get(o).alap, o));
    let mut local_busy: Vec<Vec<u32>> = vec![vec![0; block.time_range() as usize]; num_types];
    let mut placed: Vec<Option<u32>> = vec![None; system.num_ops()];
    let mut out = Vec::with_capacity(order.len());
    for &o in &order {
        let ready_at = system
            .preds(o)
            .iter()
            .map(|&p| placed[p.index()].expect("preds placed first") + system.delay(p))
            .max()
            .unwrap_or(0);
        // Bounding by the op's ALAP keeps every successor feasible: preds
        // placed at or before their ALAP leave ready_at within this op's
        // ALAP by construction.
        let latest = frames.get(o).alap;
        let k = system.op(o).resource_type();
        let occ = system.occupancy(o);
        let limit = limits[k.index()];
        let global = spec.is_global_for(k, process);
        let mut best: Option<(u32, u32)> = None; // (claim, t)
        for t in ready_at..=latest {
            let (fits, claim) = if global {
                let period = spec.period(k).expect("global types have periods");
                let mut claim = 0u32;
                let mut ok = true;
                for tt in t..t + occ {
                    let slot = (tt % period) as usize;
                    let new_local = local_busy[k.index()][tt as usize] + 1;
                    // The committed profile of this process already
                    // contains this block's earlier placements via the
                    // running fold below.
                    let mine = committed[k.index()][process.index()][slot];
                    let folded_new = mine.max(new_local);
                    let others = slot_total(committed, k, slot) - mine;
                    if others + folded_new > limit {
                        ok = false;
                        break;
                    }
                    claim += folded_new - mine;
                }
                (ok, claim)
            } else {
                let ok = (t..t + occ).all(|tt| local_busy[k.index()][tt as usize] < limit);
                (ok, 0)
            };
            if fits {
                match policy {
                    Policy::ClaimFirst => {
                        if best.is_none_or(|(c, _)| claim < c) {
                            best = Some((claim, t));
                            if claim == 0 {
                                break; // cannot beat a free slot
                            }
                        }
                    }
                    Policy::EarliestFirst => {
                        best = Some((claim, t));
                        break;
                    }
                }
            }
        }
        let (_, t) = best?;
        for tt in t..t + occ {
            local_busy[k.index()][tt as usize] += 1;
        }
        if global {
            let period = spec.period(k).expect("global types have periods");
            for tt in t..t + occ {
                let slot = (tt % period) as usize;
                let mine = &mut committed[k.index()][process.index()][slot];
                *mine = (*mine).max(local_busy[k.index()][tt as usize]);
            }
        }
        placed[o.index()] = Some(t);
        out.push((o, t));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::compute_report;
    use crate::verify::{check_execution, random_activations};
    use tcms_ir::generators::paper_system;

    #[test]
    fn rc_succeeds_near_time_constrained_counts() {
        // The time-constrained optimum is a feasibility witness, but the
        // greedy packer is weaker than the coupled force-directed search:
        // one unit of headroom per type must always suffice on the paper
        // system.
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let tc = crate::ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let report = tc.report();
        let limits: Vec<u32> = sys
            .library()
            .ids()
            .map(|k| report.instances(k).max(1) + 1)
            .collect();
        let rc = rc_modulo_schedule(&sys, &spec, &limits).unwrap();
        rc.schedule.verify(&sys).unwrap();
    }

    #[test]
    fn rc_schedule_passes_runtime_verification() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let limits = vec![5, 2, 3];
        let rc = rc_modulo_schedule(&sys, &spec, &limits).unwrap();
        rc.schedule.verify(&sys).unwrap();
        let report = compute_report(&sys, &spec, &rc.schedule);
        // The report's pools are bounded by the limits we imposed.
        for (i, k) in sys.library().ids().enumerate() {
            assert!(report.instances(k) <= limits[i]);
        }
        for seed in 0..5 {
            let acts = random_activations(&sys, &spec, &rc.schedule, 2, seed);
            check_execution(&sys, &spec, &rc.schedule, &report, &acts).unwrap();
        }
    }

    #[test]
    fn zero_limit_rejected() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        assert!(matches!(
            rc_modulo_schedule(&sys, &spec, &[0, 1, 1]),
            Err(CoreError::ZeroInstances { .. })
        ));
    }

    #[test]
    fn too_tight_limits_are_infeasible() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        // One shared adder for three EWFs + two diffeqs in tight windows
        // cannot work: 26 adds in 30 steps per EWF alone exceeds it.
        let err = rc_modulo_schedule(&sys, &spec, &[1, 1, 1]);
        assert!(matches!(err, Err(CoreError::ResourceInfeasible { .. })));
    }

    #[test]
    fn local_limits_apply_per_process() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_local(&sys);
        // Generous local limits: every process gets its own adders.
        let rc = rc_modulo_schedule(&sys, &spec, &[3, 1, 2]).unwrap();
        rc.schedule.verify(&sys).unwrap();
        for (bid, _) in sys.blocks() {
            let add = sys.library().by_name("add").unwrap();
            assert!(rc.schedule.peak_usage(&sys, bid, add) <= 3);
        }
    }
}
