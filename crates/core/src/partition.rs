//! Feedback-guided partitioned scheduling for huge specifications.
//!
//! The coupled IFDS of [`crate::scheduler`] walks every block of every
//! process each frame-reduction iteration, so its cost grows superlinearly
//! with specification size. This module trades a bounded amount of quality
//! for wall-clock scalability by decomposing the problem:
//!
//! 1. **Partition.** [`tcms_ir::partition_processes`] splits the process
//!    set into `K` balanced communities (dependencies never cross process
//!    boundaries, so this is exact on the dependency graph; only global
//!    resource types couple partitions).
//! 2. **Parallel schedule.** Each partition is extracted into a standalone
//!    subsystem and scheduled independently on the worker pool. Foreign
//!    usage of each shared global type is frozen into an
//!    [`ExternalOccupancy`] baseline: the subsystem's `G_k` fold starts at
//!    the other partitions' committed per-slot usage, so every shard prices
//!    its displacements against the whole system's load (the "externally
//!    imposed occupancy" view of the feedback-guided decomposition).
//! 3. **Feedback.** The per-partition schedules are merged, the committed
//!    occupancy profiles recomputed from the merged schedule via
//!    [`AuthorizationTable`] grants, and the loop re-runs until profiles
//!    stabilize or a round cap trips.
//!
//! The merged result is re-verified against the *full* specification
//! ([`crate::verify::check_execution`]), so a returned schedule carries
//! the same validity guarantee as a monolithic run. Determinism: rounds
//! are sequential, shards merge in partition-index order, and the shard
//! scheduler is bit-deterministic, so the result is a pure function of
//! `(system, spec, config, partition config)` — never of thread count.

use rayon;
use tcms_fds::{FdsConfig, Schedule};
use tcms_ir::{
    auto_partition_count, extract_subsystem, partition_processes, OpId, ProcessId, SubsystemMap,
    System,
};
use tcms_obs::{NoopRecorder, Recorder, TimelinePoint};

use crate::assign::{Scope, SharingSpec};
use crate::authorize::AuthorizationTable;
use crate::error::ScheduleError;
use crate::field::ExternalOccupancy;
use crate::report::{compute_report, ScheduleReport};
use crate::scheduler::ModuloScheduler;
use crate::verify::{check_execution, random_activations};

/// How many partitions to decompose a specification into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionCount {
    /// One partition per [`tcms_ir::AUTO_OPS_PER_PARTITION`] operations —
    /// a pure function of the specification, never of the machine.
    #[default]
    Auto,
    /// Exactly this many partitions (clamped to `[1, num_processes]`).
    Fixed(usize),
}

/// Tuning of the partitioned driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Partition count policy.
    pub count: PartitionCount,
    /// Seed for the partitioner's tie-breaking (not for scheduling).
    pub seed: u64,
    /// Maximum feedback rounds before accepting the best merged
    /// schedule seen. One round is always executed; the loop also stops
    /// early at a baseline fixpoint or on the first round that fails to
    /// improve the merged schedule's full-spec area.
    pub max_rounds: usize,
    /// Number of random activation patterns the final full-spec
    /// verification pass simulates.
    pub verify_seeds: u64,
    /// Maximum hill-climbing sweeps of the sequential polish pass run on
    /// the best merged schedule (0 disables). Each sweep tries every
    /// operation at every start in its precedence window and keeps moves
    /// that lower `(total area, Σ slot-grants²)` — a cheap cross-partition
    /// refinement the shard schedulers cannot see.
    pub polish_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            count: PartitionCount::Auto,
            seed: 0,
            max_rounds: 4,
            verify_seeds: 3,
            polish_passes: 2,
        }
    }
}

/// Result of a partitioned run: the merged schedule plus decomposition
/// telemetry.
#[derive(Debug, Clone)]
pub struct PartitionOutcome<'a> {
    system: &'a System,
    spec: SharingSpec,
    /// Start times for every operation of the full system.
    pub schedule: Schedule,
    /// Number of partitions actually used (1 = monolithic run).
    pub partitions: usize,
    /// Cut cost of the partitioning (shared types spread across parts).
    pub cut_edges: usize,
    /// Feedback rounds executed (1 for a monolithic run).
    pub rounds: usize,
    /// Frame-reduction iterations per partition, summed over all rounds.
    pub partition_iterations: Vec<u64>,
}

impl<'a> PartitionOutcome<'a> {
    /// The sharing specification the schedule was produced under.
    pub fn spec(&self) -> &SharingSpec {
        &self.spec
    }

    /// Total frame-reduction iterations across all partitions and rounds.
    pub fn iterations(&self) -> u64 {
        self.partition_iterations.iter().sum()
    }

    /// Resource counts, authorization tables and area of the merged
    /// schedule under the full specification.
    pub fn report(&self) -> ScheduleReport {
        compute_report(self.system, &self.spec, &self.schedule)
    }
}

/// One extracted partition: the induced subsystem, its id maps back to the
/// full system, and the sharing spec restricted to in-partition processes.
struct Shard {
    system: System,
    map: SubsystemMap,
    spec: SharingSpec,
}

/// Restricts `spec` to the processes of `map`'s subsystem: global groups
/// keep their original member order but drop foreign processes (remapped
/// to subsystem ids); a group left empty becomes local.
fn restrict_spec(
    system: &System,
    spec: &SharingSpec,
    sub: &System,
    map: &SubsystemMap,
) -> SharingSpec {
    let mut full_to_sub: Vec<Option<ProcessId>> = vec![None; system.num_processes()];
    for (i, &p) in map.processes.iter().enumerate() {
        full_to_sub[p.index()] = Some(ProcessId::from_index(i));
    }
    let mut restricted = SharingSpec::all_local(sub);
    for (rtype, _) in system.library().iter() {
        if let Scope::Global { group, period } = spec.scope(rtype) {
            let members: Vec<ProcessId> = group
                .iter()
                .filter_map(|p| full_to_sub[p.index()])
                .collect();
            if !members.is_empty() {
                restricted.set_global(rtype, members, *period);
            }
        }
    }
    restricted
}

/// Computes the frozen foreign-occupancy baseline of every shard from the
/// merged schedule: for each global type of the shard's sub-spec, the
/// slot-wise sum of the authorization grants of all processes *outside*
/// the shard. All-zero baselines are left unset (bit-identical to empty).
fn foreign_baselines(
    system: &System,
    spec: &SharingSpec,
    merged: &Schedule,
    shards: &[Shard],
) -> Vec<ExternalOccupancy> {
    let num_types = system.library().len();
    let mut baselines: Vec<ExternalOccupancy> =
        vec![ExternalOccupancy::empty(num_types); shards.len()];
    for rtype in spec.global_types(system) {
        let Some(table) = AuthorizationTable::from_schedule(system, spec, merged, rtype) else {
            continue;
        };
        for (i, shard) in shards.iter().enumerate() {
            if !shard.spec.is_global(rtype) {
                continue;
            }
            let rho = spec.period(rtype).expect("global type has a period") as usize;
            let mut profile = vec![0.0f64; rho];
            for (p, grant) in table.grants() {
                if shard.map.processes.contains(p) {
                    continue;
                }
                for (slot, &g) in grant.iter().enumerate() {
                    profile[slot] += f64::from(g);
                }
            }
            if profile.iter().any(|&v| v > 0.0) {
                baselines[i].set(rtype, profile);
            }
        }
    }
    baselines
}

/// Cost a complete schedule for the polish pass: total area first, then
/// the sum of squared authorization slot totals over all global types —
/// a smooth surrogate that keeps descent moving across area plateaus
/// (flattening grant profiles is what eventually drops a pool peak).
fn polish_cost(system: &System, spec: &SharingSpec, schedule: &Schedule) -> (u64, u64) {
    let report = compute_report(system, spec, schedule);
    let mut squared = 0u64;
    for tr in report.types() {
        if let Some(auth) = &tr.authorization {
            for t in auth.slot_totals() {
                squared += u64::from(t) * u64::from(t);
            }
        }
    }
    (report.total_area(), squared)
}

/// Sequential cross-partition refinement of the merged schedule: up to
/// `passes` deterministic sweeps, each trying every operation at every
/// start inside its precedence/deadline window and keeping strictly
/// cost-improving moves. The shard schedulers optimize against frozen
/// foreign profiles; this pass sees the *live* merged profile, so it can
/// shave the peaks the partitioned view could not. Pure function of the
/// inputs — no randomness, no thread dependence.
fn polish(system: &System, spec: &SharingSpec, schedule: &mut Schedule, passes: usize) {
    let mut cost = polish_cost(system, spec, schedule);
    for _ in 0..passes {
        let mut improved = false;
        for (o, op) in system.ops() {
            let delay = system.delay(o);
            let current = schedule.start(o).expect("merged schedules are complete");
            let lo = system
                .preds(o)
                .iter()
                .map(|&p| schedule.start(p).expect("complete") + system.delay(p))
                .max()
                .unwrap_or(0);
            let mut hi = system.block(op.block()).time_range() - delay;
            for &s in system.succs(o) {
                hi = hi.min(schedule.start(s).expect("complete") - delay);
            }
            let mut kept = current;
            for candidate in lo..=hi {
                if candidate == kept {
                    continue;
                }
                schedule.set(o, candidate);
                let c = polish_cost(system, spec, schedule);
                if c < cost {
                    cost = c;
                    kept = candidate;
                    improved = true;
                } else {
                    schedule.set(o, kept);
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Full-spec verification of the merged schedule: structural validity,
/// then simulated executions against the authorization pools of the
/// merged report.
fn verify_merged(
    system: &System,
    spec: &SharingSpec,
    schedule: &Schedule,
    verify_seeds: u64,
) -> Result<(), ScheduleError> {
    let fail = |detail: String| ScheduleError::VerificationFailed { detail };
    schedule.verify(system).map_err(|e| fail(e.to_string()))?;
    let report = compute_report(system, spec, schedule);
    for seed in 0..verify_seeds {
        let acts = random_activations(system, spec, schedule, 3, seed);
        check_execution(system, spec, schedule, &report, &acts).map_err(|e| fail(e.to_string()))?;
    }
    Ok(())
}

/// Schedules `system` under `spec` by feedback-guided subgraph
/// decomposition (see the module docs). With a resolved partition count of
/// one this is *exactly* a monolithic [`ModuloScheduler`] run — bit for
/// bit — so `PartitionCount::Fixed(1)` is a safe universal default.
///
/// # Errors
///
/// Propagates spec validation and engine errors from the shards, and
/// returns [`ScheduleError::VerificationFailed`] if the merged schedule
/// fails the full-spec verification pass.
pub fn schedule_partitioned<'a>(
    system: &'a System,
    spec: SharingSpec,
    config: &FdsConfig,
    pcfg: &PartitionConfig,
) -> Result<PartitionOutcome<'a>, ScheduleError> {
    schedule_partitioned_recorded(system, spec, config, pcfg, &NoopRecorder)
}

/// [`schedule_partitioned`] with observability: per-round timeline points
/// (phase `"partition"`) carrying the partition count, cut edges and
/// per-partition iteration counters, plus `partition.rounds` counting.
pub fn schedule_partitioned_recorded<'a>(
    system: &'a System,
    spec: SharingSpec,
    config: &FdsConfig,
    pcfg: &PartitionConfig,
    rec: &dyn Recorder,
) -> Result<PartitionOutcome<'a>, ScheduleError> {
    let k = match pcfg.count {
        PartitionCount::Auto => auto_partition_count(system),
        PartitionCount::Fixed(k) => k,
    };
    let partitioning = partition_processes(system, k, pcfg.seed);

    // A single partition degenerates to the monolithic scheduler — same
    // validation, same engine, same bits.
    if partitioning.len() <= 1 {
        let out = ModuloScheduler::new(system, spec)?
            .with_config_ref(config)
            .run_recorded(rec)?;
        if rec.enabled() {
            rec.counter_add("partition.rounds", 1);
            rec.timeline(TimelinePoint {
                phase: "partition",
                iteration: 0,
                values: vec![
                    ("partition.parts".to_owned(), 1.0),
                    ("partition.cut_edges".to_owned(), 0.0),
                    ("partition.p0.iterations".to_owned(), out.iterations as f64),
                ],
            });
        }
        let iterations = out.iterations;
        let spec = out.spec().clone();
        return Ok(PartitionOutcome {
            system,
            spec,
            schedule: out.schedule,
            partitions: 1,
            cut_edges: 0,
            rounds: 1,
            partition_iterations: vec![iterations],
        });
    }

    spec.validate(system)?;
    let parts = partitioning.len();
    let cut_edges = partitioning.cut_edges;

    let mut shards = Vec::with_capacity(parts);
    for processes in &partitioning.parts {
        let (sub, map) =
            extract_subsystem(system, processes).expect("a subsystem of a valid system is valid");
        let spec = restrict_spec(system, &spec, &sub, &map);
        shards.push(Shard {
            system: sub,
            map,
            spec,
        });
    }

    // Each shard gets an equal slice of the deterministic budget axes; the
    // wall deadline is shared because the shards run concurrently.
    let sub_config = FdsConfig {
        budget: config.budget.split(parts as u64),
        ..config.clone()
    };

    let mut baselines: Vec<ExternalOccupancy> =
        vec![ExternalOccupancy::empty(system.library().len()); parts];
    let mut merged = Schedule::new(system.num_ops());
    let mut partition_iterations = vec![0u64; parts];
    let mut rounds = 0usize;
    // The feedback loop is not guaranteed to improve monotonically (two
    // shards can oscillate around each other's profiles), so the driver
    // keeps the cheapest merged schedule seen — judged by total area
    // under the *full* spec — and returns that one. Strict `<` keeps the
    // earliest round on ties, a pure function of the schedules.
    let mut best: Option<(u64, Schedule)> = None;

    for round in 0..pcfg.max_rounds.max(1) {
        rounds = round + 1;
        let results: Vec<Result<(Schedule, u64), ScheduleError>> =
            rayon::par_map_indexed(parts, |i| {
                let shard = &shards[i];
                let out = ModuloScheduler::new_relaxed(&shard.system, shard.spec.clone())?
                    .with_config_ref(&sub_config)
                    .with_external_occupancy(baselines[i].clone())
                    .run()?;
                Ok((out.schedule, out.iterations))
            });

        // Merge in partition-index order (deterministic, and the first
        // shard error — by index — wins).
        let mut round_values = vec![
            ("partition.parts".to_owned(), parts as f64),
            ("partition.cut_edges".to_owned(), cut_edges as f64),
        ];
        merged = Schedule::new(system.num_ops());
        for (i, result) in results.into_iter().enumerate() {
            let (sub_schedule, iters) = result?;
            partition_iterations[i] += iters;
            round_values.push((format!("partition.p{i}.iterations"), iters as f64));
            for (sub_idx, &full_op) in shards[i].map.ops.iter().enumerate() {
                let start = sub_schedule
                    .start(OpId::from_index(sub_idx))
                    .expect("shard schedules are complete");
                merged.set(full_op, start);
            }
        }
        let round_area = crate::report::compute_report(system, &spec, &merged).total_area();
        let improved = best.as_ref().is_none_or(|(area, _)| round_area < *area);
        if improved {
            best = Some((round_area, merged.clone()));
        }
        if rec.enabled() {
            round_values.push(("partition.area".to_owned(), round_area as f64));
            rec.counter_add("partition.rounds", 1);
            rec.timeline(TimelinePoint {
                phase: "partition",
                iteration: round as u64,
                values: round_values,
            });
        }

        if round > 0 && !improved {
            // Feedback stopped paying for itself: this round produced a
            // schedule no cheaper than one already in hand, so further
            // rounds would only burn the shards' budget re-orbiting the
            // same profiles.
            break;
        }
        let next = foreign_baselines(system, &spec, &merged, &shards);
        if next == baselines {
            // Fixpoint: rescheduling against identical baselines would
            // reproduce the same shard schedules bit for bit.
            break;
        }
        baselines = next;
    }

    let mut merged = best.map_or(merged, |(_, schedule)| schedule);
    polish(system, &spec, &mut merged, pcfg.polish_passes);
    verify_merged(system, &spec, &merged, pcfg.verify_seeds)?;
    if rec.enabled() {
        rec.gauge_set("partition.cut_edges", cut_edges as f64);
    }
    Ok(PartitionOutcome {
        system,
        spec,
        schedule: merged,
        partitions: parts,
        cut_edges,
        rounds,
        partition_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::threads_lock;
    use tcms_ir::generators::random::{random_system, RandomSystemConfig};

    fn sample(processes: usize, seed: u64) -> System {
        let config = RandomSystemConfig {
            processes,
            ..RandomSystemConfig::default()
        };
        random_system(&config, seed).unwrap().0
    }

    fn fixed(k: usize) -> PartitionConfig {
        PartitionConfig {
            count: PartitionCount::Fixed(k),
            ..PartitionConfig::default()
        }
    }

    #[test]
    fn merged_schedule_is_complete_and_verifies() {
        let sys = sample(6, 21);
        let spec = SharingSpec::all_global(&sys, 4);
        let out =
            schedule_partitioned(&sys, spec.clone(), &FdsConfig::default(), &fixed(3)).unwrap();
        assert_eq!(out.partitions, 3);
        assert_eq!(out.schedule.assigned(), sys.num_ops());
        assert_eq!(out.partition_iterations.len(), 3);
        assert!(out.rounds >= 1 && out.rounds <= PartitionConfig::default().max_rounds);
        // The driver verified already; re-verify independently.
        verify_merged(&sys, out.spec(), &out.schedule, 2).unwrap();
    }

    #[test]
    fn single_partition_is_bit_identical_to_monolithic() {
        let sys = sample(4, 7);
        let spec = SharingSpec::all_global(&sys, 4);
        let mono = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let part = schedule_partitioned(&sys, spec, &FdsConfig::default(), &fixed(1)).unwrap();
        assert_eq!(part.partitions, 1);
        assert_eq!(part.cut_edges, 0);
        assert_eq!(mono.schedule.starts(), part.schedule.starts());
        assert_eq!(mono.iterations, part.iterations());
    }

    #[test]
    fn partitioned_schedule_is_thread_count_invariant() {
        let _guard = threads_lock();
        let sys = sample(6, 33);
        let spec = SharingSpec::all_global(&sys, 4);
        let mut reference: Option<Vec<Option<u32>>> = None;
        for threads in [1, 2, 4] {
            rayon::set_num_threads(threads);
            let out =
                schedule_partitioned(&sys, spec.clone(), &FdsConfig::default(), &fixed(3)).unwrap();
            let starts = out.schedule.starts().to_vec();
            match &reference {
                None => reference = Some(starts),
                Some(r) => assert_eq!(r, &starts, "thread count {threads} changed the schedule"),
            }
        }
        rayon::set_num_threads(0);
    }

    #[test]
    fn auto_count_runs_and_verifies() {
        let sys = sample(5, 11);
        let spec = SharingSpec::all_global(&sys, 4);
        let out = schedule_partitioned(
            &sys,
            spec,
            &FdsConfig::default(),
            &PartitionConfig::default(),
        )
        .unwrap();
        assert!(out.partitions >= 1);
        assert_eq!(out.schedule.assigned(), sys.num_ops());
    }

    #[test]
    fn partitioned_quality_is_reported_under_full_spec() {
        let sys = sample(6, 5);
        let spec = SharingSpec::all_global(&sys, 4);
        let mono = ModuloScheduler::new(&sys, spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let part = schedule_partitioned(&sys, spec, &FdsConfig::default(), &fixed(2)).unwrap();
        let mono_area = mono.report().total_area();
        let part_area = part.report().total_area();
        assert!(mono_area > 0 && part_area > 0);
        // Partitioning may lose some quality but not unboundedly: the
        // all-local area is a hard upper bound for any valid schedule's
        // authorized pools under this library.
        let local = ModuloScheduler::new(&sys, SharingSpec::all_local(&sys))
            .unwrap()
            .run()
            .unwrap();
        assert!(part_area <= 4 * local.report().total_area().max(mono_area));
    }

    #[test]
    fn restricted_spec_drops_foreign_members_and_empty_groups() {
        let sys = sample(4, 3);
        let spec = SharingSpec::all_global(&sys, 4);
        let partitioning = partition_processes(&sys, 2, 0);
        let (sub, map) = extract_subsystem(&sys, &partitioning.parts[0]).unwrap();
        let restricted = restrict_spec(&sys, &spec, &sub, &map);
        restricted.validate_relaxed(&sub).unwrap();
        for (rtype, _) in sys.library().iter() {
            if let Some(group) = restricted.group(rtype) {
                assert!(group.iter().all(|p| p.index() < sub.num_processes()));
                assert!(!group.is_empty());
            }
        }
    }
}
