//! Cache keys and cacheable results for content-addressed scheduling.
//!
//! The serve subsystem (and the one-shot CLI's `--cache-dir`) cache
//! finished schedules keyed by `(canonical spec hash, config
//! fingerprint)`:
//!
//! * the **spec hash** comes from [`tcms_ir::canon`] and is invariant
//!   under declaration-order permutations of the design,
//! * the **config fingerprint** ([`config_fingerprint`]) covers
//!   everything else the schedule depends on: the sharing specification
//!   expressed in *canonical* coordinates (so the same `--global mul=2`
//!   over two permuted declarations fingerprints equal) and the
//!   deterministic force-model knobs of [`FdsConfig`].
//!
//! Deliberately **excluded** from the fingerprint:
//!
//! * the worker-thread count — schedules are bit-identical at every
//!   count (pinned by `tests/determinism.rs`),
//! * the wall-clock deadline of [`tcms_fds::RunBudget`] — a cached
//!   success is served instantly and therefore satisfies *any* deadline;
//!   only failed runs are deadline-dependent, and failures are never
//!   cached.
//!
//! The cached value is a [`CacheableResult`]: start times in canonical
//! operation order plus the run's iteration count. Storing canonical
//! order makes the entry declaration-order independent, so a permuted
//! resubmission of the same design replays to a verified-valid schedule
//! without an IFDS run.

use tcms_fds::{FdsConfig, Schedule, SpringWeights};
use tcms_ir::canon::{Canonicalization, Fnv64};
use tcms_ir::System;

use crate::assign::{Scope, SharingSpec};
use crate::partition::{PartitionConfig, PartitionCount};

/// Stable 64-bit fingerprint of everything the schedule depends on
/// besides the design itself: the sharing specification (in canonical
/// type/process coordinates) and the deterministic [`FdsConfig`] knobs.
///
/// Equivalent to [`config_fingerprint_with`] with no partitioning —
/// the two produce identical fingerprints for monolithic runs, so
/// snapshots written before partitioned results became cacheable stay
/// warm.
#[must_use]
pub fn config_fingerprint(
    system: &System,
    canon: &Canonicalization,
    spec: &SharingSpec,
    config: &FdsConfig,
) -> u64 {
    config_fingerprint_with(system, canon, spec, config, None)
}

/// [`config_fingerprint`] extended with the partition configuration.
///
/// Feedback-guided partitioned runs ([`crate::schedule_partitioned`])
/// are deterministic functions of the design *and* the partition knobs
/// (subgraph count policy, partitioner seed, feedback-round cap, verify
/// seeds, polish passes), so those knobs must separate cache entries:
/// the same design scheduled monolithically, partitioned into K=2 and
/// partitioned into K=4 are three distinct content addresses. `None`
/// serializes exactly like the original v1 text, keeping pre-existing
/// monolithic fingerprints (and on-disk snapshots) valid.
#[must_use]
pub fn config_fingerprint_with(
    system: &System,
    canon: &Canonicalization,
    spec: &SharingSpec,
    config: &FdsConfig,
    partition: Option<&PartitionConfig>,
) -> u64 {
    let mut text = String::from("tcms-config v1\n");
    // Scopes in canonical type order, groups in canonical process order:
    // two permuted declarations of the same sharing setup serialize
    // identically.
    for &ti in canon.type_order() {
        let k = tcms_ir::ResourceTypeId::from_index(ti);
        match spec.scope(k) {
            Scope::Local => text.push_str("type local\n"),
            Scope::Global { group, period } => {
                let mut ranks: Vec<usize> = group
                    .iter()
                    .map(|p| canon.process_rank(p.index()))
                    .collect();
                ranks.sort_unstable();
                text.push_str(&format!("type global period={period} group={ranks:?}\n"));
            }
        }
    }
    // Force-model knobs that change the schedule. The wall deadline is
    // excluded on purpose (see the module docs); the deterministic budget
    // axes are included because tripping them changes the outcome.
    text.push_str(&format!("lookahead={:016x}\n", config.lookahead.to_bits()));
    text.push_str(match config.spring_weights {
        SpringWeights::Uniform => "weights=uniform\n",
        SpringWeights::Area => "weights=area\n",
    });
    text.push_str(&format!(
        "max_iterations={:?} max_evals={:?}\n",
        config.budget.max_iterations, config.budget.max_evals
    ));
    // Partition knobs, only when partitioning is requested: the `None`
    // text stays byte-identical to the pre-partition v1 format so
    // monolithic fingerprints (and persisted snapshots) are unchanged.
    if let Some(p) = partition {
        let count = match p.count {
            PartitionCount::Auto => "auto".to_owned(),
            PartitionCount::Fixed(k) => k.to_string(),
        };
        text.push_str(&format!(
            "partition count={count} seed={} max_rounds={} verify_seeds={} polish_passes={}\n",
            p.seed, p.max_rounds, p.verify_seeds, p.polish_passes
        ));
    }
    let _ = system;
    let mut h = Fnv64::new();
    h.update(text.as_bytes());
    h.finish()
}

/// A finished schedule in cache-portable form: start times in canonical
/// operation order plus the converged iteration count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheableResult {
    /// Start time of the operation at each canonical position.
    pub starts: Vec<u32>,
    /// Frame-reduction iterations of the original run (reported verbatim
    /// on replay so cached and fresh responses render identically).
    pub iterations: u64,
    /// Optional provenance line of the original run (the partition
    /// telemetry note), re-rendered verbatim on every hit so cached and
    /// fresh partitioned responses stay byte-identical.
    pub note: Option<String>,
}

impl CacheableResult {
    /// Captures a finished schedule of `canon`'s system.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is incomplete; verify before caching.
    #[must_use]
    pub fn capture(canon: &Canonicalization, schedule: &Schedule, iterations: u64) -> Self {
        let starts = canon
            .op_order()
            .iter()
            .map(|&o| schedule.expect_start(o))
            .collect();
        CacheableResult {
            starts,
            iterations,
            note: None,
        }
    }

    /// Attaches a provenance note (builder style, for capture sites).
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Replays the cached starts onto a system with the same canonical
    /// hash.
    ///
    /// # Errors
    ///
    /// Returns a message when the operation counts disagree (a hash
    /// collision or corrupt cache entry); callers must additionally
    /// verify the replayed schedule before serving it.
    pub fn replay(&self, canon: &Canonicalization) -> Result<Schedule, String> {
        if self.starts.len() != canon.op_order().len() {
            return Err(format!(
                "cached entry has {} ops, system has {}",
                self.starts.len(),
                canon.op_order().len()
            ));
        }
        let mut schedule = Schedule::new(canon.op_order().len());
        for (rank, &op) in canon.op_order().iter().enumerate() {
            schedule.set(op, self.starts[rank]);
        }
        Ok(schedule)
    }

    /// Serializes to the JSON object used by the cache snapshot (one
    /// entry per line, without the surrounding key fields).
    #[must_use]
    pub fn to_json_fields(&self) -> String {
        let mut out = format!("\"iterations\":{},\"starts\":[", self.iterations);
        for (i, s) in self.starts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push(']');
        if let Some(note) = &self.note {
            out.push_str(",\"note\":");
            tcms_obs::json::write_escaped(&mut out, note);
        }
        out
    }

    /// A stable digest of the payload, stored alongside each snapshot
    /// line and re-checked on load. Note-less results hash exactly as
    /// they did before the note field existed, so pre-existing snapshot
    /// entries stay valid.
    #[must_use]
    pub fn integrity(&self) -> u64 {
        let mut h = Fnv64::new();
        h.update(&self.iterations.to_le_bytes());
        for s in &self.starts {
            h.update(&s.to_le_bytes());
        }
        if let Some(note) = &self.note {
            h.update(b"|note|");
            h.update(note.as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ModuloScheduler;
    use tcms_ir::parse::parse_system;

    const A: &str = "
resource add delay=1 area=1
resource mul delay=2 area=4 pipelined
process A
block body time=8
op m0 mul
op a0 add
edge m0 a0
process B
block body time=8
op m0 mul
op a0 add
edge m0 a0
";

    const A_SHUFFLED: &str = "
resource mul delay=2 area=4 pipelined
resource add delay=1 area=1
process B
block body time=8
op a0 add
op m0 mul
edge m0 a0
process A
block body time=8
op a0 add
op m0 mul
edge m0 a0
";

    #[test]
    fn fingerprint_is_permutation_invariant() {
        let sa = parse_system(A).unwrap();
        let sb = parse_system(A_SHUFFLED).unwrap();
        let (ca, cb) = (Canonicalization::of(&sa), Canonicalization::of(&sb));
        let cfg = FdsConfig::default();
        let fa = config_fingerprint(&sa, &ca, &SharingSpec::all_global(&sa, 4), &cfg);
        let fb = config_fingerprint(&sb, &cb, &SharingSpec::all_global(&sb, 4), &cfg);
        assert_eq!(fa, fb);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let sys = parse_system(A).unwrap();
        let canon = Canonicalization::of(&sys);
        let cfg = FdsConfig::default();
        let global = config_fingerprint(&sys, &canon, &SharingSpec::all_global(&sys, 4), &cfg);
        let local = config_fingerprint(&sys, &canon, &SharingSpec::all_local(&sys), &cfg);
        let other_period =
            config_fingerprint(&sys, &canon, &SharingSpec::all_global(&sys, 5), &cfg);
        assert_ne!(global, local);
        assert_ne!(global, other_period);
        let tweaked = FdsConfig {
            lookahead: 0.5,
            ..FdsConfig::default()
        };
        let lk = config_fingerprint(&sys, &canon, &SharingSpec::all_global(&sys, 4), &tweaked);
        assert_ne!(global, lk);
    }

    #[test]
    fn capture_replay_round_trips_bit_identically() {
        let sys = parse_system(A).unwrap();
        let canon = Canonicalization::of(&sys);
        let out = ModuloScheduler::new(&sys, SharingSpec::all_global(&sys, 4))
            .unwrap()
            .run()
            .unwrap();
        let cached = CacheableResult::capture(&canon, &out.schedule, out.iterations);
        let replayed = cached.replay(&canon).unwrap();
        assert_eq!(replayed.starts(), out.schedule.starts());
    }

    #[test]
    fn replay_onto_permutation_is_valid_and_name_consistent() {
        let sa = parse_system(A).unwrap();
        let sb = parse_system(A_SHUFFLED).unwrap();
        let (ca, cb) = (Canonicalization::of(&sa), Canonicalization::of(&sb));
        assert_eq!(ca.hash(), cb.hash());
        let out = ModuloScheduler::new(&sa, SharingSpec::all_global(&sa, 4))
            .unwrap()
            .run()
            .unwrap();
        let cached = CacheableResult::capture(&ca, &out.schedule, out.iterations);
        let replayed = cached.replay(&cb).unwrap();
        replayed.verify(&sb).unwrap();
        // Canonically aligned ops receive identical start times.
        for rank in 0..ca.op_order().len() {
            assert_eq!(
                out.schedule.expect_start(ca.op_order()[rank]),
                replayed.expect_start(cb.op_order()[rank])
            );
        }
    }

    #[test]
    fn replay_rejects_wrong_arity() {
        let sys = parse_system(A).unwrap();
        let canon = Canonicalization::of(&sys);
        let bad = CacheableResult {
            starts: vec![0; 3],
            iterations: 1,
            note: None,
        };
        assert!(bad.replay(&canon).is_err());
    }

    #[test]
    fn integrity_tracks_payload() {
        let a = CacheableResult {
            starts: vec![1, 2, 3],
            iterations: 7,
            note: None,
        };
        let mut b = a.clone();
        assert_eq!(a.integrity(), b.integrity());
        b.starts[1] = 9;
        assert_ne!(a.integrity(), b.integrity());
        // A note changes the digest, and different notes differ.
        let noted = a.clone().with_note("partitioned: 2 subgraphs");
        assert_ne!(a.integrity(), noted.integrity());
        assert_ne!(
            noted.integrity(),
            a.clone().with_note("partitioned: 3 subgraphs").integrity()
        );
    }

    #[test]
    fn note_rides_the_json_fields() {
        let a = CacheableResult {
            starts: vec![4, 5],
            iterations: 2,
            note: Some("partitioned: 2 subgraphs, 1 feedback rounds, 0 cut edges".into()),
        };
        let fields = a.to_json_fields();
        assert!(fields.contains("\"note\":\"partitioned: 2 subgraphs"));
        let bare = CacheableResult {
            note: None,
            ..a.clone()
        };
        assert!(!bare.to_json_fields().contains("note"));
    }

    #[test]
    fn partition_config_separates_fingerprints() {
        let sys = parse_system(A).unwrap();
        let canon = Canonicalization::of(&sys);
        let cfg = FdsConfig::default();
        let spec = SharingSpec::all_global(&sys, 4);
        let mono = config_fingerprint(&sys, &canon, &spec, &cfg);
        // `None` is byte-compatible with the original fingerprint text.
        assert_eq!(
            mono,
            config_fingerprint_with(&sys, &canon, &spec, &cfg, None)
        );
        let p2 = PartitionConfig {
            count: PartitionCount::Fixed(2),
            ..PartitionConfig::default()
        };
        let p4 = PartitionConfig {
            count: PartitionCount::Fixed(4),
            ..PartitionConfig::default()
        };
        let auto = PartitionConfig::default();
        let f2 = config_fingerprint_with(&sys, &canon, &spec, &cfg, Some(&p2));
        let f4 = config_fingerprint_with(&sys, &canon, &spec, &cfg, Some(&p4));
        let fa = config_fingerprint_with(&sys, &canon, &spec, &cfg, Some(&auto));
        assert_ne!(mono, f2, "partitioned separates from monolithic");
        assert_ne!(f2, f4, "K separates entries");
        assert_ne!(fa, f2, "auto is its own policy");
        let reseeded = PartitionConfig { seed: 99, ..p2 };
        assert_ne!(
            f2,
            config_fingerprint_with(&sys, &canon, &spec, &cfg, Some(&reseeded)),
            "partitioner seed separates entries"
        );
    }
}
