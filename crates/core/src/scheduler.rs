//! Step (S3): the coupled modulo scheduler.
//!
//! All blocks of all processes are scheduled *simultaneously* by one IFDS
//! run whose force model is the modified evaluator: a partial solution
//! describes the time frames of every operation of the system, and each
//! iteration reduces the globally worst frame.

use tcms_fds::{FdsConfig, IfdsEngine, Schedule};
use tcms_ir::System;

use crate::assign::SharingSpec;
use crate::error::CoreError;
use crate::evaluator::ModuloEvaluator;
use crate::report::{compute_report, ScheduleReport};

/// The coupled time-constrained modulo scheduler.
///
/// # Example
///
/// ```
/// use tcms_core::{ModuloScheduler, SharingSpec};
/// use tcms_ir::generators::paper_system;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (system, _types) = paper_system()?;
/// let spec = SharingSpec::all_global(&system, 5);
/// let outcome = ModuloScheduler::new(&system, spec)?.run();
/// outcome.schedule.verify(&system)?;
/// println!("area {}", outcome.report().total_area());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModuloScheduler<'a> {
    system: &'a System,
    spec: SharingSpec,
    config: FdsConfig,
}

impl<'a> ModuloScheduler<'a> {
    /// Creates a scheduler after validating the sharing specification.
    ///
    /// # Errors
    ///
    /// Propagates [`SharingSpec::validate`] errors.
    pub fn new(system: &'a System, spec: SharingSpec) -> Result<Self, CoreError> {
        spec.validate(system)?;
        Ok(ModuloScheduler {
            system,
            spec,
            config: FdsConfig::default(),
        })
    }

    /// Overrides the force-model configuration.
    #[must_use]
    pub fn with_config(mut self, config: FdsConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the coupled modified IFDS over every block of the system.
    pub fn run(self) -> ModuloOutcome<'a> {
        let scope: Vec<_> = self.system.block_ids().collect();
        let engine = IfdsEngine::new(self.system, scope);
        let mut eval = ModuloEvaluator::new(
            self.system,
            self.spec.clone(),
            self.config.clone(),
            engine.frames(),
        );
        let out = engine.run(&mut eval);
        debug_assert!(out.schedule.verify(self.system).is_ok());
        ModuloOutcome {
            system: self.system,
            spec: self.spec,
            schedule: out.schedule,
            iterations: out.iterations,
        }
    }
}

/// Result of a coupled modulo-scheduling run.
#[derive(Debug, Clone)]
pub struct ModuloOutcome<'a> {
    system: &'a System,
    spec: SharingSpec,
    /// Start times for every operation of the system.
    pub schedule: Schedule,
    /// Number of frame-reduction iterations of the coupled run.
    pub iterations: u64,
}

impl<'a> ModuloOutcome<'a> {
    /// The system this outcome belongs to.
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// The sharing specification the schedule was produced under.
    pub fn spec(&self) -> &SharingSpec {
        &self.spec
    }

    /// Resource counts, authorization tables and area of the schedule.
    pub fn report(&self) -> ScheduleReport {
        compute_report(self.system, &self.spec, &self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;

    #[test]
    fn paper_system_schedules_validly_global() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run();
        out.schedule.verify(&sys).unwrap();
        assert!(out.iterations > 0);
    }

    #[test]
    fn invalid_spec_rejected_up_front() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, vec![sys.process_ids().next().unwrap()], 5);
        assert!(ModuloScheduler::new(&sys, spec).is_err());
    }

    #[test]
    fn deterministic() {
        let (sys, _) = paper_system().unwrap();
        let run = || {
            ModuloScheduler::new(&sys, SharingSpec::all_global(&sys, 5))
                .unwrap()
                .run()
                .schedule
        };
        assert_eq!(run(), run());
    }
}
