//! Step (S3): the coupled modulo scheduler.
//!
//! All blocks of all processes are scheduled *simultaneously* by one IFDS
//! run whose force model is the modified evaluator: a partial solution
//! describes the time frames of every operation of the system, and each
//! iteration reduces the globally worst frame.

use std::borrow::Cow;

use tcms_fds::{FdsConfig, IfdsEngine, IfdsStats, Schedule};
use tcms_ir::System;
use tcms_obs::{span, NoopRecorder, Recorder};

use crate::assign::SharingSpec;
use crate::error::{CoreError, ScheduleError};
use crate::evaluator::ModuloEvaluator;
use crate::field::ExternalOccupancy;
use crate::period::spacing_budget;
use crate::report::{compute_report, ScheduleReport};

/// The coupled time-constrained modulo scheduler.
///
/// # Example
///
/// ```
/// use tcms_core::{ModuloScheduler, SharingSpec};
/// use tcms_ir::generators::paper_system;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (system, _types) = paper_system()?;
/// let spec = SharingSpec::all_global(&system, 5);
/// let outcome = ModuloScheduler::new(&system, spec)?.run()?;
/// outcome.schedule.verify(&system)?;
/// println!("area {}", outcome.report().total_area());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModuloScheduler<'a> {
    system: &'a System,
    spec: SharingSpec,
    /// Borrowed when the caller schedules many candidates under one
    /// configuration (the exploration fan-outs), owned otherwise.
    config: Cow<'a, FdsConfig>,
    /// Frozen cross-partition occupancy seeding the group profiles; empty
    /// outside partitioned runs.
    external: ExternalOccupancy,
}

impl<'a> ModuloScheduler<'a> {
    /// Creates a scheduler after validating the sharing specification.
    ///
    /// # Errors
    ///
    /// Propagates [`SharingSpec::validate`] errors.
    pub fn new(system: &'a System, spec: SharingSpec) -> Result<Self, CoreError> {
        spec.validate(system)?;
        Ok(ModuloScheduler {
            system,
            spec,
            config: Cow::Owned(FdsConfig::default()),
            external: ExternalOccupancy::default(),
        })
    }

    /// Creates a scheduler for a partition shard: validation accepts
    /// singleton sharing groups, because a shard may hold only one local
    /// member of a group whose other users live in foreign partitions and
    /// appear solely through [`ExternalOccupancy`] baselines.
    ///
    /// # Errors
    ///
    /// Propagates [`SharingSpec::validate_relaxed`] errors.
    pub fn new_relaxed(system: &'a System, spec: SharingSpec) -> Result<Self, CoreError> {
        spec.validate_relaxed(system)?;
        Ok(ModuloScheduler {
            system,
            spec,
            config: Cow::Owned(FdsConfig::default()),
            external: ExternalOccupancy::default(),
        })
    }

    /// Seeds the group profiles with frozen cross-partition occupancy.
    /// An empty occupancy leaves the run bit-identical to an unseeded one.
    #[must_use]
    pub fn with_external_occupancy(mut self, external: ExternalOccupancy) -> Self {
        self.external = external;
        self
    }

    /// Overrides the force-model configuration.
    #[must_use]
    pub fn with_config(mut self, config: FdsConfig) -> Self {
        self.config = Cow::Owned(config);
        self
    }

    /// Overrides the force-model configuration without taking ownership —
    /// the fan-out paths scheduling hundreds of candidates share one
    /// borrowed configuration instead of cloning it per candidate.
    #[must_use]
    pub fn with_config_ref(mut self, config: &'a FdsConfig) -> Self {
        self.config = Cow::Borrowed(config);
        self
    }

    /// Runs the coupled modified IFDS over every block of the system,
    /// with incremental (cached) candidate-force evaluation.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::Infeasible`] if a process's grid spacing
    ///   (equation 3) exceeds its spacing budget — no alignment of its
    ///   tightest block to the start grid exists,
    /// * [`ScheduleError::BudgetExhausted`] if the configured
    ///   [`tcms_fds::RunBudget`] trips before the frames converge.
    pub fn run(self) -> Result<ModuloOutcome<'a>, ScheduleError> {
        self.run_impl(false, &NoopRecorder)
    }

    /// [`ModuloScheduler::run`] with observability: the S3 span, the
    /// engine's per-iteration samples and the evaluator's `M_p`/`G_k`
    /// field timeline flow into `rec`. The schedule is bit-identical to
    /// [`ModuloScheduler::run`] (asserted by the integration suite).
    ///
    /// # Errors
    ///
    /// Same as [`ModuloScheduler::run`].
    pub fn run_recorded(self, rec: &dyn Recorder) -> Result<ModuloOutcome<'a>, ScheduleError> {
        self.run_impl(false, rec)
    }

    /// Reference run without the candidate-force cache — the oracle
    /// [`ModuloScheduler::run`] is tested against (outcomes must be
    /// bit-identical). Only compiled for tests and the `naive-oracle`
    /// feature.
    ///
    /// # Errors
    ///
    /// Same as [`ModuloScheduler::run`].
    #[cfg(any(test, feature = "naive-oracle"))]
    pub fn run_naive(self) -> Result<ModuloOutcome<'a>, ScheduleError> {
        self.run_impl(true, &NoopRecorder)
    }

    /// Equation-3 precheck: every process's grid spacing must stay within
    /// its spacing budget, otherwise the tightest block has no feasible
    /// alignment and the engine would chase an unsatisfiable constraint.
    fn check_feasible(&self) -> Result<(), ScheduleError> {
        for p in self.system.process_ids() {
            let spacing = self.spec.grid_spacing(self.system, p);
            let budget = spacing_budget(self.system, p);
            if spacing > budget {
                let proc = self.system.process(p);
                let tightest = proc
                    .blocks()
                    .iter()
                    .copied()
                    .min_by_key(|&b| self.system.block(b).time_range())
                    .expect("processes have at least one block");
                let binding = self
                    .spec
                    .global_types_of_process(self.system, p)
                    .into_iter()
                    .max_by_key(|&k| self.spec.period(k).expect("global types have periods"))
                    .expect("infeasible spacing implies at least one global type");
                return Err(ScheduleError::Infeasible {
                    block: format!("{}::{}", proc.name(), self.system.block(tightest).name()),
                    slack: budget as i64 - spacing as i64,
                    binding_resource: self.system.library().get(binding).name().to_owned(),
                });
            }
        }
        Ok(())
    }

    fn run_impl(self, naive: bool, rec: &dyn Recorder) -> Result<ModuloOutcome<'a>, ScheduleError> {
        self.check_feasible()?;
        let scope: Vec<_> = self.system.block_ids().collect();
        let _s3 = span!(
            rec,
            "s3.schedule",
            blocks = scope.len(),
            ops = self.system.num_ops()
        );
        let engine = IfdsEngine::new(self.system, scope).with_budget(self.config.budget);
        let mut eval = ModuloEvaluator::with_external(
            self.system,
            self.spec.clone(),
            self.config.as_ref().clone(),
            engine.frames(),
            self.external.clone(),
        );
        #[cfg(any(test, feature = "naive-oracle"))]
        let out = if naive {
            engine.run_naive(&mut eval)?
        } else {
            engine.run_recorded(&mut eval, rec)?
        };
        #[cfg(not(any(test, feature = "naive-oracle")))]
        let out = {
            debug_assert!(!naive, "naive run requires the naive-oracle feature");
            engine.run_recorded(&mut eval, rec)?
        };
        debug_assert!(out.schedule.verify(self.system).is_ok());
        Ok(ModuloOutcome {
            system: self.system,
            spec: self.spec,
            schedule: out.schedule,
            iterations: out.iterations,
            stats: out.stats,
        })
    }
}

/// Result of a coupled modulo-scheduling run.
#[derive(Debug, Clone)]
pub struct ModuloOutcome<'a> {
    system: &'a System,
    spec: SharingSpec,
    /// Start times for every operation of the system.
    pub schedule: Schedule,
    /// Number of frame-reduction iterations of the coupled run.
    pub iterations: u64,
    /// Instrumentation of the engine run (candidate evaluations, cache
    /// hits/misses, wall time per phase).
    pub stats: IfdsStats,
}

impl<'a> ModuloOutcome<'a> {
    /// The system this outcome belongs to.
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// The sharing specification the schedule was produced under.
    pub fn spec(&self) -> &SharingSpec {
        &self.spec
    }

    /// Consumes the outcome and returns the owned specification — lets
    /// trial-and-reject loops recover their spec without cloning it.
    pub fn into_spec(self) -> SharingSpec {
        self.spec
    }

    /// Resource counts, authorization tables and area of the schedule.
    pub fn report(&self) -> ScheduleReport {
        compute_report(self.system, &self.spec, &self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcms_ir::generators::paper_system;

    #[test]
    fn paper_system_schedules_validly_global() {
        let (sys, _) = paper_system().unwrap();
        let spec = SharingSpec::all_global(&sys, 5);
        let out = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap();
        out.schedule.verify(&sys).unwrap();
        assert!(out.iterations > 0);
    }

    #[test]
    fn oversized_spacing_fails_with_infeasible() {
        let (sys, t) = paper_system().unwrap();
        // lcm(7, 5, 5) = 35 > 15 budget of the diffeq processes.
        let mut spec = SharingSpec::all_global(&sys, 5);
        spec.set_period(t.add, 7);
        let err = ModuloScheduler::new(&sys, spec).unwrap().run().unwrap_err();
        match err {
            crate::error::ScheduleError::Infeasible {
                block,
                slack,
                binding_resource,
            } => {
                assert!(block.contains("::"), "qualified name, got {block}");
                // First failing process in iteration order is the first EWF:
                // spacing lcm(7, 5) = 35 against its budget of 30.
                assert_eq!(slack, 30 - 35);
                assert_eq!(binding_resource, "add", "period 7 dominates the lcm");
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn budget_trip_surfaces_as_schedule_error() {
        use tcms_fds::RunBudget;
        let (sys, _) = paper_system().unwrap();
        let cfg = FdsConfig {
            budget: RunBudget {
                max_iterations: Some(3),
                ..RunBudget::default()
            },
            ..FdsConfig::default()
        };
        let err = ModuloScheduler::new(&sys, SharingSpec::all_global(&sys, 5))
            .unwrap()
            .with_config(cfg)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::ScheduleError::BudgetExhausted(_)
        ));
    }

    #[test]
    fn invalid_spec_rejected_up_front() {
        let (sys, t) = paper_system().unwrap();
        let mut spec = SharingSpec::all_local(&sys);
        spec.set_global(t.add, vec![sys.process_ids().next().unwrap()], 5);
        assert!(ModuloScheduler::new(&sys, spec).is_err());
    }

    #[test]
    fn cached_run_is_bit_identical_to_naive_run() {
        let (sys, _) = paper_system().unwrap();
        let mk = || ModuloScheduler::new(&sys, SharingSpec::all_global(&sys, 5)).unwrap();
        let cached = mk().run().unwrap();
        let naive = mk().run_naive().unwrap();
        assert_eq!(
            cached.schedule.starts(),
            naive.schedule.starts(),
            "schedules must be bit-identical"
        );
        assert_eq!(cached.iterations, naive.iterations);
        assert_eq!(
            cached.report().total_area(),
            naive.report().total_area(),
            "areas must agree"
        );
        assert!(
            cached.stats.cache_hits > 0,
            "coupled multi-process run must reuse cached forces"
        );
        assert!(cached.stats.ops_evaluated < naive.stats.ops_evaluated);
    }

    #[test]
    fn deterministic() {
        let (sys, _) = paper_system().unwrap();
        let run = || {
            ModuloScheduler::new(&sys, SharingSpec::all_global(&sys, 5))
                .unwrap()
                .run()
                .unwrap()
                .schedule
        };
        assert_eq!(run(), run());
    }
}
