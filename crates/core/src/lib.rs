#![warn(missing_docs)]
//! Time-constrained modulo scheduling with global resource sharing.
//!
//! This crate implements the contribution of *"Time Constrained Modulo
//! Scheduling with Global Resource Sharing"* (Jäschke, Beckmann, Laur —
//! DATE 1999): an extension of static scheduling algorithms that shares
//! resources **across process boundaries** through a time-periodic,
//! statically determined access authorization, overcoming the
//! one-resource-per-type-and-process minimum of traditional high-level
//! synthesis.
//!
//! The method's three steps map to this crate's modules:
//!
//! * **(S1)** [`assign`] — local/global assignment of resource types to
//!   processes ([`SharingSpec`]), including an automatic scope-selection
//!   heuristic in [`explore`],
//! * **(S2)** [`period`] — period candidates per global type, grid
//!   spacings (equation 3) and full or pruned enumeration,
//! * **(S3)** [`scheduler`] — the coupled modified IFDS over all blocks,
//!   with the two-part force modification in [`evaluator`] built on the
//!   layered spring field of [`field`].
//!
//! Supporting modules: [`modulo`] (the modulo-maximum transformation),
//! [`authorize`] (static access-authorization tables), [`report`]
//! (instance counts and area), [`verify`] (run-time validity checking of
//! the static sharing claim), [`rc`] (the resource-constrained variant
//! of the companion ISSS'98 paper) and [`degrade`] (the graceful
//! degradation ladder that retries infeasible or budget-tripped
//! specifications with explicit, bounded concessions).
//!
//! # Example: the paper's Table-1 flow
//!
//! ```
//! use tcms_core::{ModuloScheduler, SharingSpec};
//! use tcms_ir::generators::paper_system;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (system, types) = paper_system()?;
//! // Global adder/multiplier over all processes, subtracter over the two
//! // diffeq processes, all with period 5 — the paper's configuration.
//! let spec = SharingSpec::all_global(&system, 5);
//! let global = ModuloScheduler::new(&system, spec)?.run()?;
//!
//! let local = ModuloScheduler::new(&system, SharingSpec::all_local(&system))?.run()?;
//!
//! // Global sharing beats one-resource-per-type-and-process.
//! assert!(global.report().total_area() < local.report().total_area());
//! assert!(global.report().instances(types.mul) < 5);
//! # Ok(())
//! # }
//! ```

pub mod assign;
pub mod authorize;
pub mod degrade;
pub mod error;
pub mod evaluator;
pub mod exact;
pub mod explore;
pub mod field;
pub mod fingerprint;
pub mod kernel;
pub mod latency;
pub mod modulo;
pub mod partition;
pub mod period;
pub mod rc;
pub mod report;
pub mod scheduler;
pub mod verify;

pub use assign::{Scope, SharingSpec};
pub use authorize::AuthorizationTable;
pub use degrade::{schedule_with_degradation, LadderConfig, LadderOutcome, Rung};
pub use error::{CoreError, ScheduleError};
pub use evaluator::ModuloEvaluator;
pub use field::ExternalOccupancy;
pub use field::ModuloField;
pub use fingerprint::{config_fingerprint, config_fingerprint_with, CacheableResult};
pub use latency::{latency_bounds, LatencyBound};
pub use partition::{
    schedule_partitioned, schedule_partitioned_recorded, PartitionConfig, PartitionCount,
    PartitionOutcome,
};
pub use report::{compute_report, ScheduleReport, TypeReport};
pub use scheduler::{ModuloOutcome, ModuloScheduler};
pub use verify::{check_execution, exhaustive_check, random_activations, Activation, VerifyError};

/// Serializes unit tests that mutate the global thread-count override.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn threads_lock() -> MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
