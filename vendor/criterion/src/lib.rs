//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop: warm up, pick an iteration count that
//! makes one sample take a measurable amount of time, then report the
//! median and spread over `sample_size` samples. No plotting, no
//! statistics beyond median/min/max.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// An id rendering only the parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: target ~10ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn report(label: &str, b: &Bencher) {
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    let fmt_t = |s: f64| {
        if s < 1e-6 {
            format!("{:.1} ns", s * 1e9)
        } else if s < 1e-3 {
            format!("{:.2} µs", s * 1e6)
        } else if s < 1.0 {
            format!("{:.2} ms", s * 1e3)
        } else {
            format!("{s:.3} s")
        }
    };
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_t(lo),
        fmt_t(median),
        fmt_t(hi)
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: 20,
        };
        routine(&mut b);
        report(name, &b);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
