//! Case execution: configuration, errors and the per-test driver.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case found a genuine failure.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of a single property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Source of randomness handed to strategies while a case's inputs are
/// generated.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a; stable across runs/platforms so failures are reproducible.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure with the case number and reproduction seed.
///
/// The seed of case `i` is a pure function of the test name and `i`
/// (overridable via `PROPTEST_SEED` for reproduction), so runs are
/// deterministic.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRunner) -> TestCaseResult,
) {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| name_seed(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        index += 1;
        let mut runner = TestRunner::from_seed(seed);
        match case(&mut runner) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property test `{name}`: too many rejected cases \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property test `{name}` failed at case {passed} \
                     (seed {seed}, rerun with PROPTEST_SEED={base}):\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_cases_times() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "counter", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut total = 0;
        let mut kept = 0;
        run_cases(&ProptestConfig::with_cases(5), "rejector", |_| {
            total += 1;
            if total % 2 == 0 {
                kept += 1;
                Ok(())
            } else {
                Err(TestCaseError::reject("odd"))
            }
        });
        assert_eq!(kept, 5);
        assert_eq!(total, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run_cases(&ProptestConfig::default(), "failer", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn deterministic_streams() {
        let collect = || {
            let mut vals = Vec::new();
            run_cases(&ProptestConfig::with_cases(8), "det", |r| {
                use rand::Rng;
                vals.push(r.rng().next_u64());
                Ok(())
            });
            vals
        };
        assert_eq!(collect(), collect());
    }
}
