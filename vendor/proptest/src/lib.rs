//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] macro, value
//! strategies (ranges, tuples, `prop_map`, `prop_oneof!`, recursion,
//! collections, selection) and the assertion/assumption macros. Failing
//! cases are reported with their case number and reproduction seed but are
//! **not shrunk** — acceptable for a vendored test-only shim.

pub mod strategy;
pub mod test_runner;

/// Non-macro strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies (`prop::sample`).
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `#[test]` functions whose arguments are drawn
/// from strategies (`pattern in strategy`), run for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |runner| {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), runner);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    outcome
                });
            }
        )*
    };
}

/// Chooses uniformly between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case (without aborting the whole test fn).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discards the current case (does not count towards `cases`) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
