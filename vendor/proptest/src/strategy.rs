//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRunner;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// previous depth level and returns one producing values one level
    /// deeper. `depth` bounds the recursion; `_desired_size` and
    /// `_expected_branch_size` are accepted for upstream compatibility and
    /// ignored by this shim.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            // Each level mixes all shallower levels with one deeper layer,
            // so generated values cover every depth up to `depth`.
            let deeper = recurse(level.clone()).boxed();
            level = Union::new(vec![level, deeper]).boxed();
        }
        level
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.dyn_new_value(runner)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Weighted choice between strategies of one value type
/// ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Choice over `arms` proportional to their weights.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.rng().random_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.new_value(runner);
            }
            pick -= w;
        }
        unreachable!("weights cover the sampled range")
    }
}

impl<T: rand::UniformInt + 'static> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().random_range(self.clone())
    }
}

impl<T: rand::UniformInt + 'static> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        runner.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$i.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Length specifications accepted by [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn sample_len(&self, runner: &mut TestRunner) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _runner: &mut TestRunner) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, runner: &mut TestRunner) -> usize {
        runner.rng().random_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, runner: &mut TestRunner) -> usize {
        runner.rng().random_range(self.clone())
    }
}

/// Strategy for `Vec`s with element strategy `element` and a length drawn
/// from `size` (`prop::collection::vec`).
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = self.size.sample_len(runner);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// Uniform choice of one element of `options` (`prop::sample::select`).
///
/// # Panics
///
/// The returned strategy panics when sampled if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng().random_range(0..self.options.len());
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{run_cases, ProptestConfig};

    fn sample<S: Strategy>(s: &S, n: u32) -> Vec<S::Value> {
        let mut out = Vec::new();
        run_cases(&ProptestConfig::with_cases(n), "sample", |r| {
            out.push(s.new_value(r));
            Ok(())
        });
        out
    }

    #[test]
    fn ranges_and_maps() {
        let s = (0u32..10).prop_map(|v| v * 2);
        for v in sample(&s, 100) {
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn tuples_group_components() {
        let s = (0u8..4, 10u8..14);
        for (a, b) in sample(&s, 50) {
            assert!(a < 4 && (10..14).contains(&b));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let vals = sample(&s, 100);
        assert!(vals.contains(&1) && vals.contains(&2));
    }

    #[test]
    fn vec_respects_size() {
        let s = vec(0u8..5, 2usize..6);
        for v in sample(&s, 50) {
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_terminates_and_varies_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let depths: Vec<u32> = sample(&s, 200).iter().map(depth).collect();
        assert!(depths.iter().all(|&d| d <= 4));
        assert!(depths.contains(&0));
        assert!(depths.iter().any(|&d| d > 0));
    }

    #[test]
    fn select_only_returns_options() {
        let s = select(vec!["x", "y"]);
        for v in sample(&s, 40) {
            assert!(v == "x" || v == "y");
        }
    }
}
