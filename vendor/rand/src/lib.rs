//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: a deterministic, seedable
//! generator ([`rngs::StdRng`]) plus the [`Rng`] convenience methods
//! `random`, `random_range` and `random_bool`. The stream differs from the
//! upstream ChaCha-based `StdRng`, but every use in this workspace only
//! relies on determinism for a fixed seed, which this implementation
//! guarantees (splitmix64 core, stable across platforms).

use std::ops::{Range, RangeInclusive};

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core sampling interface, mirroring `rand::RngCore` + `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (`bool`, ints, `f64`, `f32`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

/// Types samplable uniformly from raw bits (the `StandardUniform`
/// distribution of upstream rand).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using 24 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from the inclusive span `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The predecessor of `hi` (for half-open ranges); `None` on underflow.
    fn pred(self) -> Option<Self>;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-range span: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                // Debiased via rejection on the top of the range.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if wide <= zone {
                        return lo.wrapping_add((wide % span) as $t);
                    }
                }
            }
            fn pred(self) -> Option<Self> {
                self.checked_sub(1)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let ulo = (lo as $u).wrapping_add(<$t>::MIN as $u);
                let uhi = (hi as $u).wrapping_add(<$t>::MIN as $u);
                let s = <$u>::sample_inclusive(rng, ulo, uhi);
                s.wrapping_sub(<$t>::MIN as $u) as $t
            }
            fn pred(self) -> Option<Self> {
                self.checked_sub(1)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::random_range`], mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let hi = self
            .end
            .pred()
            .filter(|&h| self.start <= h)
            .expect("cannot sample from empty range");
        T::sample_inclusive(rng, self.start, hi)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). Not cryptographic —
    /// a stand-in for upstream's `StdRng` where only seeded determinism
    /// matters.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
