//! Offline stand-in for the `rayon` crate.
//!
//! Provides the `into_par_iter().map(..).collect::<Vec<_>>()` shape the
//! workspace uses, executed on scoped OS threads with a shared atomic work
//! queue. Results are written back by input index, so the collected order
//! is **deterministic** (identical to the sequential order) regardless of
//! thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The glob-import surface, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Operations on parallel iterators (the subset this shim supports).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drains the iterator into an index-ordered `Vec`.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        ParMap { inner: self, f }
    }

    /// Collects into `C`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.run())
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T> {
    /// Builds the collection from index-ordered results.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// [`ParallelIterator::map`] adapter; the parallel fan-out happens here.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, O, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync + Send,
{
    type Item = O;

    fn run(self) -> Vec<O> {
        let items = self.inner.run();
        let n = items.len();
        if n <= 1 {
            return items.into_iter().map(self.f).collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            return items.into_iter().map(self.f).collect();
        }
        let f = &self.f;
        // Work queue: tasks are claimed by index; each worker stashes
        // `(index, result)` pairs which are merged and re-ordered at the
        // end, making the output order independent of scheduling.
        let tasks: Vec<Mutex<Option<I::Item>>> =
            items.into_iter().map(|it| Mutex::new(Some(it))).collect();
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, O)> = Vec::with_capacity(n);
        let collected = Mutex::new(&mut indexed);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = tasks[i]
                            .lock()
                            .expect("task mutex poisoned")
                            .take()
                            .expect("each task is claimed exactly once");
                        local.push((i, f(item)));
                    }
                    collected
                        .lock()
                        .expect("result mutex poisoned")
                        .extend(local);
                });
            }
        });
        indexed.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(indexed.len(), n);
        indexed.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if avail > 1 {
            assert!(
                threads > 1,
                "expected parallel execution, saw {threads} thread(s)"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9];
        let out: Vec<u8> = one.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![10]);
    }
}
