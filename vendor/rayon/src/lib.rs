//! Offline stand-in for the `rayon` crate.
//!
//! Provides the `into_par_iter().map(..).collect::<Vec<_>>()` shape the
//! workspace uses, plus the lower-level [`par_map_indexed`] /
//! [`scope_reduce`] primitives the scheduler's hot loops are built on.
//! All fan-out runs on one persistent worker pool (spawning threads per
//! call would dwarf the per-iteration work of the IFDS engine); results
//! are written back by input index, so the collected order is
//! **deterministic** (identical to the sequential order) regardless of
//! thread scheduling.
//!
//! # Thread-count resolution
//!
//! [`current_num_threads`] resolves, in priority order:
//!
//! 1. a programmatic [`set_num_threads`] override (the CLI's `--threads`),
//! 2. the `TCMS_THREADS` environment variable (parsed once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 makes every primitive run inline on the calling
//! thread with no pool interaction at all — the sequential code path is
//! literally the parallel one with the fan-out skipped, which is what the
//! determinism suite pins down.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// The glob-import surface, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

// ---------------------------------------------------------------------------
// Thread-count configuration.
// ---------------------------------------------------------------------------

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `TCMS_THREADS` is parsed once per process: the pool outlives any
/// in-process mutation of the environment, and tests use
/// [`set_num_threads`] instead.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TCMS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Overrides the number of threads used by all parallel primitives.
///
/// Takes precedence over `TCMS_THREADS` and the detected parallelism;
/// `0` clears the override. May exceed the machine's core count (useful
/// for exercising the parallel paths on small boxes).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of threads parallel primitives will use right now.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Persistent worker pool with broadcast jobs.
// ---------------------------------------------------------------------------

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn in_worker() -> bool {
    IS_WORKER.with(Cell::get)
}

/// One broadcast job: every participating thread (workers + the caller)
/// runs the same closure, which claims work items off a shared atomic
/// counter until none remain.
struct Job {
    seq: u64,
    /// Lifetime-erased task. Sound because [`broadcast`] does not return
    /// until `finished == claimed`, i.e. no worker still holds it.
    task: &'static (dyn Fn() + Sync),
    /// Number of workers that may pick this job up.
    limit: usize,
    claimed: usize,
    finished: usize,
    panicked: bool,
}

#[derive(Default)]
struct PoolState {
    workers: usize,
    seq: u64,
    job: Option<Job>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers wait here for a new job.
    job_cv: Condvar,
    /// The broadcaster waits here for its job to quiesce.
    done_cv: Condvar,
    /// Serializes broadcasts. `try_lock` failure (another broadcast in
    /// flight, possibly our own further up the stack) degrades to inline
    /// sequential execution, which is always equivalent.
    broadcast_lock: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState::default()),
        job_cv: Condvar::new(),
        done_cv: Condvar::new(),
        broadcast_lock: Mutex::new(()),
    })
}

fn worker_loop(pool: &'static Pool) {
    IS_WORKER.with(|c| c.set(true));
    let mut last_seq = 0u64;
    let mut state = pool.state.lock().expect("pool state poisoned");
    loop {
        let (seq, task) = loop {
            if let Some(job) = state.job.as_mut() {
                if job.seq != last_seq && job.claimed < job.limit {
                    job.claimed += 1;
                    last_seq = job.seq;
                    break (job.seq, job.task);
                }
            }
            state = pool.job_cv.wait(state).expect("pool state poisoned");
        };
        drop(state);
        let ok = catch_unwind(AssertUnwindSafe(task)).is_ok();
        state = pool.state.lock().expect("pool state poisoned");
        if let Some(job) = state.job.as_mut() {
            if job.seq == seq {
                job.finished += 1;
                job.panicked |= !ok;
                pool.done_cv.notify_all();
            }
        }
    }
}

/// Runs `task` on up to `participants` threads (the caller plus pool
/// workers) and returns once every claimed run has finished.
///
/// Nested or concurrent broadcasts run `task` inline on the caller — the
/// task must therefore produce identical results under any degree of
/// fan-out (all callers here claim work items atomically, so it does).
fn broadcast(participants: usize, task: &(dyn Fn() + Sync)) {
    let pool = pool();
    let Ok(_guard) = pool.broadcast_lock.try_lock() else {
        task();
        return;
    };
    // SAFETY: only the lifetime is erased; the wait below guarantees no
    // worker holds the reference when this frame returns.
    let task_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task) };
    let want = participants.saturating_sub(1);
    {
        let mut state = pool.state.lock().expect("pool state poisoned");
        while state.workers < want {
            state.workers += 1;
            let name = format!("tcms-worker-{}", state.workers);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn pool worker");
        }
        state.seq += 1;
        state.job = Some(Job {
            seq: state.seq,
            task: task_static,
            limit: want,
            claimed: 0,
            finished: 0,
            panicked: false,
        });
    }
    pool.job_cv.notify_all();
    // The caller is a participant too; if workers are slow to wake it
    // simply drains the whole work queue itself.
    let caller_ok = catch_unwind(AssertUnwindSafe(task)).is_ok();
    let mut state = pool.state.lock().expect("pool state poisoned");
    while state
        .job
        .as_ref()
        .is_some_and(|job| job.finished < job.claimed)
    {
        state = pool.done_cv.wait(state).expect("pool state poisoned");
    }
    let worker_panicked = state.job.take().map(|job| job.panicked).unwrap_or(false);
    drop(state);
    if !caller_ok || worker_panicked {
        panic!("a parallel task panicked");
    }
}

// ---------------------------------------------------------------------------
// Index-ordered primitives.
// ---------------------------------------------------------------------------

/// Raw write handle into the result buffer; each index is claimed exactly
/// once off the atomic counter, so concurrent writes never alias.
struct SlotPtr<O>(*mut Option<O>);
unsafe impl<O: Send> Sync for SlotPtr<O> {}

impl<O> SlotPtr<O> {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one participant.
    unsafe fn write(&self, i: usize, v: O) {
        unsafe { *self.0.add(i) = Some(v) };
    }
}

/// Evaluates `f(0..n)` on the pool and returns the results in index
/// order — the deterministic scoped-reduce building block. Falls back to
/// a plain sequential map when the resolved thread count is 1, `n <= 1`,
/// or the call is nested inside another parallel region.
pub fn par_map_indexed<O, F>(n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 || in_worker() {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let out = SlotPtr(slots.as_mut_ptr());
    let next = AtomicUsize::new(0);
    // Chunked claiming keeps writes local and the counter cool without
    // affecting results: indices are disjoint whatever the chunk size.
    let chunk = (n / (threads * 4)).max(1);
    let task = || loop {
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        for i in start..(start + chunk).min(n) {
            let v = f(i);
            // SAFETY: `i` is claimed exactly once across all participants.
            unsafe { out.write(i, v) };
        }
    };
    broadcast(threads, &task);
    slots
        .into_iter()
        .map(|s| s.expect("every index is computed exactly once"))
        .collect()
}

/// Parallel map + **sequential index-ordered fold**: `map(i)` runs on the
/// pool, then `fold(acc, i, value)` is applied strictly in `0..n` order on
/// the calling thread. This is the deterministic reduction the IFDS
/// candidate sweep needs — its epsilon tie-break is non-associative, so
/// the fold order (not just the map results) must match the sequential
/// loop bit for bit.
pub fn scope_reduce<O, A, F, R>(n: usize, map: F, init: A, mut fold: R) -> A
where
    O: Send,
    F: Fn(usize) -> O + Sync,
    R: FnMut(A, usize, O) -> A,
{
    let mut acc = init;
    for (i, v) in par_map_indexed(n, map).into_iter().enumerate() {
        acc = fold(acc, i, v);
    }
    acc
}

// ---------------------------------------------------------------------------
// rayon-shaped iterator surface.
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Operations on parallel iterators (the subset this shim supports).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drains the iterator into an index-ordered `Vec`.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<O, F>(self, f: F) -> ParMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        ParMap { inner: self, f }
    }

    /// Collects into `C`, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.run())
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T> {
    /// Builds the collection from index-ordered results.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Take handle into the input buffer; mirrors [`SlotPtr`] on the read
/// side (each index is taken exactly once).
struct TakePtr<T>(*mut Option<T>);
unsafe impl<T: Send> Sync for TakePtr<T> {}

impl<T> TakePtr<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one participant.
    unsafe fn take(&self, i: usize) -> Option<T> {
        unsafe { (*self.0.add(i)).take() }
    }
}

/// [`ParallelIterator::map`] adapter; the parallel fan-out happens here.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, O, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync + Send,
{
    type Item = O;

    fn run(self) -> Vec<O> {
        let mut items: Vec<Option<I::Item>> = self.inner.run().into_iter().map(Some).collect();
        let n = items.len();
        let f = &self.f;
        let input = TakePtr(items.as_mut_ptr());
        par_map_indexed(n, |i| {
            // SAFETY: `i` is claimed exactly once, and `items` outlives
            // the fan-out (par_map_indexed returns only once quiescent).
            let item = unsafe { input.take(i) }.expect("each item is taken exactly once");
            f(item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, par_map_indexed, scope_reduce, set_num_threads};
    use std::sync::Mutex;

    /// Serializes tests that touch the global thread-count override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_matches_sequential_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let reference: Vec<usize> = (0..257).map(|i| i * i + 1).collect();
        for threads in [1, 2, 4, 8] {
            set_num_threads(threads);
            assert_eq!(current_num_threads(), threads);
            let got = par_map_indexed(257, |i| i * i + 1);
            assert_eq!(got, reference, "threads = {threads}");
        }
        set_num_threads(0);
    }

    #[test]
    fn scope_reduce_folds_in_index_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let order = scope_reduce(
            100,
            |i| i,
            Vec::new(),
            |mut acc: Vec<usize>, i, v| {
                assert_eq!(i, v);
                acc.push(i);
                acc
            },
        );
        assert_eq!(order, (0..100).collect::<Vec<_>>());
        set_num_threads(0);
    }

    #[test]
    fn nested_parallelism_degrades_to_sequential() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let out = par_map_indexed(8, |i| {
            let inner = par_map_indexed(8, move |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
        set_num_threads(0);
    }

    #[test]
    fn pool_grows_beyond_available_parallelism() {
        use std::collections::HashSet;
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = par_map_indexed(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        // Even on a 1-core box the pool must actually fan out when an
        // override asks for it: determinism tests rely on exercising the
        // real parallel code path everywhere.
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected the pool to run on multiple threads"
        );
        set_num_threads(0);
    }

    #[test]
    fn worker_panics_propagate_after_quiescence() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_num_threads(4);
        let result = std::panic::catch_unwind(|| {
            let _: Vec<()> = par_map_indexed(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        set_num_threads(0);
        // The pool must stay usable after a panicked job.
        let ok = par_map_indexed(8, |i| i + 1);
        assert_eq!(ok, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9];
        let out: Vec<u8> = one.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![10]);
    }
}
